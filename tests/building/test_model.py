"""Unit tests for the building model (partitions, doors, staircases, walls)."""

import pytest

from repro.building.model import (
    Building,
    Door,
    Floor,
    Obstacle,
    OUTDOOR,
    Partition,
    PartitionKind,
    Staircase,
)
from repro.core.errors import TopologyError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def _simple_floor() -> Floor:
    """Two adjacent 10x8 rooms joined by a door at (10, 4)."""
    floor = Floor(0)
    floor.add_partition(
        Partition("a", 0, Polygon.rectangle(0, 0, 10, 8), kind=PartitionKind.ROOM)
    )
    floor.add_partition(
        Partition("b", 0, Polygon.rectangle(10, 0, 20, 8), kind=PartitionKind.ROOM)
    )
    floor.add_door(Door("d_ab", 0, Point(10, 4), ("a", "b"), width=1.2))
    return floor


class TestDoor:
    def test_rejects_same_partition_on_both_sides(self):
        with pytest.raises(TopologyError):
            Door("d", 0, Point(0, 0), ("a", "a"))

    def test_other_side(self):
        door = Door("d", 0, Point(0, 0), ("a", "b"))
        assert door.other_side("a") == "b"
        assert door.other_side("b") == "a"
        with pytest.raises(TopologyError):
            door.other_side("c")

    def test_bidirectional_allows_both_ways(self):
        door = Door("d", 0, Point(0, 0), ("a", "b"))
        assert door.allows("a", "b") and door.allows("b", "a")

    def test_one_way_restricts_direction(self):
        door = Door("d", 0, Point(0, 0), ("a", "b"))
        door.set_one_way("a", "b")
        assert door.allows("a", "b")
        assert not door.allows("b", "a")
        door.set_bidirectional()
        assert door.allows("b", "a")

    def test_one_way_requires_own_partitions(self):
        door = Door("d", 0, Point(0, 0), ("a", "b"))
        with pytest.raises(TopologyError):
            door.set_one_way("a", "c")

    def test_partial_one_way_constructor_rejected(self):
        with pytest.raises(TopologyError):
            Door("d", 0, Point(0, 0), ("a", "b"), one_way_from="a")

    def test_entrance_detection(self):
        door = Door("d", 0, Point(0, 0), ("a", OUTDOOR))
        assert door.is_entrance
        assert door.connects("a") and door.connects(OUTDOOR)


class TestStaircase:
    def test_rejects_inverted_floors(self):
        with pytest.raises(TopologyError):
            Staircase("s", 1, 1, "a", Point(0, 0), "b", Point(0, 0))

    def test_endpoint_lookup(self):
        staircase = Staircase("s", 0, 1, "a", Point(1, 1), "b", Point(2, 2))
        assert staircase.endpoint_on(0) == ("a", Point(1, 1))
        assert staircase.endpoint_on(1) == ("b", Point(2, 2))
        with pytest.raises(TopologyError):
            staircase.endpoint_on(5)

    def test_connects_floor(self):
        staircase = Staircase("s", 0, 2, "a", Point(0, 0), "b", Point(0, 0))
        assert staircase.connects_floor(0) and staircase.connects_floor(2)
        assert not staircase.connects_floor(1)


class TestFloor:
    def test_duplicate_partition_rejected(self):
        floor = _simple_floor()
        with pytest.raises(TopologyError):
            floor.add_partition(Partition("a", 0, Polygon.rectangle(30, 0, 40, 8)))

    def test_door_requires_existing_partitions(self):
        floor = _simple_floor()
        with pytest.raises(TopologyError):
            floor.add_door(Door("bad", 0, Point(5, 5), ("a", "missing")))

    def test_door_to_outdoor_allowed(self):
        floor = _simple_floor()
        floor.add_door(Door("entry", 0, Point(0, 4), ("a", OUTDOOR)))
        assert len(floor.entrances()) == 1

    def test_partition_at(self):
        floor = _simple_floor()
        assert floor.partition_at(Point(5, 4)).partition_id == "a"
        assert floor.partition_at(Point(15, 4)).partition_id == "b"
        assert floor.partition_at(Point(50, 50)) is None

    def test_partition_floor_mismatch_rejected(self):
        floor = Floor(1)
        with pytest.raises(TopologyError):
            floor.add_partition(Partition("x", 0, Polygon.rectangle(0, 0, 1, 1)))

    def test_neighbors_of(self):
        floor = _simple_floor()
        assert floor.neighbors_of("a") == ["b"]
        assert floor.neighbors_of("b") == ["a"]

    def test_neighbors_respect_directionality(self):
        floor = _simple_floor()
        floor.doors["d_ab"].set_one_way("a", "b")
        assert floor.neighbors_of("a") == ["b"]
        assert floor.neighbors_of("b") == []

    def test_remove_partition_drops_attached_doors(self):
        floor = _simple_floor()
        floor.remove_partition("b")
        assert "d_ab" not in floor.doors
        assert "b" not in floor.partitions

    def test_total_area_and_bounding_box(self):
        floor = _simple_floor()
        assert floor.total_area == pytest.approx(160.0)
        box = floor.bounding_box
        assert (box.min_x, box.max_x) == (0, 20)

    def test_obstacles(self):
        floor = _simple_floor()
        floor.add_obstacle(Obstacle("o1", 0, Polygon.rectangle(2, 2, 3, 3)))
        assert len(floor.obstacle_polygons()) == 1
        with pytest.raises(TopologyError):
            floor.add_obstacle(Obstacle("o1", 0, Polygon.rectangle(4, 4, 5, 5)))


class TestWallDerivation:
    def test_shared_edges_emitted_once(self):
        floor = _simple_floor()
        walls = floor.walls()
        # The shared edge x=10 appears as wall pieces, not twice in full length.
        shared_pieces = [
            w for w in walls
            if abs(w.segment.start.x - 10) < 1e-6 and abs(w.segment.end.x - 10) < 1e-6
        ]
        total_shared_length = sum(w.length for w in shared_pieces)
        assert total_shared_length < 8.0  # a gap was cut for the door

    def test_door_gap_cut_from_wall(self):
        floor = _simple_floor()
        walls = floor.wall_segments()
        door_position = Point(10, 4)
        # No wall piece should pass through the door position.
        assert all(w.distance_to_point(door_position) > 0.3 for w in walls)

    def test_wall_cache_invalidated_on_change(self):
        floor = _simple_floor()
        before = len(floor.walls())
        floor.add_partition(Partition("c", 0, Polygon.rectangle(0, 8, 10, 16)))
        after = len(floor.walls())
        assert after > before


class TestBuilding:
    def test_duplicate_floor_rejected(self):
        building = Building("b")
        building.new_floor(0)
        with pytest.raises(TopologyError):
            building.add_floor(Floor(0))

    def test_staircase_validates_endpoints(self):
        building = Building("b")
        floor0 = building.new_floor(0)
        floor1 = building.new_floor(1)
        floor0.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 5, 5)))
        with pytest.raises(TopologyError):
            building.add_staircase(
                Staircase("s", 0, 1, "a", Point(1, 1), "missing", Point(1, 1))
            )

    def test_locate_annotates_partition(self, office):
        location = office.locate(0, Point(4.0, 3.0))
        assert location.partition_id is not None
        assert location.floor_id == 0

    def test_random_location_is_inside_some_partition(self, office):
        import random

        rng = random.Random(3)
        for _ in range(20):
            location = office.random_location(rng)
            assert location.partition_id is not None

    def test_counts(self, office):
        assert office.partition_count == len(office.all_partitions())
        assert office.door_count == len(office.all_doors())
        assert office.total_area > 0

    def test_validate_reports_overlapping_partitions(self):
        building = Building("b")
        floor = building.new_floor(0)
        floor.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 10, 10)))
        floor.add_partition(Partition("b", 0, Polygon.rectangle(5, 5, 15, 15)))
        problems = building.validate()
        assert any("overlap" in problem for problem in problems)

    def test_validate_clean_building(self, office):
        assert office.validate() == []

    def test_missing_floor_raises(self, office):
        with pytest.raises(TopologyError):
            office.floor(99)

    def test_missing_partition_raises(self, office):
        with pytest.raises(TopologyError):
            office.partition(0, "nope")
