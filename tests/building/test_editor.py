"""Unit tests for the Indoor Environment Controller."""

import pytest

from repro.building.editor import IndoorEnvironmentController
from repro.building.model import Building, Door, Partition
from repro.building.synthetic import office_building
from repro.building.topology import AccessibilityGraph
from repro.building.distance import RoutePlanner
from repro.core.errors import TopologyError
from repro.geometry.decompose import DecompositionConfig
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class TestDoorDirectionality:
    def test_set_one_way_and_back(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        door = controller.set_door_one_way("f0_door_s1", "f0_room_s1", "f0_hall")
        assert not door.is_bidirectional
        assert door.allows("f0_room_s1", "f0_hall")
        assert not door.allows("f0_hall", "f0_room_s1")
        controller.set_door_bidirectional("f0_door_s1")
        assert door.is_bidirectional

    def test_one_way_door_affects_topology(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        controller.set_door_one_way("f0_door_s1", "f0_hall", "f0_room_s1")
        graph = AccessibilityGraph(fresh_office)
        assert not graph.is_reachable((0, "f0_room_s1"), (0, "f0_hall"))
        assert graph.is_reachable((0, "f0_hall"), (0, "f0_room_s1"))

    def test_unknown_door_raises(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        with pytest.raises(TopologyError):
            controller.set_door_one_way("no_such_door", "a", "b")


class TestObstacles:
    def test_deploy_and_remove_obstacle(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        obstacle = controller.deploy_obstacle(0, Polygon.rectangle(2, 2, 3, 3), attenuation_db=6.0)
        assert obstacle.obstacle_id in fresh_office.floors[0].obstacles
        controller.remove_obstacle(0, obstacle.obstacle_id)
        assert obstacle.obstacle_id not in fresh_office.floors[0].obstacles

    def test_obstacle_ids_are_unique(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        first = controller.deploy_obstacle(0, Polygon.rectangle(2, 2, 3, 3))
        second = controller.deploy_obstacle(0, Polygon.rectangle(4, 4, 5, 5))
        assert first.obstacle_id != second.obstacle_id

    def test_remove_missing_obstacle_raises(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        with pytest.raises(TopologyError):
            controller.remove_obstacle(0, "ghost")


class TestParseErrorFixing:
    def test_orphan_doors_removed(self):
        building = Building("broken")
        floor = building.new_floor(0)
        floor.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 10, 8)))
        floor.add_partition(Partition("b", 0, Polygon.rectangle(10, 0, 20, 8)))
        floor.add_door(Door("ok", 0, Point(10, 4), ("a", "b")))
        floor.add_door(Door("broken_door", 0, Point(20, 4), ("b", "a")))
        # Simulate a parse error: remove partition 'a' behind the floor's back.
        del floor.partitions["a"]
        log = IndoorEnvironmentController(building).fix_parse_errors()
        assert len(log) == 2
        assert not floor.doors

    def test_clean_building_untouched(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        assert controller.fix_parse_errors() == []
        assert fresh_office.door_count == office_building().door_count


class TestDecomposition:
    def test_hallways_are_decomposed(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        report = controller.decompose_irregular_partitions(
            DecompositionConfig(max_area=60.0, max_aspect_ratio=3.0)
        )
        assert report.partitions_split >= 2  # one hallway per floor
        assert "f0_hall" in report.decomposed_partitions
        assert "f0_hall" not in fresh_office.floors[0].partitions
        assert any(p.startswith("f0_hall#") for p in fresh_office.floors[0].partitions)

    def test_area_preserved_by_decomposition(self, fresh_office):
        area_before = fresh_office.total_area
        IndoorEnvironmentController(fresh_office).decompose_irregular_partitions()
        assert fresh_office.total_area == pytest.approx(area_before, rel=1e-4)

    def test_connectivity_preserved_by_decomposition(self, fresh_office):
        controller = IndoorEnvironmentController(fresh_office)
        controller.decompose_irregular_partitions(
            DecompositionConfig(max_area=50.0, max_aspect_ratio=2.5)
        )
        assert AccessibilityGraph(fresh_office).is_fully_connected()

    def test_routing_still_works_after_decomposition(self, fresh_office):
        IndoorEnvironmentController(fresh_office).decompose_irregular_partitions()
        planner = RoutePlanner(fresh_office)
        route = planner.shortest_route(0, Point(4, 3), 1, Point(35, 3))
        assert route.length > 0
        assert route.floors_visited == [0, 1]

    def test_doors_reattached_to_children(self, fresh_office):
        IndoorEnvironmentController(fresh_office).decompose_irregular_partitions(
            DecompositionConfig(max_area=60.0, max_aspect_ratio=3.0)
        )
        door = fresh_office.floors[0].doors["f0_door_s1"]
        assert any(p.startswith("f0_hall#") for p in door.partitions)

    def test_virtual_doors_created_between_siblings(self, fresh_office):
        report = IndoorEnvironmentController(fresh_office).decompose_irregular_partitions(
            DecompositionConfig(max_area=60.0, max_aspect_ratio=3.0)
        )
        assert report.created_virtual_doors
        assert all(d.startswith("vdoor_") for d in report.created_virtual_doors)

    def test_kind_filter_restricts_decomposition(self, fresh_office):
        from repro.building.model import PartitionKind

        report = IndoorEnvironmentController(fresh_office).decompose_irregular_partitions(
            DecompositionConfig(max_area=20.0, max_aspect_ratio=1.5),
            kinds=(PartitionKind.HALLWAY,),
        )
        assert all("hall" in partition_id for partition_id in report.decomposed_partitions)

    def test_balanced_building_is_left_alone(self, fresh_office):
        report = IndoorEnvironmentController(fresh_office).decompose_irregular_partitions(
            DecompositionConfig(max_area=10_000.0, max_aspect_ratio=100.0)
        )
        assert report.partitions_split == 0
