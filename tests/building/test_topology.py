"""Unit tests for the accessibility graph."""

import pytest

from repro.building.model import Building, Door, Partition, PartitionKind
from repro.building.topology import AccessibilityGraph
from repro.core.errors import TopologyError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


@pytest.fixture()
def chain_building() -> Building:
    """Three rooms in a row: a - b - c, with b->c one-way."""
    building = Building("chain")
    floor = building.new_floor(0)
    for index, name in enumerate(["a", "b", "c"]):
        floor.add_partition(
            Partition(name, 0, Polygon.rectangle(index * 10, 0, (index + 1) * 10, 8))
        )
    floor.add_door(Door("d_ab", 0, Point(10, 4), ("a", "b")))
    floor.add_door(Door("d_bc", 0, Point(20, 4), ("b", "c"), one_way_from="b", one_way_to="c"))
    return building


class TestGraphStructure:
    def test_node_and_edge_counts(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.node_count == 3
        # a<->b (2 directed edges) plus b->c (1 directed edge).
        assert graph.edge_count == 3

    def test_office_graph_counts(self, office):
        graph = AccessibilityGraph(office)
        assert graph.node_count == office.partition_count
        # Every bidirectional door yields two directed edges; staircases add two more.
        interior_doors = [d for d in office.all_doors() if not d.is_entrance]
        assert graph.edge_count == 2 * len(interior_doors) + 2 * len(office.staircases)

    def test_neighbors_respect_directionality(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.neighbors(0, "b") == [(0, "c")] or set(graph.neighbors(0, "b")) == {(0, "a"), (0, "c")}
        # c cannot go back through the one-way door.
        assert (0, "b") not in graph.neighbors(0, "c")

    def test_neighbors_of_unknown_partition_raises(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        with pytest.raises(TopologyError):
            graph.neighbors(0, "zzz")


class TestReachability:
    def test_reachable_respects_one_way(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.is_reachable((0, "a"), (0, "c"))
        assert not graph.is_reachable((0, "c"), (0, "a"))

    def test_reachable_set(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.reachable_set((0, "a")) == {(0, "a"), (0, "b"), (0, "c")}
        assert graph.reachable_set((0, "c")) == {(0, "c")}

    def test_unknown_nodes_are_unreachable(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert not graph.is_reachable((0, "a"), (5, "x"))
        assert graph.reachable_set((9, "q")) == set()

    def test_partition_hop_path(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.partition_hop_path((0, "a"), (0, "c")) == [(0, "a"), (0, "b"), (0, "c")]
        assert graph.partition_hop_path((0, "c"), (0, "a")) is None

    def test_multi_floor_reachability(self, office):
        graph = AccessibilityGraph(office)
        ground_room = (0, "f0_room_s1")
        upper_room = (1, "f1_room_s1")
        assert graph.is_reachable(ground_room, upper_room)
        assert graph.is_reachable(upper_room, ground_room)

    def test_office_is_fully_connected(self, office):
        assert AccessibilityGraph(office).is_fully_connected()

    def test_mall_and_clinic_are_fully_connected(self, mall, clinic):
        assert AccessibilityGraph(mall).is_fully_connected()
        assert AccessibilityGraph(clinic).is_fully_connected()


class TestConnectivityDiagnostics:
    def test_isolated_partition_detected(self):
        building = Building("iso")
        floor = building.new_floor(0)
        floor.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 5, 5)))
        floor.add_partition(Partition("island", 0, Polygon.rectangle(20, 20, 25, 25)))
        graph = AccessibilityGraph(building)
        assert (0, "island") in graph.isolated_partitions()
        assert not graph.is_fully_connected()
        assert len(graph.connected_components()) == 2

    def test_door_between(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.door_between((0, "a"), (0, "b")) == "d_ab"
        assert graph.door_between((0, "c"), (0, "b")) is None

    def test_staircase_edge_lookup(self, office):
        graph = AccessibilityGraph(office)
        assert graph.door_between((0, "f0_stair"), (1, "f1_stair")) == "stair_0_1"

    def test_degree_counts_connectors_once(self, chain_building):
        graph = AccessibilityGraph(chain_building)
        assert graph.degree_of(0, "b") == 2  # two doors touch b
        assert graph.degree_of(0, "a") == 1
        assert graph.degree_of(3, "missing") == 0

    def test_partitions_by_degree_ranks_hallway_first(self, office):
        graph = AccessibilityGraph(office)
        most_connected = graph.partitions_by_degree()[0]
        assert "hall" in most_connected[1]
