"""Unit tests for the synthetic building generators."""

import pytest

from repro.building.model import OUTDOOR, PartitionKind
from repro.building.synthetic import (
    ClinicSpec,
    MallSpec,
    OfficeSpec,
    building_by_name,
    clinic_building,
    mall_building,
    office_building,
)
from repro.building.topology import AccessibilityGraph
from repro.core.errors import ConfigurationError


class TestOffice:
    def test_default_structure(self, office):
        assert len(office.floors) == 2
        # Per floor: hallway + rooms_per_side south rooms + rooms_per_side north rooms.
        assert len(office.floors[0].partitions) == 1 + 2 * 5
        assert len(office.staircases) == 1

    def test_has_ground_floor_entrance(self, office):
        entrances = office.floors[0].entrances()
        assert len(entrances) == 1
        assert OUTDOOR in entrances[0].partitions

    def test_has_canteen_and_stairwell(self, office):
        kinds = {p.kind for p in office.floors[0].partitions.values()}
        assert PartitionKind.CANTEEN in kinds
        assert PartitionKind.STAIRWELL in kinds

    def test_scales_with_spec(self):
        big = office_building(OfficeSpec(floors=4, rooms_per_side=8))
        assert len(big.floors) == 4
        assert len(big.staircases) == 3
        assert len(big.floors[0].partitions) == 1 + 16

    def test_validates_cleanly(self, office):
        assert office.validate() == []

    def test_rejects_bad_spec(self):
        with pytest.raises(ConfigurationError):
            OfficeSpec(floors=0)
        with pytest.raises(ConfigurationError):
            OfficeSpec(rooms_per_side=1)


class TestMall:
    def test_default_structure(self, mall):
        assert len(mall.floors) == 2
        kinds = {p.kind for p in mall.floors[0].partitions.values()}
        assert PartitionKind.PUBLIC_AREA in kinds
        assert PartitionKind.SHOP in kinds
        assert PartitionKind.CANTEEN in kinds

    def test_two_ground_floor_entrances(self, mall):
        assert len(mall.floors[0].entrances()) == 2

    def test_atrium_is_largest_partition(self, mall):
        largest = max(mall.floors[0].partitions.values(), key=lambda p: p.area)
        assert largest.kind is PartitionKind.PUBLIC_AREA

    def test_connected(self, mall):
        assert AccessibilityGraph(mall).is_fully_connected()

    def test_validates_cleanly(self, mall):
        assert mall.validate() == []


class TestClinic:
    def test_single_floor_by_default(self, clinic):
        assert len(clinic.floors) == 1
        assert len(clinic.staircases) == 0

    def test_multi_floor_clinic_has_staircases(self):
        two_storey = clinic_building(ClinicSpec(floors=2))
        assert len(two_storey.staircases) == 1
        assert AccessibilityGraph(two_storey).is_fully_connected()

    def test_has_waiting_room(self, clinic):
        names = [p.name for p in clinic.floors[0].partitions.values()]
        assert any("Waiting" in name for name in names)

    def test_connected(self, clinic):
        assert AccessibilityGraph(clinic).is_fully_connected()


class TestFactory:
    def test_building_by_name(self):
        assert building_by_name("office").building_id == "office"
        assert building_by_name("mall", floors=3).floor_ids == [0, 1, 2]
        assert building_by_name("clinic", floors=1).building_id == "clinic"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            building_by_name("stadium")

    def test_every_archetype_is_connected(self):
        for name in ("office", "mall", "clinic"):
            building = building_by_name(name, floors=2)
            assert AccessibilityGraph(building).is_fully_connected(), name

    def test_deterministic_construction(self):
        first = office_building()
        second = office_building()
        assert first.partition_count == second.partition_count
        assert sorted(first.floors[0].partitions) == sorted(second.floors[0].partitions)
