"""Unit tests for the semantic extraction rules (Section 4.1)."""

import pytest

from repro.building.model import Building, Door, Partition, PartitionKind
from repro.building.semantics import RuleContext, SemanticExtractor, SemanticRule, default_rules
from repro.building.synthetic import clinic_building, mall_building, office_building
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def _context(name="Room", area=20.0, aspect=1.0, degree=1, floor_area=100.0) -> RuleContext:
    width = (area * aspect) ** 0.5
    height = area / width
    partition = Partition(
        partition_id="p",
        floor_id=0,
        polygon=Polygon.rectangle(0, 0, width, height),
        name=name,
    )
    return RuleContext(partition=partition, door_degree=degree, floor_area=floor_area)


class TestRuleMatching:
    def test_canteen_recognised_by_name(self):
        extractor = SemanticExtractor()
        tag, kind = extractor.classify_partition(_context(name="Staff canteen"))
        assert tag == "canteen" and kind is PartitionKind.CANTEEN

    def test_dining_room_recognised_as_canteen(self):
        extractor = SemanticExtractor()
        tag, _ = extractor.classify_partition(_context(name="Dining Room West"))
        assert tag == "canteen"

    def test_shop_recognised_by_name(self):
        tag, kind = SemanticExtractor().classify_partition(_context(name="Shoe store 3"))
        assert tag == "shop" and kind is PartitionKind.SHOP

    def test_public_area_by_connectivity_and_floorage(self):
        """Section 4.1: a public area is recognised by door connectivity and floorage."""
        tag, kind = SemanticExtractor().classify_partition(
            _context(name="Space 12", area=80.0, degree=4)
        )
        assert tag == "public_area" and kind is PartitionKind.PUBLIC_AREA

    def test_small_poorly_connected_space_is_plain_room(self):
        tag, kind = SemanticExtractor().classify_partition(
            _context(name="Space 12", area=15.0, degree=1)
        )
        assert tag == "room" and kind is None

    def test_hallway_by_shape_and_connectivity(self):
        tag, kind = SemanticExtractor().classify_partition(
            _context(name="Space 9", area=60.0, aspect=9.0, degree=5)
        )
        assert tag == "hallway" and kind is PartitionKind.HALLWAY

    def test_name_rules_take_priority_over_shape_rules(self):
        tag, _ = SemanticExtractor().classify_partition(
            _context(name="Canteen hall", area=80.0, aspect=9.0, degree=5)
        )
        assert tag == "canteen"

    def test_custom_rule_can_outrank_defaults(self):
        extractor = SemanticExtractor()
        extractor.add_rule(
            SemanticRule(
                name="server-room",
                predicate=lambda c: "server" in c.name,
                tag="server_room",
                priority=200,
            )
        )
        tag, _ = extractor.classify_partition(_context(name="Server canteen"))
        assert tag == "server_room"


class TestBuildingAnnotation:
    def test_office_annotation(self):
        building = office_building()
        assignments = SemanticExtractor().annotate_building(building)
        assert assignments["0:f0_room_s0"] == "canteen"
        assert building.partition(0, "f0_room_s0").semantic_tag == "canteen"
        assert assignments["0:f0_hall"] == "hallway"
        assert assignments["0:f0_stair"] == "stairwell"

    def test_mall_annotation_tags_shops_and_food_court(self):
        building = mall_building()
        SemanticExtractor().annotate_building(building)
        tags = {p.semantic_tag for p in building.all_partitions()}
        assert "shop" in tags and "canteen" in tags

    def test_clinic_annotation_tags_waiting_room_as_lobby(self):
        building = clinic_building()
        assignments = SemanticExtractor().annotate_building(building)
        assert assignments["0:f0_room_s0"] == "lobby"

    def test_partitions_with_tag(self):
        building = mall_building()
        extractor = SemanticExtractor()
        extractor.annotate_building(building)
        shops = extractor.partitions_with_tag(building, "shop")
        assert len(shops) > 0
        assert all(p.semantic_tag == "shop" for p in shops)

    def test_kind_not_overwritten_when_disabled(self):
        building = office_building()
        original_kinds = {p.partition_id: p.kind for p in building.all_partitions()}
        SemanticExtractor().annotate_building(building, overwrite_kind=False)
        for partition in building.all_partitions():
            assert partition.kind == original_kinds[partition.partition_id]

    def test_default_rules_have_fallback(self):
        rules = default_rules()
        assert rules[-1].tag == "room" or any(rule.priority == 0 for rule in rules)
