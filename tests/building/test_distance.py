"""Unit tests for indoor routing (minimum walking distance / time)."""

import pytest

from repro.building.distance import RoutePlanner
from repro.building.model import Building, Door, Partition, PartitionKind
from repro.core.errors import RoutingError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


@pytest.fixture(scope="module")
def office_planner(office):
    return RoutePlanner(office)


class TestSamePartitionRouting:
    def test_straight_line_route(self, office_planner):
        route = office_planner.shortest_route(0, Point(1, 1), 0, Point(5, 4))
        assert route.length == pytest.approx(Point(1, 1).distance_to(Point(5, 4)))
        assert len(route.waypoints) == 2
        assert route.doors == []

    def test_travel_time_uses_speed_factor(self, office_planner, office):
        route = office_planner.shortest_route(0, Point(1, 1), 0, Point(5, 1))
        partition = office.floor(0).partition_at(Point(1, 1))
        expected = route.length / (office_planner.walking_speed * partition.speed_factor)
        assert route.travel_time == pytest.approx(expected)


class TestCrossPartitionRouting:
    def test_route_passes_through_connecting_door(self, office_planner):
        # From room S0 to room S1 on the ground floor: must pass through the hallway.
        route = office_planner.shortest_route(0, Point(4, 3), 0, Point(12, 3))
        assert len(route.doors) >= 2
        assert route.length > Point(4, 3).distance_to(Point(12, 3))

    def test_route_is_longer_than_euclidean(self, office_planner):
        source, target = Point(4, 3), Point(36, 3)
        route = office_planner.shortest_route(0, source, 0, target)
        assert route.length >= source.distance_to(target)

    def test_waypoints_start_and_end_at_query_points(self, office_planner):
        source, target = Point(4, 3), Point(20, 16)
        route = office_planner.shortest_route(0, source, 0, target)
        assert route.waypoints[0].point == source
        assert route.waypoints[-1].point == target

    def test_route_legs_are_same_floor_segments(self, office_planner):
        route = office_planner.shortest_route(0, Point(4, 3), 1, Point(12, 3))
        for leg in route.legs():
            assert leg.length >= 0

    def test_shortest_distance_helper(self, office_planner):
        distance = office_planner.shortest_distance(0, Point(4, 3), 0, Point(12, 3))
        route = office_planner.shortest_route(0, Point(4, 3), 0, Point(12, 3))
        assert distance == pytest.approx(route.length)


class TestMultiFloorRouting:
    def test_cross_floor_route_uses_staircase(self, office_planner):
        route = office_planner.shortest_route(0, Point(4, 3), 1, Point(4, 3))
        assert route.staircases == ["stair_0_1"]
        assert route.floors_visited == [0, 1]

    def test_cross_floor_route_length_includes_stair_length(self, office_planner, office):
        route = office_planner.shortest_route(0, Point(4, 3), 1, Point(4, 3))
        assert route.length > office.staircases["stair_0_1"].length


class TestRoutingMetrics:
    def test_time_metric_prefers_fast_partitions(self):
        """With the time metric, a longer hallway detour can beat a slow shortcut."""
        building = Building("metric")
        floor = building.new_floor(0)
        # A slow canteen directly between source and target, and a fast hallway below.
        floor.add_partition(Partition("left", 0, Polygon.rectangle(0, 5, 10, 15)))
        floor.add_partition(
            Partition("mid_slow", 0, Polygon.rectangle(10, 5, 20, 15), kind=PartitionKind.ELEVATOR)
        )
        floor.add_partition(Partition("right", 0, Polygon.rectangle(20, 5, 30, 15)))
        floor.add_partition(
            Partition("hall", 0, Polygon.rectangle(0, 0, 30, 5), kind=PartitionKind.HALLWAY)
        )
        floor.add_door(Door("d1", 0, Point(10, 10), ("left", "mid_slow")))
        floor.add_door(Door("d2", 0, Point(20, 10), ("mid_slow", "right")))
        floor.add_door(Door("d3", 0, Point(5, 5), ("left", "hall")))
        floor.add_door(Door("d4", 0, Point(25, 5), ("hall", "right")))
        planner = RoutePlanner(building)
        source, target = Point(2, 10), Point(28, 10)
        by_length = planner.shortest_route(0, source, 0, target, metric="length")
        by_time = planner.shortest_route(0, source, 0, target, metric="time")
        assert "d1" in by_length.doors            # straight through the slow partition
        assert "d3" in by_time.doors              # detour via the fast hallway
        assert by_time.length >= by_length.length
        assert by_time.travel_time <= by_length.travel_time

    def test_unknown_metric_rejected(self, office_planner):
        with pytest.raises(RoutingError):
            office_planner.shortest_route(0, Point(4, 3), 0, Point(12, 3), metric="hops")


class TestDirectionalityAndErrors:
    def test_one_way_door_blocks_reverse_route(self):
        building = Building("oneway")
        floor = building.new_floor(0)
        floor.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 10, 8)))
        floor.add_partition(Partition("b", 0, Polygon.rectangle(10, 0, 20, 8)))
        floor.add_door(
            Door("d", 0, Point(10, 4), ("a", "b"), one_way_from="a", one_way_to="b")
        )
        planner = RoutePlanner(building)
        forward = planner.shortest_route(0, Point(5, 4), 0, Point(15, 4))
        assert forward.doors == ["d"]
        with pytest.raises(RoutingError):
            planner.shortest_route(0, Point(15, 4), 0, Point(5, 4))

    def test_point_outside_building_rejected(self, office_planner):
        with pytest.raises(RoutingError):
            office_planner.shortest_route(0, Point(-50, -50), 0, Point(4, 3))
        with pytest.raises(RoutingError):
            office_planner.shortest_route(0, Point(4, 3), 0, Point(500, 500))

    def test_disconnected_partition_raises(self):
        building = Building("island")
        floor = building.new_floor(0)
        floor.add_partition(Partition("a", 0, Polygon.rectangle(0, 0, 10, 8)))
        floor.add_partition(Partition("island", 0, Polygon.rectangle(50, 50, 60, 58)))
        planner = RoutePlanner(building)
        with pytest.raises(RoutingError):
            planner.shortest_route(0, Point(5, 4), 0, Point(55, 54))

    def test_invalid_walking_speed_rejected(self, office):
        with pytest.raises(RoutingError):
            RoutePlanner(office, walking_speed=0.0)
