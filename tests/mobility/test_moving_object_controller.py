"""Unit tests for the Moving Object Controller."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.distributions import CrowdOutliersDistribution, PoissonArrivals


class TestConfigValidation:
    def test_rejects_bad_speed_range(self):
        with pytest.raises(ConfigurationError):
            ObjectGenerationConfig(min_speed=2.0, max_speed=1.0)

    def test_rejects_bad_lifespan_range(self):
        with pytest.raises(ConfigurationError):
            ObjectGenerationConfig(min_lifespan=100.0, max_lifespan=50.0)

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            ObjectGenerationConfig(count=-1)

    def test_rejects_unknown_routing(self):
        with pytest.raises(ConfigurationError):
            ObjectGenerationConfig(routing_metric="fast")


class TestObjectCreation:
    def test_create_objects_matches_count(self, office):
        controller = MovingObjectController(
            office, ObjectGenerationConfig(count=12, duration=60.0, seed=1)
        )
        objects = controller.create_objects()
        assert len(objects) == 12
        assert len({o.object_id for o in objects}) == 12

    def test_object_parameters_within_configured_ranges(self, office):
        """Section 2: number, maximum speed, moving pattern, and lifespan are configurable."""
        config = ObjectGenerationConfig(
            count=20, min_speed=1.0, max_speed=1.5,
            min_lifespan=100.0, max_lifespan=200.0, duration=60.0, seed=2,
        )
        controller = MovingObjectController(office, config)
        for moving_object in controller.create_objects():
            assert 1.0 <= moving_object.max_speed <= 1.5
            assert 100.0 <= moving_object.lifespan.duration <= 200.0
            assert moving_object.lifespan.birth == 0.0

    def test_initial_positions_follow_distribution(self, office):
        distribution = CrowdOutliersDistribution(crowd_count=2)
        controller = MovingObjectController(
            office,
            ObjectGenerationConfig(count=30, duration=60.0, seed=3),
            distribution=distribution,
        )
        controller.create_objects()
        assert len(distribution.last_crowds) == 2

    def test_arrivals_created_from_process(self, office):
        controller = MovingObjectController(
            office,
            ObjectGenerationConfig(count=5, duration=300.0, seed=4),
            arrival_process=PoissonArrivals(rate_per_minute=4.0),
        )
        arrivals = controller.create_arrivals()
        assert arrivals
        for start_time, moving_object in arrivals:
            assert 0.0 <= start_time < 300.0
            assert moving_object.lifespan.birth == pytest.approx(start_time)


class TestGeneration:
    def test_generate_produces_trajectories_for_every_object(self, office):
        controller = MovingObjectController(
            office,
            ObjectGenerationConfig(count=6, duration=60.0, time_step=0.5, seed=5),
        )
        result = controller.generate()
        assert len(result.trajectories) == 6
        assert result.total_samples > 6 * 50

    def test_generate_with_arrivals_adds_objects(self, office):
        controller = MovingObjectController(
            office,
            ObjectGenerationConfig(count=3, duration=120.0, time_step=0.5, seed=6),
            arrival_process=PoissonArrivals(rate_per_minute=10.0),
        )
        result = controller.generate()
        assert result.object_count > 3

    def test_routing_metric_propagated_to_objects(self, office):
        controller = MovingObjectController(
            office,
            ObjectGenerationConfig(count=4, duration=60.0, routing_metric="time", seed=7),
        )
        assert all(o.routing_metric == "time" for o in controller.create_objects())

    def test_reproducibility(self, office):
        def run():
            controller = MovingObjectController(
                office,
                ObjectGenerationConfig(count=4, duration=60.0, time_step=0.5, seed=99),
            )
            result = controller.generate()
            return result.trajectories.total_records

        assert run() == run()
