"""Unit tests for initial distributions and arrival processes (Section 3.1)."""

import random
from collections import Counter

import pytest

from repro.building.semantics import SemanticExtractor
from repro.building.synthetic import mall_building
from repro.core.errors import ConfigurationError
from repro.mobility.distributions import (
    CrowdOutliersDistribution,
    NoArrivals,
    PoissonArrivals,
    UniformDistribution,
    distribution_by_name,
)


class TestUniform:
    def test_count_and_validity(self, office):
        rng = random.Random(1)
        placements = UniformDistribution().place(office, 40, rng)
        assert len(placements) == 40
        for floor_id, point in placements:
            assert office.floor(floor_id).partition_at(point) is not None

    def test_spreads_over_floors(self, office):
        rng = random.Random(2)
        placements = UniformDistribution().place(office, 120, rng)
        floors = Counter(floor_id for floor_id, _ in placements)
        assert set(floors) == {0, 1}

    def test_zero_count(self, office):
        assert UniformDistribution().place(office, 0, random.Random(1)) == []


class TestCrowdOutliers:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdOutliersDistribution(crowd_count=0)
        with pytest.raises(ConfigurationError):
            CrowdOutliersDistribution(crowd_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CrowdOutliersDistribution(crowd_radius=-1)

    def test_crowds_formed_in_hot_partitions(self, office):
        rng = random.Random(3)
        distribution = CrowdOutliersDistribution(crowd_count=2, crowd_fraction=0.8)
        placements = distribution.place(office, 50, rng)
        assert len(placements) == 50
        assert len(distribution.last_crowds) == 2
        assert sum(crowd.members for crowd in distribution.last_crowds) == 40

    def test_crowd_members_are_near_their_center(self, office):
        rng = random.Random(4)
        distribution = CrowdOutliersDistribution(crowd_count=1, crowd_fraction=1.0, crowd_radius=2.0)
        placements = distribution.place(office, 30, rng)
        crowd = distribution.last_crowds[0]
        distances = [
            point.distance_to(crowd.center)
            for floor_id, point in placements
            if floor_id == crowd.floor_id
        ]
        assert len(distances) == 30
        assert max(distances) < 10.0

    def test_crowds_more_concentrated_than_uniform(self, mall):
        """Figure 3(b): crowd-outliers forms visible crowds, uniform does not."""
        rng = random.Random(5)
        building = mall_building()
        SemanticExtractor().annotate_building(building)
        crowd_placements = CrowdOutliersDistribution(
            crowd_count=3, crowd_fraction=0.8, hot_partition_tags=("shop", "canteen")
        ).place(building, 100, rng)
        uniform_placements = UniformDistribution().place(building, 100, random.Random(5))

        def top_partition_share(placements):
            counts = Counter(
                building.floor(floor_id).partition_at(point).partition_id
                for floor_id, point in placements
            )
            return max(counts.values()) / 100.0

        assert top_partition_share(crowd_placements) > top_partition_share(uniform_placements)

    def test_hot_tags_honoured(self, mall):
        building = mall_building()
        SemanticExtractor().annotate_building(building)
        distribution = CrowdOutliersDistribution(
            crowd_count=2, hot_partition_tags=("canteen",)
        )
        distribution.place(building, 20, random.Random(6))
        hot_partitions = {crowd.partition_id for crowd in distribution.last_crowds}
        assert all("foodcourt" in partition_id for partition_id in hot_partitions)

    def test_placements_are_walkable(self, office):
        rng = random.Random(7)
        placements = CrowdOutliersDistribution().place(office, 60, rng)
        for floor_id, point in placements:
            assert office.floor(floor_id).partition_at(point) is not None


class TestArrivalProcesses:
    def test_no_arrivals(self, office):
        assert NoArrivals().arrivals(office, 600.0, random.Random(1)) == []

    def test_poisson_rate_roughly_matches(self, office):
        rng = random.Random(8)
        arrivals = PoissonArrivals(rate_per_minute=6.0).arrivals(office, 600.0, rng)
        # Expectation is 60 arrivals over 10 minutes; allow generous slack.
        assert 30 <= len(arrivals) <= 100

    def test_arrival_times_within_duration_and_sorted_locations_valid(self, office):
        rng = random.Random(9)
        arrivals = PoissonArrivals(rate_per_minute=10.0).arrivals(office, 120.0, rng)
        for t, (floor_id, point) in arrivals:
            assert 0.0 <= t < 120.0
            assert office.floor(floor_id).partition_at(point) is not None

    def test_arrivals_emerge_at_entrances_by_default(self, office):
        rng = random.Random(10)
        arrivals = PoissonArrivals(rate_per_minute=30.0).arrivals(office, 60.0, rng)
        entrance = office.floors[0].entrances()[0]
        for _, (floor_id, point) in arrivals:
            assert floor_id == 0
            assert point.distance_to(entrance.position) < 3.0

    def test_explicit_emerging_locations(self, office):
        from repro.geometry.point import Point

        rng = random.Random(11)
        emerging = [(1, Point(35.0, 3.0))]
        arrivals = PoissonArrivals(rate_per_minute=20.0, emerging=emerging).arrivals(
            office, 60.0, rng
        )
        assert arrivals
        assert all(placement == (1, Point(35.0, 3.0)) for _, placement in arrivals)

    def test_zero_rate_produces_nothing(self, office):
        assert PoissonArrivals(rate_per_minute=0.0).arrivals(office, 600.0, random.Random(1)) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_per_minute=-1.0)


class TestFactory:
    def test_by_name(self):
        assert isinstance(distribution_by_name("uniform"), UniformDistribution)
        assert isinstance(distribution_by_name("crowd-outliers"), CrowdOutliersDistribution)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            distribution_by_name("gaussian")
