"""Unit tests for the crowd interaction extension (Section 4 extension point)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.geometry.point import Point
from repro.mobility.behavior import ContinuousWalkBehavior
from repro.mobility.crowd import (
    DensitySlowdownModel,
    NoInteraction,
    crowd_model_by_name,
)
from repro.mobility.engine import EngineConfig, SimulationEngine
from repro.mobility.objects import Lifespan, MovingObject


class TestDensitySlowdownModel:
    def test_no_neighbors_means_full_speed(self):
        model = DensitySlowdownModel()
        assert model.speed_factor(0, Point(0, 0), []) == 1.0

    def test_each_close_neighbor_slows_the_object(self):
        model = DensitySlowdownModel(personal_radius=2.0, slowdown_per_neighbor=0.2)
        one = model.speed_factor(0, Point(0, 0), [(0, Point(1, 0))])
        two = model.speed_factor(0, Point(0, 0), [(0, Point(1, 0)), (0, Point(0, 1))])
        assert one == pytest.approx(0.8)
        assert two == pytest.approx(0.6)

    def test_far_and_other_floor_neighbors_ignored(self):
        model = DensitySlowdownModel(personal_radius=2.0)
        factor = model.speed_factor(
            0, Point(0, 0), [(0, Point(10, 0)), (1, Point(0.5, 0))]
        )
        assert factor == 1.0

    def test_min_factor_floor(self):
        model = DensitySlowdownModel(personal_radius=5.0, slowdown_per_neighbor=0.5, min_factor=0.3)
        crowd = [(0, Point(0.1 * i, 0)) for i in range(1, 10)]
        assert model.speed_factor(0, Point(0, 0), crowd) == pytest.approx(0.3)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DensitySlowdownModel(personal_radius=0)
        with pytest.raises(ConfigurationError):
            DensitySlowdownModel(slowdown_per_neighbor=1.5)
        with pytest.raises(ConfigurationError):
            DensitySlowdownModel(min_factor=0.0)


class TestFactory:
    def test_by_name(self):
        assert isinstance(crowd_model_by_name("none"), NoInteraction)
        assert isinstance(crowd_model_by_name("density-slowdown"), DensitySlowdownModel)
        assert isinstance(crowd_model_by_name("congestion"), DensitySlowdownModel)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            crowd_model_by_name("social-force")


class TestEngineIntegration:
    def _run(self, office, crowd_model, count=12, seed=5):
        engine = SimulationEngine(
            office,
            config=EngineConfig(duration=90.0, time_step=0.5, sampling_period=1.0, seed=seed),
            behavior=ContinuousWalkBehavior(speed_fraction=1.0),
            crowd_model=crowd_model,
        )
        objects = []
        for index in range(count):
            moving_object = MovingObject(
                object_id=f"o{index}", max_speed=1.4, lifespan=Lifespan(0.0, 90.0)
            )
            # Everybody starts packed together in the same room.
            moving_object.place_at(0, Point(3.0 + 0.3 * index, 3.0))
            objects.append(moving_object)
        result = engine.run(objects)
        return sum(t.length for t in result.trajectories) / len(result.trajectories)

    def test_congestion_reduces_distance_covered(self, office):
        free_distance = self._run(office, NoInteraction())
        congested_distance = self._run(
            office, DensitySlowdownModel(personal_radius=2.0, slowdown_per_neighbor=0.2)
        )
        assert congested_distance < free_distance

    def test_congestion_never_stops_objects_entirely(self, office):
        congested_distance = self._run(
            office, DensitySlowdownModel(personal_radius=3.0, slowdown_per_neighbor=0.5, min_factor=0.2)
        )
        assert congested_distance > 5.0

    def test_toolkit_accepts_crowd_interaction(self, office):
        from repro.core.toolkit import Vita

        vita = Vita(seed=8)
        vita.use_building(office)
        result = vita.generate_objects(
            count=6, duration=30, time_step=0.5, crowd_interaction="density-slowdown"
        )
        assert result.total_samples > 0

    def test_pipeline_config_accepts_crowd_interaction(self):
        from repro.core.config import config_from_dict

        config = config_from_dict(
            {"objects": {"count": 3, "duration": 20, "crowd_interaction": "density-slowdown"},
             "devices": [{"count_per_floor": 3}]}
        )
        assert config.objects.crowd_interaction == "density-slowdown"
