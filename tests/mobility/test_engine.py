"""Unit tests for the simulation engine (Moving Object Layer core)."""

import pytest

from repro.building.distance import RoutePlanner
from repro.core.errors import MovementError
from repro.geometry.point import Point
from repro.mobility.behavior import ContinuousWalkBehavior, WalkStayBehavior
from repro.mobility.engine import EngineConfig, SimulationEngine
from repro.mobility.intentions import DestinationIntention
from repro.mobility.objects import Lifespan, MovingObject


def _object(object_id="o1", birth=0.0, death=300.0, speed=1.4, floor=0, x=4.0, y=3.0):
    moving_object = MovingObject(
        object_id=object_id,
        max_speed=speed,
        lifespan=Lifespan(birth, death),
    )
    moving_object.place_at(floor, Point(x, y))
    return moving_object


class TestEngineConfig:
    def test_rejects_bad_durations(self):
        with pytest.raises(MovementError):
            EngineConfig(duration=0)
        with pytest.raises(MovementError):
            EngineConfig(time_step=0)

    def test_sampling_period_clamped_to_time_step(self):
        config = EngineConfig(time_step=1.0, sampling_period=0.1)
        assert config.sampling_period == 1.0


class TestSimulationRun:
    def test_sampling_frequency_controls_record_count(self, office):
        objects = [_object()]
        for period, expected in ((1.0, 101), (5.0, 21)):
            engine = SimulationEngine(
                office,
                config=EngineConfig(duration=100.0, time_step=0.5, sampling_period=period, seed=1),
            )
            result = engine.run([_object()])
            assert len(result.trajectories["o1"]) == expected

    def test_all_samples_inside_building(self, office):
        engine = SimulationEngine(
            office, config=EngineConfig(duration=120.0, time_step=0.5, seed=2)
        )
        result = engine.run([_object(), _object("o2", x=20.0, y=9.0)])
        for record in result.trajectories.all_records():
            assert record.location.partition_id is not None

    def test_object_speed_never_exceeds_max(self, office):
        max_speed = 1.2
        engine = SimulationEngine(
            office,
            config=EngineConfig(duration=120.0, time_step=0.5, sampling_period=0.5, seed=3),
            behavior=ContinuousWalkBehavior(speed_fraction=1.0),
        )
        result = engine.run([_object(speed=max_speed)])
        records = result.trajectories["o1"].records
        for previous, current in zip(records, records[1:]):
            if previous.location.floor_id != current.location.floor_id:
                continue
            distance = previous.location.distance_to(current.location)
            elapsed = current.t - previous.t
            assert distance <= max_speed * elapsed + 1e-6

    def test_objects_move(self, office):
        engine = SimulationEngine(
            office,
            config=EngineConfig(duration=120.0, time_step=0.5, seed=4),
            behavior=ContinuousWalkBehavior(),
        )
        result = engine.run([_object()])
        assert result.trajectories["o1"].length > 5.0

    def test_lifespan_limits_recorded_samples(self, office):
        engine = SimulationEngine(
            office, config=EngineConfig(duration=200.0, time_step=0.5, seed=5)
        )
        result = engine.run([_object(death=50.0)])
        assert result.trajectories["o1"].end_time <= 50.0

    def test_late_birth_objects_start_late(self, office):
        engine = SimulationEngine(
            office, config=EngineConfig(duration=100.0, time_step=0.5, seed=6)
        )
        result = engine.run([_object(birth=40.0, death=100.0)])
        assert result.trajectories["o1"].start_time >= 40.0

    def test_arrivals_are_injected(self, office):
        engine = SimulationEngine(
            office, config=EngineConfig(duration=100.0, time_step=0.5, seed=7)
        )
        newcomer = _object("late", birth=30.0, death=100.0)
        result = engine.run([_object()], arrivals=[(30.0, newcomer)])
        assert "late" in result.trajectories
        assert result.trajectories["late"].start_time >= 30.0
        assert result.object_count == 2

    def test_snapshots_collected(self, office):
        engine = SimulationEngine(
            office, config=EngineConfig(duration=60.0, time_step=0.5, seed=8)
        )
        result = engine.run([_object(), _object("o2", x=12.0, y=3.0)], snapshot_times=[30.0])
        assert 30.0 in result.snapshots
        assert set(result.snapshots[30.0]) == {"o1", "o2"}

    def test_walk_stay_behaviour_produces_stationary_periods(self, office):
        engine = SimulationEngine(
            office,
            config=EngineConfig(duration=200.0, time_step=0.5, sampling_period=1.0, seed=9),
            behavior=WalkStayBehavior(min_stay=30.0, max_stay=60.0),
        )
        result = engine.run([_object()])
        records = result.trajectories["o1"].records
        stationary = sum(
            1
            for previous, current in zip(records, records[1:])
            if previous.location.floor_id == current.location.floor_id
            and previous.location.distance_to(current.location) < 1e-6
        )
        assert stationary > 10

    def test_observers_called_every_tick(self, office):
        ticks = []
        engine = SimulationEngine(
            office, config=EngineConfig(duration=10.0, time_step=1.0, seed=10)
        )
        engine.observers.append(lambda t, objects: ticks.append(t))
        engine.run([_object()])
        assert len(ticks) == 11

    def test_multi_floor_movement_possible(self, office):
        engine = SimulationEngine(
            office,
            config=EngineConfig(duration=400.0, time_step=0.5, seed=11),
            behavior=ContinuousWalkBehavior(),
            intention=DestinationIntention(),
        )
        objects = [_object(f"o{i}", x=4.0 + i, y=3.0) for i in range(5)]
        result = engine.run(objects)
        floors_seen = set()
        for trajectory in result.trajectories:
            floors_seen.update(trajectory.floors_visited())
        assert floors_seen == {0, 1}

    def test_reproducible_with_same_seed(self, office):
        def run(seed):
            engine = SimulationEngine(
                office, config=EngineConfig(duration=60.0, time_step=0.5, seed=seed)
            )
            result = engine.run([_object()])
            return [
                (record.t, round(record.location.x, 6), round(record.location.y, 6))
                for record in result.trajectories["o1"].records
            ]

        assert run(42) == run(42)
        assert run(42) != run(43)
