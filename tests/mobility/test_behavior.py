"""Unit tests for the moving behaviours (walk-stay, continuous, variable speed)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.mobility.behavior import (
    ContinuousWalkBehavior,
    VariableSpeedBehavior,
    WalkStayBehavior,
    behavior_by_name,
)


class TestWalkStay:
    def test_stay_duration_within_bounds(self):
        behavior = WalkStayBehavior(min_stay=10.0, max_stay=20.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 10.0 <= behavior.stay_duration_at_destination(rng) <= 20.0

    def test_pause_duration_within_bounds(self):
        behavior = WalkStayBehavior(on_path_stop_min=1.0, on_path_stop_max=3.0)
        rng = random.Random(2)
        for _ in range(100):
            assert 1.0 <= behavior.pause_duration(rng) <= 3.0

    def test_pause_probability_exposed(self):
        assert WalkStayBehavior(on_path_stop_rate=0.05).pause_probability_per_second() == 0.05

    def test_speed_multiplier_in_range(self):
        behavior = WalkStayBehavior()
        rng = random.Random(3)
        for _ in range(100):
            assert 0.8 <= behavior.speed_multiplier(rng) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WalkStayBehavior(min_stay=-1)
        with pytest.raises(ConfigurationError):
            WalkStayBehavior(min_stay=10, max_stay=5)
        with pytest.raises(ConfigurationError):
            WalkStayBehavior(on_path_stop_rate=2.0)


class TestContinuous:
    def test_never_stays(self):
        behavior = ContinuousWalkBehavior()
        rng = random.Random(1)
        assert behavior.stay_duration_at_destination(rng) == 0.0
        assert behavior.pause_probability_per_second() == 0.0

    def test_constant_speed_fraction(self):
        behavior = ContinuousWalkBehavior(speed_fraction=0.7)
        assert behavior.speed_multiplier(random.Random(1)) == 0.7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousWalkBehavior(speed_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ContinuousWalkBehavior(speed_fraction=1.5)


class TestVariableSpeed:
    def test_speed_within_configured_band(self):
        behavior = VariableSpeedBehavior(min_fraction=0.3, max_fraction=0.6)
        rng = random.Random(4)
        for _ in range(100):
            assert 0.3 <= behavior.speed_multiplier(rng) <= 0.6

    def test_fixed_destination_stay(self):
        behavior = VariableSpeedBehavior(stay_at_destination=7.5)
        assert behavior.stay_duration_at_destination(random.Random(1)) == 7.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VariableSpeedBehavior(min_fraction=0.9, max_fraction=0.5)
        with pytest.raises(ConfigurationError):
            VariableSpeedBehavior(stay_at_destination=-1)


class TestFactory:
    def test_by_name(self):
        assert isinstance(behavior_by_name("walk-stay"), WalkStayBehavior)
        assert isinstance(behavior_by_name("continuous"), ContinuousWalkBehavior)
        assert isinstance(behavior_by_name("variable-speed"), VariableSpeedBehavior)

    def test_kwargs_forwarded(self):
        behavior = behavior_by_name("walk-stay", min_stay=1.0, max_stay=2.0)
        assert behavior.min_stay == 1.0

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            behavior_by_name("teleport")
