"""Unit tests for moving intentions (destination and random-way models)."""

import random

import pytest

from repro.building.semantics import SemanticExtractor
from repro.building.synthetic import mall_building
from repro.core.errors import ConfigurationError
from repro.geometry.point import Point
from repro.mobility.intentions import (
    DestinationIntention,
    RandomWayIntention,
    intention_by_name,
)


class TestDestinationIntention:
    def test_goal_is_inside_a_partition(self, office):
        rng = random.Random(1)
        intention = DestinationIntention()
        for _ in range(20):
            floor_id, point = intention.next_goal(office, 0, Point(4, 3), rng)
            assert office.floor(floor_id).partition_at(point) is not None

    def test_goal_avoids_current_partition_by_default(self, office):
        rng = random.Random(2)
        intention = DestinationIntention()
        current = office.floor(0).partition_at(Point(4, 3)).partition_id
        for _ in range(20):
            floor_id, point = intention.next_goal(office, 0, Point(4, 3), rng)
            target = office.floor(floor_id).partition_at(point).partition_id
            assert (floor_id, target) != (0, current)

    def test_same_partition_allowed_when_configured(self, office):
        rng = random.Random(3)
        intention = DestinationIntention(allow_same_partition=True)
        results = {
            office.floor(f).partition_at(p).partition_id
            for f, p in (intention.next_goal(office, 0, Point(4, 3), rng) for _ in range(100))
        }
        # With enough samples, the (large) current partition eventually shows up.
        assert len(results) > 3

    def test_target_tags_bias_goals(self):
        building = mall_building()
        SemanticExtractor().annotate_building(building)
        rng = random.Random(4)
        intention = DestinationIntention(target_tags=("canteen",), tag_bias=1.0)
        for _ in range(10):
            floor_id, point = intention.next_goal(building, 0, Point(30, 20), rng)
            partition = building.floor(floor_id).partition_at(point)
            assert partition.semantic_tag == "canteen"

    def test_invalid_tag_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            DestinationIntention(tag_bias=1.5)


class TestRandomWayIntention:
    def test_goal_is_adjacent_partition(self, office):
        rng = random.Random(5)
        intention = RandomWayIntention()
        current_partition = office.floor(0).partition_at(Point(4, 3)).partition_id
        neighbors = set(office.floors[0].neighbors_of(current_partition))
        for _ in range(20):
            floor_id, point = intention.next_goal(office, 0, Point(4, 3), rng)
            target = office.floor(floor_id).partition_at(point).partition_id
            assert target in neighbors

    def test_hallway_goal_can_cross_floor(self, office):
        """From the stairwell the random walk can reach the other floor."""
        rng = random.Random(6)
        intention = RandomWayIntention()
        stairwell_point = office.partition(0, "f0_stair").centroid
        floors = {
            intention.next_goal(office, 0, stairwell_point, rng)[0] for _ in range(50)
        }
        assert floors == {0, 1}

    def test_graph_is_reused_per_building(self, office):
        intention = RandomWayIntention()
        intention.next_goal(office, 0, Point(4, 3), random.Random(1))
        graph_first = intention._graph
        intention.next_goal(office, 0, Point(4, 3), random.Random(2))
        assert intention._graph is graph_first


class TestFactory:
    def test_by_name(self):
        assert isinstance(intention_by_name("destination"), DestinationIntention)
        assert isinstance(intention_by_name("random-way"), RandomWayIntention)
        assert isinstance(intention_by_name("random"), RandomWayIntention)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            intention_by_name("teleport")
