"""Unit tests for moving objects and lifespans."""

import pytest

from repro.core.errors import MovementError
from repro.mobility.objects import Lifespan, MovementState, MovingObject
from repro.geometry.point import Point


class TestLifespan:
    def test_rejects_death_before_birth(self):
        with pytest.raises(MovementError):
            Lifespan(birth=10.0, death=5.0)

    def test_alive_at(self):
        lifespan = Lifespan(birth=10.0, death=20.0)
        assert not lifespan.alive_at(5.0)
        assert lifespan.alive_at(10.0)
        assert lifespan.alive_at(15.0)
        assert lifespan.alive_at(20.0)
        assert not lifespan.alive_at(25.0)

    def test_duration(self):
        assert Lifespan(5.0, 65.0).duration == pytest.approx(60.0)


class TestMovingObject:
    def _object(self, **kwargs):
        defaults = dict(
            object_id="o1",
            max_speed=1.5,
            lifespan=Lifespan(0.0, 100.0),
        )
        defaults.update(kwargs)
        return MovingObject(**defaults)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(MovementError):
            self._object(max_speed=0.0)

    def test_rejects_unknown_routing_metric(self):
        with pytest.raises(MovementError):
            self._object(routing_metric="fastest")

    def test_place_at(self):
        moving_object = self._object()
        moving_object.place_at(1, Point(3, 4))
        assert moving_object.floor_id == 1
        assert moving_object.position == Point(3, 4)

    def test_alive_at_respects_lifespan_and_state(self):
        moving_object = self._object()
        assert moving_object.alive_at(50.0)
        assert not moving_object.alive_at(150.0)
        moving_object.finish()
        assert not moving_object.alive_at(50.0)

    def test_begin_stay(self):
        moving_object = self._object()
        moving_object.begin_stay(until=42.0)
        assert moving_object.state is MovementState.STAYING
        assert moving_object.stay_until == 42.0

    def test_begin_route_requires_waypoints(self):
        from repro.building.distance import Route

        moving_object = self._object()
        with pytest.raises(MovementError):
            moving_object.begin_route(Route(waypoints=[], length=0.0, travel_time=0.0))

    def test_has_route_progression(self, office):
        from repro.building.distance import RoutePlanner

        planner = RoutePlanner(office)
        route = planner.shortest_route(0, Point(4, 3), 0, Point(12, 3))
        moving_object = self._object()
        moving_object.place_at(0, Point(4, 3))
        moving_object.begin_route(route)
        assert moving_object.has_route
        assert moving_object.state is MovementState.WALKING
        moving_object.route_leg_index = len(route.waypoints) - 1
        assert not moving_object.has_route

    def test_effective_speed(self):
        moving_object = self._object(max_speed=2.0)
        moving_object.speed_multiplier = 0.5
        assert moving_object.effective_speed == pytest.approx(1.0)

    def test_current_waypoints_empty_when_idle(self):
        assert self._object().current_waypoints() == []
