"""Unit tests for trajectories and trajectory sets."""

import pytest

from repro.core.errors import MovementError
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.mobility.trajectory import Trajectory, TrajectorySet


def _record(object_id="o1", t=0.0, x=0.0, y=0.0, floor=0, partition="p"):
    return TrajectoryRecord(
        object_id=object_id,
        location=IndoorLocation("b", floor, partition_id=partition, x=x, y=y),
        t=t,
    )


@pytest.fixture()
def straight_walk() -> Trajectory:
    """An object walking 10 m along the x axis in 10 s, sampled every second."""
    trajectory = Trajectory("o1")
    for second in range(11):
        trajectory.append(_record(t=float(second), x=float(second)))
    return trajectory


class TestTrajectoryBasics:
    def test_append_enforces_object_id(self):
        trajectory = Trajectory("o1")
        with pytest.raises(MovementError):
            trajectory.append(_record(object_id="o2"))

    def test_append_enforces_time_order(self):
        trajectory = Trajectory("o1")
        trajectory.append(_record(t=5.0))
        with pytest.raises(MovementError):
            trajectory.append(_record(t=4.0))

    def test_duration_and_length(self, straight_walk):
        assert straight_walk.duration == pytest.approx(10.0)
        assert straight_walk.length == pytest.approx(10.0)
        assert straight_walk.average_speed() == pytest.approx(1.0)

    def test_empty_trajectory_properties(self):
        trajectory = Trajectory("o1")
        assert trajectory.is_empty
        assert trajectory.duration == 0.0
        assert trajectory.length == 0.0
        with pytest.raises(MovementError):
            _ = trajectory.start_time

    def test_floors_and_partitions_visited(self):
        trajectory = Trajectory("o1")
        trajectory.append(_record(t=0, floor=0, partition="a"))
        trajectory.append(_record(t=1, floor=0, partition="a"))
        trajectory.append(_record(t=2, floor=0, partition="b"))
        trajectory.append(_record(t=3, floor=1, partition="c"))
        assert trajectory.floors_visited() == [0, 1]
        assert trajectory.partitions_visited() == ["a", "b", "c"]

    def test_cross_floor_legs_do_not_count_toward_length(self):
        trajectory = Trajectory("o1")
        trajectory.append(_record(t=0, floor=0, x=0))
        trajectory.append(_record(t=1, floor=1, x=100))
        assert trajectory.length == 0.0


class TestInterpolation:
    def test_location_at_sample_times(self, straight_walk):
        location = straight_walk.location_at(3.0)
        assert location.point() == (3.0, 0.0)

    def test_location_at_interpolates(self, straight_walk):
        location = straight_walk.location_at(3.5)
        assert location.point()[0] == pytest.approx(3.5)

    def test_location_outside_lifespan_is_none(self, straight_walk):
        assert straight_walk.location_at(-1.0) is None
        assert straight_walk.location_at(99.0) is None

    def test_location_at_floor_change_keeps_earlier_floor(self):
        trajectory = Trajectory("o1")
        trajectory.append(_record(t=0, floor=0, x=0))
        trajectory.append(_record(t=10, floor=1, x=5))
        location = trajectory.location_at(5.0)
        assert location.floor_id == 0

    def test_resample_coarser(self, straight_walk):
        coarse = straight_walk.resample(2.0)
        assert len(coarse) == 6
        assert coarse.records[1].t == pytest.approx(2.0)

    def test_resample_preserves_endpoints(self, straight_walk):
        coarse = straight_walk.resample(3.0)
        assert coarse.records[0].t == straight_walk.start_time
        assert coarse.records[-1].t == pytest.approx(straight_walk.end_time)

    def test_resample_rejects_non_positive_period(self, straight_walk):
        with pytest.raises(MovementError):
            straight_walk.resample(0.0)

    def test_slice(self, straight_walk):
        window = straight_walk.slice(2.0, 5.0)
        assert len(window) == 4
        assert window.records[0].t == 2.0


class TestTrajectorySet:
    def test_records_routed_by_object(self):
        trajectories = TrajectorySet()
        trajectories.add_record(_record(object_id="a", t=0))
        trajectories.add_record(_record(object_id="b", t=0))
        trajectories.add_record(_record(object_id="a", t=1))
        assert len(trajectories) == 2
        assert len(trajectories["a"]) == 2
        assert trajectories.total_records == 3
        assert trajectories.object_ids == ["a", "b"]

    def test_get_missing_returns_none(self):
        assert TrajectorySet().get("ghost") is None

    def test_all_records_sorted_by_time(self):
        trajectories = TrajectorySet()
        trajectories.add_record(_record(object_id="a", t=5))
        trajectories.add_record(_record(object_id="b", t=1))
        times = [record.t for record in trajectories.all_records()]
        assert times == sorted(times)

    def test_snapshot(self):
        trajectories = TrajectorySet()
        for t in range(5):
            trajectories.add_record(_record(object_id="a", t=float(t), x=float(t)))
        trajectories.add_record(_record(object_id="late", t=10.0))
        snapshot = trajectories.snapshot(2.0)
        assert "a" in snapshot and "late" not in snapshot

    def test_resample_set(self, office_simulation):
        coarse = office_simulation.trajectories.resample(5.0)
        assert len(coarse) == len(office_simulation.trajectories)
        assert coarse.total_records < office_simulation.trajectories.total_records
