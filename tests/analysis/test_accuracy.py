"""Unit tests for positioning accuracy evaluation against ground truth."""

import math

import pytest

from repro.core.types import (
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    TrajectoryRecord,
)
from repro.analysis.accuracy import (
    AccuracyReport,
    evaluate_positioning,
    evaluate_probabilistic,
    evaluate_proximity,
    ground_truth_coverage,
)
from repro.devices.rfid import RFIDReader
from repro.mobility.trajectory import TrajectorySet


def _loc(x, y, floor=0, partition="p"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


@pytest.fixture()
def ground_truth() -> TrajectorySet:
    """Object 'a' walks along y=0 at 1 m/s for 20 seconds."""
    trajectories = TrajectorySet()
    for t in range(21):
        trajectories.add_record(TrajectoryRecord("a", _loc(float(t), 0.0), float(t)))
    return trajectories


class TestDeterministicEvaluation:
    def test_perfect_estimates_have_zero_error(self, ground_truth):
        estimates = [PositioningRecord("a", _loc(float(t), 0.0), float(t)) for t in range(21)]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.matched == 21
        assert report.mean_error == pytest.approx(0.0, abs=1e-9)
        assert report.rmse == pytest.approx(0.0, abs=1e-9)
        assert report.partition_hit_rate == 1.0
        assert report.floor_accuracy == 1.0

    def test_constant_offset_is_measured(self, ground_truth):
        estimates = [PositioningRecord("a", _loc(float(t), 3.0), float(t)) for t in range(21)]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.mean_error == pytest.approx(3.0)
        assert report.median_error == pytest.approx(3.0)
        assert report.p90_error == pytest.approx(3.0)

    def test_estimates_interpolate_between_samples(self, ground_truth):
        estimates = [PositioningRecord("a", _loc(2.5, 0.0), 2.5)]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.mean_error == pytest.approx(0.0, abs=1e-9)

    def test_floor_mismatch_counted_not_measured(self, ground_truth):
        estimates = [PositioningRecord("a", _loc(5.0, 0.0, floor=1), 5.0)]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.floor_mismatches == 1
        assert report.errors_m == []
        assert report.floor_accuracy == 0.0

    def test_partition_mismatch_lowers_hit_rate(self, ground_truth):
        estimates = [
            PositioningRecord("a", _loc(5.0, 0.0, partition="other"), 5.0),
            PositioningRecord("a", _loc(6.0, 0.0), 6.0),
        ]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.partition_hit_rate == pytest.approx(0.5)

    def test_unknown_object_or_time_not_matched(self, ground_truth):
        estimates = [
            PositioningRecord("ghost", _loc(0.0, 0.0), 5.0),
            PositioningRecord("a", _loc(0.0, 0.0), 500.0),
        ]
        report = evaluate_positioning(estimates, ground_truth)
        assert report.estimates == 2
        assert report.matched == 0
        assert math.isnan(report.mean_error)

    def test_empty_report_is_nan(self):
        report = AccuracyReport()
        assert math.isnan(report.mean_error)
        assert math.isnan(report.floor_accuracy)
        assert math.isnan(report.partition_hit_rate)

    def test_as_dict_contains_all_metrics(self, ground_truth):
        estimates = [PositioningRecord("a", _loc(1.0, 1.0), 1.0)]
        payload = evaluate_positioning(estimates, ground_truth).as_dict()
        assert set(payload) == {
            "estimates", "matched", "mean_error_m", "median_error_m",
            "rmse_m", "p90_error_m", "floor_accuracy", "partition_hit_rate",
        }


class TestProbabilisticEvaluation:
    def test_best_candidate_used(self, ground_truth):
        record = ProbabilisticPositioningRecord(
            "a",
            ((_loc(50.0, 50.0), 0.1), (_loc(5.0, 0.0), 0.9)),
            5.0,
        )
        report = evaluate_probabilistic([record], ground_truth)
        assert report.mean_error == pytest.approx(0.0, abs=1e-9)


class TestProximityEvaluation:
    def test_collocated_detection_scores_high(self, ground_truth):
        reader = RFIDReader("r1", _loc(5.0, 0.0), detection_range=3.0)
        periods = [ProximityRecord("a", "r1", 3.0, 7.0)]
        report = evaluate_proximity(periods, ground_truth, [reader])
        assert report.periods == 1
        assert report.in_range_fraction == 1.0
        assert report.mean_distance_m < 3.0

    def test_far_detection_scores_low(self, ground_truth):
        reader = RFIDReader("r1", _loc(100.0, 0.0), detection_range=3.0)
        periods = [ProximityRecord("a", "r1", 3.0, 7.0)]
        report = evaluate_proximity(periods, ground_truth, [reader])
        assert report.in_range_fraction == 0.0
        assert report.mean_distance_m > 50.0

    def test_unknown_device_ignored(self, ground_truth):
        periods = [ProximityRecord("a", "ghost", 3.0, 7.0)]
        report = evaluate_proximity(periods, ground_truth, [])
        assert report.checked_samples == 0
        assert math.isnan(report.in_range_fraction)


class TestCoverage:
    def test_full_coverage(self, ground_truth):
        coverage = ground_truth_coverage([float(t) for t in range(21)], ground_truth)
        assert coverage == pytest.approx(1.0)

    def test_sparse_coverage_is_lower(self, ground_truth):
        sparse = ground_truth_coverage([0.0, 10.0, 20.0], ground_truth)
        dense = ground_truth_coverage([float(t) for t in range(0, 21, 2)], ground_truth)
        assert sparse < dense <= 1.0

    def test_no_estimates_no_coverage(self, ground_truth):
        assert ground_truth_coverage([], ground_truth) == 0.0
