"""Unit tests for dataset statistics (trajectories, crowding, deployments)."""

import random

import pytest

from repro.analysis.statistics import (
    crowding_at,
    deployment_statistics,
    rssi_statistics,
    trajectory_statistics,
)
from repro.core.types import DeviceType, IndoorLocation, RSSIRecord, TrajectoryRecord
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment, CoverageDeployment
from repro.mobility.trajectory import TrajectorySet


class TestTrajectoryStatistics:
    def test_empty_set(self):
        stats = trajectory_statistics(TrajectorySet())
        assert stats.object_count == 0
        assert stats.total_samples == 0

    def test_simulation_statistics(self, office_simulation):
        stats = trajectory_statistics(office_simulation.trajectories)
        assert stats.object_count == 8
        assert stats.total_samples == office_simulation.trajectories.total_records
        assert stats.mean_duration_s > 0
        assert stats.mean_speed_mps < 2.0
        assert stats.partitions_visited >= 2
        payload = stats.as_dict()
        assert payload["object_count"] == 8.0


class TestCrowding:
    def _set_with_counts(self, counts):
        trajectories = TrajectorySet()
        index = 0
        for partition, number in counts.items():
            for _ in range(number):
                index += 1
                trajectories.add_record(
                    TrajectoryRecord(
                        f"o{index}",
                        IndoorLocation("b", 0, partition_id=partition, x=0.0, y=0.0),
                        0.0,
                    )
                )
        return trajectories

    def test_single_crowd_is_maximally_concentrated(self):
        report = crowding_at(self._set_with_counts({"shop": 10}), 0.0)
        assert report.max_share == 1.0
        assert report.populated_partitions == 1

    def test_even_spread_has_low_concentration(self):
        even = crowding_at(self._set_with_counts({f"p{i}": 2 for i in range(10)}), 0.0)
        skewed = crowding_at(self._set_with_counts({"hot": 16, "a": 2, "b": 2}), 0.0)
        assert even.max_share < skewed.max_share
        assert even.gini < skewed.gini
        assert skewed.top3_share == 1.0

    def test_empty_snapshot(self):
        report = crowding_at(TrajectorySet(), 0.0)
        assert report.populated_partitions == 0
        assert report.max_share == 0.0


class TestDeploymentStatistics:
    def test_coverage_vs_checkpoint_characteristics(self, office):
        """Figure 3: coverage spreads devices along walls; check-point clusters at doors."""
        controller = PositioningDeviceController(office, seed=5)
        coverage_devices = controller.deploy(
            DeviceDeploymentRequest(DeviceType.WIFI, 6, CoverageDeployment(), floor_ids=[0])
        )
        checkpoint_devices = controller.deploy(
            DeviceDeploymentRequest(DeviceType.WIFI, 6, CheckPointDeployment(), floor_ids=[1])
        )
        coverage_report = deployment_statistics(office, coverage_devices, 0)
        checkpoint_report = deployment_statistics(office, checkpoint_devices, 1)
        assert coverage_report.device_count == checkpoint_report.device_count == 6
        # Coverage model: devices hug the walls.
        assert coverage_report.mean_distance_to_wall < 1.5
        # Check-point model: devices sit at doors.
        assert checkpoint_report.mean_distance_to_nearest_door < coverage_report.mean_distance_to_nearest_door
        assert coverage_report.covered_area_fraction > 0.5

    def test_empty_floor_deployment(self, office):
        report = deployment_statistics(office, [], 0)
        assert report.device_count == 0


class TestRSSIStatistics:
    def test_empty(self):
        stats = rssi_statistics([])
        assert stats["count"] == 0.0

    def test_values(self):
        records = [RSSIRecord("a", "ap", value, 0.0) for value in (-50.0, -60.0, -70.0)]
        stats = rssi_statistics(records)
        assert stats["count"] == 3.0
        assert stats["mean"] == pytest.approx(-60.0)
        assert stats["min"] == -70.0
        assert stats["max"] == -50.0
