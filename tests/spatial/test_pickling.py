"""Cross-process safety of the SpatialService.

The service's caches — like ``Floor``'s lambda caches — must be dropped on
pickle and rebuilt lazily in the receiving process, and a parallel streaming
run (which ships the service inside each worker's ``ShardContext``) must
store records identical to a serial run.
"""

import pickle

import pytest

from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    PositioningLayerConfig,
    RSSIConfig,
    VitaConfig,
)
from repro.core.streaming import ShardContext
from repro.core.toolkit import Vita
from repro.geometry.point import Point
from repro.spatial import SpatialService

DATASETS = ("trajectory", "rssi", "positioning", "device")


class TestPickleDropsCaches:
    def test_round_trip_rebuilds_lazily_and_answers_identically(self, office):
        service = SpatialService(office)
        warm_route = service.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        warm_sight = service.sightline(0, Point(2.0, 2.0), Point(30.0, 9.0))
        assert service.cache_stats()["route_misses"] > 0

        clone = pickle.loads(pickle.dumps(service))
        # Caches and counters start empty in the receiving process...
        assert all(value == 0 for value in clone.cache_stats().values())
        # ...and rebuild lazily to the same answers.
        route = clone.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        assert route.waypoints == warm_route.waypoints
        assert route.length == warm_route.length
        assert clone.sightline(0, Point(2.0, 2.0), Point(30.0, 9.0)) == warm_sight

    def test_pickle_keeps_configuration_and_devices(self, office, office_wifi):
        service = SpatialService(office, devices=office_wifi)
        clone = pickle.loads(pickle.dumps(service))
        assert clone.config == service.config
        assert [d.device_id for d in clone.devices] == [
            d.device_id for d in office_wifi
        ]

    def test_shard_context_with_spatial_service_is_picklable(self, office, office_wifi):
        config = VitaConfig(seed=5)
        spatial = SpatialService(office, devices=office_wifi, config=config.spatial)
        spatial.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))  # warm
        context = ShardContext(
            config=config,
            building=office,
            devices=list(office_wifi),
            master_seed=5,
            spatial=spatial,
        )
        clone = pickle.loads(pickle.dumps(context))
        assert clone.spatial is not None
        assert all(value == 0 for value in clone.spatial.cache_stats().values())


def _config():
    return VitaConfig(
        environment=EnvironmentConfig(building="clinic", floors=1),
        devices=[DeviceConfig(count_per_floor=4)],
        objects=ObjectConfig(
            count=6, duration=30.0, time_step=0.5, min_lifespan=15.0, max_lifespan=30.0
        ),
        rssi=RSSIConfig(sampling_period=2.0),
        positioning=PositioningLayerConfig(sampling_period=5.0),
        seed=23,
        shards=2,
    )


class TestWorkersRegression:
    def test_workers_2_matches_serial_with_rebuilt_worker_caches(self):
        """Satellite regression: caches rebuilt inside workers change nothing."""
        snapshots = []
        for workers in (1, 2):
            with Vita() as vita:
                report = vita.generate(_config(), workers=workers).report
                snapshots.append(
                    (report, {name: vita.query(name).all() for name in DATASETS})
                )
        serial_report, serial = snapshots[0]
        parallel_report, parallel = snapshots[1]
        assert serial["trajectory"], "vacuous comparison: no records generated"
        for dataset in DATASETS:
            assert serial[dataset] == parallel[dataset], (
                f"{dataset}: workers=2 diverged from workers=1"
            )
        # Both runs exercised the spatial caches and reported counters.
        assert sum(serial_report.cache_stats.values()) > 0
        assert sum(parallel_report.cache_stats.values()) > 0

    @pytest.mark.parametrize("enabled", [True, False])
    def test_cache_toggle_never_changes_streamed_records(self, enabled):
        config = _config()
        config.spatial.enabled = enabled
        with Vita() as vita:
            vita.generate(config, workers=1)
            snapshot = {name: vita.query(name).all() for name in DATASETS}
        reference_config = _config()
        with Vita() as vita:
            vita.generate(reference_config, workers=1)
            reference = {name: vita.query(name).all() for name in DATASETS}
        for dataset in DATASETS:
            assert snapshot[dataset] == reference[dataset]
