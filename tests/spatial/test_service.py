"""Unit tests of the shared cached SpatialService."""

import math

import pytest

from repro.building.distance import RoutePlanner
from repro.building.model import Door, Obstacle, Partition, PartitionKind
from repro.building.synthetic import OfficeSpec, office_building
from repro.core.config import SpatialConfig
from repro.core.errors import ConfigurationError, RoutingError
from repro.geometry.line_of_sight import analyze_sightline
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.spatial import LRUCache, SpatialService
from repro.spatial.cache import CacheStats, diff_stats, merge_stats


@pytest.fixture()
def service(office):
    return SpatialService(office)


@pytest.fixture()
def uncached(office):
    return SpatialService(office, config=SpatialConfig(enabled=False))


class TestConfig:
    def test_defaults_are_enabled(self):
        config = SpatialConfig()
        assert config.enabled
        assert config.route_cache_size > 0

    def test_rejects_negative_sizes_and_zero_quantum(self):
        with pytest.raises(ConfigurationError):
            SpatialConfig(route_cache_size=-1)
        with pytest.raises(ConfigurationError):
            SpatialConfig(quantum=0.0)


class TestLRUCache:
    def test_exact_verification_prevents_bucket_collisions(self):
        cache = LRUCache(8, CacheStats())
        cache.put("bucket", ("exact-a",), "value-a")
        value, hit = cache.get("bucket", ("exact-a",))
        assert hit and value == "value-a"
        # A different exact query in the same bucket must miss, never
        # return value-a (caching may change cost, not results).
        value, hit = cache.get("bucket", ("exact-b",))
        assert not hit and value is None

    def test_lru_eviction_bounds_size(self):
        cache = LRUCache(2, CacheStats())
        for index in range(5):
            cache.put(index, index, index)
        assert len(cache) == 2

    def test_stats_helpers(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        merged = merge_stats({"a": 1}, {"a": 2, "b": 5})
        assert merged == {"a": 3, "b": 5}
        assert diff_stats({"a": 3, "b": 5}, {"a": 1}) == {"a": 2, "b": 5}


class TestRouting:
    def test_same_partition_is_a_straight_walk(self, service):
        route = service.shortest_route(0, Point(3.0, 3.0), 0, Point(5.0, 4.0))
        assert len(route.waypoints) == 2
        assert route.length == pytest.approx(Point(3.0, 3.0).distance_to(Point(5.0, 4.0)))

    def test_cross_floor_route_uses_a_staircase(self, service):
        route = service.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        assert route.staircases
        assert route.floors_visited == [0, 1]

    def test_route_matches_legacy_planner_cost(self, office, service):
        planner = RoutePlanner(office)
        for source, target in (
            (Point(4.0, 3.0), Point(35.0, 3.0)),
            (Point(12.0, 3.0), Point(4.0, 8.0)),
        ):
            for metric in ("length", "time"):
                ours = service.shortest_route(0, source, 1, target, metric=metric)
                legacy = planner.shortest_route(0, source, 1, target, metric=metric)
                assert ours.length == pytest.approx(legacy.length, rel=1e-9)
                assert ours.travel_time == pytest.approx(legacy.travel_time, rel=1e-9)

    def test_repeated_query_hits_the_route_cache(self, service):
        first = service.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        second = service.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        assert second is first
        stats = service.cache_stats()
        assert stats["route_hits"] == 1

    def test_disabled_service_never_counts_or_caches(self, uncached):
        uncached.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        uncached.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        stats = uncached.cache_stats()
        assert all(value == 0 for value in stats.values())

    def test_unknown_metric_raises(self, service):
        with pytest.raises(RoutingError):
            service.shortest_route(0, Point(4.0, 3.0), 0, Point(5.0, 3.0), metric="teleport")

    def test_point_outside_any_partition_raises(self, service):
        with pytest.raises(RoutingError):
            service.shortest_route(0, Point(-50.0, -50.0), 0, Point(5.0, 3.0))

    def test_shortest_distance_is_route_length(self, service):
        route = service.shortest_route(0, Point(4.0, 3.0), 1, Point(35.0, 3.0))
        assert service.shortest_distance(0, Point(4.0, 3.0), 1, Point(35.0, 3.0)) == (
            pytest.approx(route.length)
        )


class TestSightline:
    def test_matches_legacy_analysis(self, office, service):
        floor = office.floor(0)
        origin, target = Point(2.0, 2.0), Point(30.0, 9.0)
        ours = service.sightline(0, origin, target)
        legacy = analyze_sightline(
            origin, target, floor.wall_segments(), floor.obstacle_polygons()
        )
        assert ours == legacy

    def test_repeated_sightline_hits_the_cache(self, service):
        origin, target = Point(2.0, 2.0), Point(30.0, 9.0)
        first = service.sightline(0, origin, target)
        second = service.sightline(0, origin, target)
        assert second is first
        assert service.cache_stats()["los_hits"] == 1

    def test_obstacles_are_counted(self, fresh_office):
        fresh_office.floor(0).add_obstacle(
            Obstacle(
                obstacle_id="cabinet",
                floor_id=0,
                polygon=Polygon.rectangle(5.0, 2.5, 6.0, 3.5),
                attenuation_db=6.0,
            )
        )
        service = SpatialService(fresh_office)
        report = service.sightline(0, Point(4.0, 3.0), Point(8.0, 3.0))
        assert report.obstacle_crossings == 1


class TestNearestNeighbour:
    def test_nearest_door_matches_brute_force(self, office, service):
        floor = office.floor(0)
        for point in (Point(2.0, 2.0), Point(18.0, 7.5), Point(33.0, 4.0)):
            expected = min(
                door.position.distance_to(point) for door in floor.doors.values()
            )
            assert service.nearest_door_distance(0, point) == expected

    def test_nearest_wall_matches_brute_force(self, office, service):
        for point in (Point(2.0, 2.0), Point(18.0, 7.5), Point(33.0, 4.0)):
            expected = min(
                wall.distance_to_point(point)
                for wall in office.floor(0).wall_segments()
            )
            assert service.nearest_wall_distance(0, point) == expected

    def test_doorless_floor_returns_infinity(self):
        building = office_building(OfficeSpec(floors=1))
        lonely = building.floor(0)
        for door_id in list(lonely.doors):
            del lonely.doors[door_id]
        lonely._invalidate_caches()
        service = SpatialService(building)
        assert service.nearest_door(0, Point(2.0, 2.0)) is None
        assert math.isinf(service.nearest_door_distance(0, Point(2.0, 2.0)))


class TestDeviceIndex:
    def test_candidates_preserve_deployment_order(self, office, office_wifi):
        service = SpatialService(office, devices=office_wifi)
        point = office_wifi[0].position
        radius = service.max_device_range(office_wifi[0].floor_id) * 1.0
        candidates = service.candidate_devices(office_wifi[0].floor_id, point, radius)
        expected = [
            device for device in office_wifi
            if device.floor_id == office_wifi[0].floor_id
            and device.position.distance_to(point) <= radius
        ]
        assert [d.device_id for d in candidates] == [d.device_id for d in expected]

    def test_candidates_match_uncached_filter(self, office, office_wifi):
        cached = SpatialService(office, devices=office_wifi)
        plain = SpatialService(
            office, devices=office_wifi, config=SpatialConfig(enabled=False)
        )
        for point in (Point(5.0, 5.0), Point(20.0, 8.0)):
            for radius in (5.0, 15.0, 40.0):
                assert [
                    d.device_id for d in cached.candidate_devices(0, point, radius)
                ] == [d.device_id for d in plain.candidate_devices(0, point, radius)]

    def test_attach_devices_replaces_the_index(self, office, office_wifi):
        service = SpatialService(office, devices=office_wifi[:2])
        epoch = service.device_epoch
        service.attach_devices(office_wifi)
        assert service.device_epoch > epoch
        everything = service.candidate_devices(0, Point(18.0, 5.0), 1e6)
        on_floor = [d for d in office_wifi if d.floor_id == 0]
        assert len(everything) == len(on_floor)

    def test_rssi_generator_survives_service_repointing(self, office, office_wifi):
        # A shared service re-pointed at a different deployment must not
        # leak foreign devices into a live generator's measurements.
        from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator

        service = SpatialService(office, devices=office_wifi)
        generator = RSSIGenerator(
            office, office_wifi[:3],  # a subset: index unusable from the start
            RSSIGenerationConfig(seed=1), spatial=service,
        )
        point = office_wifi[0].position
        records = generator.measure_all(office_wifi[0].floor_id, point, "o1", 0.0)
        allowed = {d.device_id for d in office_wifi[:3]}
        assert {r.device_id for r in records} <= allowed
        # Now a full-set generator flips to the index, another consumer
        # re-points the service, and the generator must fall back cleanly.
        full = RSSIGenerator(
            office, office_wifi, RSSIGenerationConfig(seed=1), spatial=service
        )
        service.attach_devices(office_wifi[:1])
        records = full.measure_all(office_wifi[0].floor_id, point, "o1", 0.0)
        assert {r.device_id for r in records} <= {d.device_id for d in office_wifi}


class TestLocateAndBounds:
    def test_locate_matches_building_locate(self, office, service):
        point = Point(4.0, 3.0)
        assert service.locate(0, point) == office.locate(0, point)
        # The second lookup is served from the cache and shares the instance.
        assert service.locate(0, point) is service.locate(0, point)

    def test_floor_bounds_are_memoized(self, office, service):
        assert service.floor_bounds(0) == office.floor(0).bounding_box
        assert service.floor_bounds(0) is service.floor_bounds(0)


class TestInvalidation:
    def test_building_mutation_invalidates_stale_answers(self, fresh_office):
        service = SpatialService(fresh_office)
        point = Point(18.0, 5.0)
        before = service.nearest_door_distance(0, point)
        floor = fresh_office.floor(0)
        hall = next(
            p for p in floor.partitions.values() if p.kind is PartitionKind.HALLWAY
        )
        room = next(
            p for p in floor.partitions.values() if p.partition_id != hall.partition_id
        )
        floor.add_door(
            Door(
                door_id="door_right_here",
                floor_id=0,
                position=point,
                partitions=(hall.partition_id, room.partition_id),
            )
        )
        after = service.nearest_door_distance(0, point)
        assert before > 0.0
        assert after == 0.0

    def test_version_counter_advances_on_mutation(self, fresh_office):
        version = fresh_office.version
        fresh_office.floor(0).add_partition(
            Partition(
                partition_id="annex",
                floor_id=0,
                polygon=Polygon.rectangle(100.0, 100.0, 104.0, 104.0),
            )
        )
        assert fresh_office.version > version
