"""Unit tests for the baseline generators (MWGen, IndoorSTG, RFID tool)."""

import pytest

from repro.baselines.indoorstg import IndoorSTGConfig, IndoorSTGGenerator
from repro.baselines.mwgen import ManualFloorPlan, MWGenConfig, MWGenGenerator
from repro.baselines.rfid_tool import RFIDToolConfig, RFIDToolGenerator
from repro.core.errors import ConfigurationError


class TestMWGen:
    @pytest.fixture(scope="class")
    def plan(self, office):
        return ManualFloorPlan.extract_from(office, floor_id=0)

    def test_manual_extraction_loses_nothing_but_boxes(self, plan, office):
        assert len(plan.rooms) == len(office.floors[0].partitions)
        assert len(plan.connections) > 0

    def test_multi_floor_is_duplicated_floor_plan(self, plan):
        """Section 1: MWGen simulates a multi-floor building by duplicating the floor plan."""
        generator = MWGenGenerator(plan, MWGenConfig(object_count=2, num_floors=3, seed=1))
        building = generator.building
        assert len(building.floors) == 3
        counts = {f: len(building.floors[f].partitions) for f in building.floor_ids}
        assert len(set(counts.values())) == 1  # identical on every floor

    def test_generates_trajectories_but_no_positioning_data(self, plan):
        generator = MWGenGenerator(plan, MWGenConfig(object_count=5, seed=2))
        output = generator.generate()
        assert output.trajectory_count == 5
        assert output.total_records > 5
        assert not output.produces_positioning_data
        assert not output.produces_rssi_data

    def test_trajectories_are_coarse_waypoint_level(self, plan):
        """MWGen output lacks the fine-grained ground truth Vita preserves."""
        generator = MWGenGenerator(plan, MWGenConfig(object_count=3, trips_per_object=2, seed=3))
        output = generator.generate()
        for records in output.trajectories.values():
            # Waypoint-level: a handful of records per trip, far fewer than a
            # 1 Hz ground-truth trajectory of the same duration would contain.
            assert len(records) < 60

    def test_routing_metric_configurable(self, plan):
        for routing in ("length", "time"):
            generator = MWGenGenerator(plan, MWGenConfig(object_count=2, routing=routing, seed=4))
            assert generator.generate().total_records > 0
        with pytest.raises(ConfigurationError):
            MWGenConfig(routing="scenic")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            MWGenGenerator(ManualFloorPlan())


class TestIndoorSTG:
    def test_artificial_environment_only(self):
        generator = IndoorSTGGenerator(IndoorSTGConfig(seed=1))
        output = generator.generate()
        assert not output.supports_real_buildings
        assert output.supported_positioning_methods == ("proximity",)

    def test_semantic_trajectories_generated(self):
        config = IndoorSTGConfig(object_count=10, duration=300.0, seed=2)
        output = IndoorSTGGenerator(config).generate()
        assert len(output.semantic_trajectories) == 10
        for visits in output.semantic_trajectories.values():
            assert visits
            for visit in visits:
                assert visit.t_leave >= visit.t_enter
                assert visit.duration <= config.max_visit + 1e-6

    def test_proximity_records_match_visits(self):
        output = IndoorSTGGenerator(IndoorSTGConfig(object_count=5, seed=3)).generate()
        assert len(output.proximity_records) == output.total_visits
        assert not output.produces_rssi_data

    def test_rooms_and_devices_created(self):
        config = IndoorSTGConfig(floors=3, rooms_per_floor=6, seed=4)
        generator = IndoorSTGGenerator(config)
        assert len(generator.rooms) == 18
        assert len(generator.devices) == 18
        kinds = {room.kind for room in generator.rooms}
        assert {"room", "corridor", "staircase"} <= kinds

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            IndoorSTGConfig(floors=0)
        with pytest.raises(ConfigurationError):
            IndoorSTGConfig(min_visit=50, max_visit=10)


class TestRFIDTool:
    def test_readings_only_no_trajectories(self):
        output = RFIDToolGenerator(RFIDToolConfig(seed=1)).generate()
        assert output.reading_count > 0
        assert not output.produces_trajectory_data
        assert not output.produces_positioning_data
        assert not output.supports_real_buildings

    def test_tags_pass_readers_in_belt_order(self):
        config = RFIDToolConfig(
            belt_count=1, readers_per_belt=3, tag_count=5,
            read_miss_probability=0.0, seed=2,
        )
        output = RFIDToolGenerator(config).generate()
        by_tag = {}
        for reading in output.readings:
            by_tag.setdefault(reading.tag_id, []).append(reading)
        for readings in by_tag.values():
            assert len(readings) == 3
            times = [r.t for r in sorted(readings, key=lambda r: r.reader_id)]
            assert times == sorted(times)

    def test_velocity_controls_arrival_times(self):
        slow = RFIDToolGenerator(
            RFIDToolConfig(belt_velocity=0.25, tag_count=1, read_miss_probability=0.0, seed=3)
        ).generate()
        fast = RFIDToolGenerator(
            RFIDToolConfig(belt_velocity=1.0, tag_count=1, read_miss_probability=0.0, seed=3)
        ).generate()
        assert max(r.t for r in slow.readings) > max(r.t for r in fast.readings)

    def test_read_misses_drop_readings(self):
        lossless = RFIDToolGenerator(
            RFIDToolConfig(tag_count=50, read_miss_probability=0.0, seed=4)
        ).generate()
        lossy = RFIDToolGenerator(
            RFIDToolConfig(tag_count=50, read_miss_probability=0.3, seed=4)
        ).generate()
        assert lossy.reading_count < lossless.reading_count

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RFIDToolConfig(belt_count=0)
        with pytest.raises(ConfigurationError):
            RFIDToolConfig(read_miss_probability=1.5)
