"""Unit tests for repro.geometry.decompose (balanced partition decomposition)."""

import pytest

from repro.geometry.decompose import DecompositionConfig, decompose, is_balanced, total_area
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class TestConfigValidation:
    def test_rejects_non_positive_area(self):
        with pytest.raises(ValueError):
            DecompositionConfig(max_area=0)

    def test_rejects_aspect_ratio_below_one(self):
        with pytest.raises(ValueError):
            DecompositionConfig(max_aspect_ratio=0.5)

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            DecompositionConfig(max_depth=-1)


class TestIsBalanced:
    def test_small_square_is_balanced(self):
        square = Polygon.rectangle(0, 0, 5, 5)
        assert is_balanced(square, DecompositionConfig(max_area=100, max_aspect_ratio=3))

    def test_large_polygon_is_not_balanced(self):
        big = Polygon.rectangle(0, 0, 50, 50)
        assert not is_balanced(big, DecompositionConfig(max_area=100))

    def test_elongated_polygon_is_not_balanced(self):
        hallway = Polygon.rectangle(0, 0, 40, 4)
        assert not is_balanced(hallway, DecompositionConfig(max_area=1000, max_aspect_ratio=3))


class TestDecompose:
    def test_balanced_polygon_is_returned_unchanged(self):
        square = Polygon.rectangle(0, 0, 5, 5)
        pieces = decompose(square, DecompositionConfig(max_area=100))
        assert pieces == [square]

    def test_hallway_is_split_into_multiple_pieces(self):
        hallway = Polygon.rectangle(0, 0, 40, 4)
        pieces = decompose(hallway, DecompositionConfig(max_area=60, max_aspect_ratio=3))
        assert len(pieces) >= 3

    def test_decomposition_preserves_total_area(self):
        hallway = Polygon.rectangle(0, 0, 48, 4)
        pieces = decompose(hallway, DecompositionConfig(max_area=50, max_aspect_ratio=2.5))
        assert total_area(pieces) == pytest.approx(hallway.area, rel=1e-6)

    def test_all_pieces_satisfy_thresholds(self):
        config = DecompositionConfig(max_area=60, max_aspect_ratio=3)
        hallway = Polygon.rectangle(0, 0, 40, 4)
        for piece in decompose(hallway, config):
            assert is_balanced(piece, config)

    def test_l_shape_decomposition_preserves_area(self):
        l_shape = Polygon(
            [Point(0, 0), Point(30, 0), Point(30, 10), Point(10, 10), Point(10, 30), Point(0, 30)]
        )
        config = DecompositionConfig(max_area=80, max_aspect_ratio=3)
        pieces = decompose(l_shape, config)
        assert len(pieces) > 1
        assert total_area(pieces) == pytest.approx(l_shape.area, rel=1e-4)

    def test_pieces_are_contained_in_original_bounding_box(self):
        hallway = Polygon.rectangle(0, 0, 40, 4)
        original = hallway.bounding_box.expanded(1e-3)
        for piece in decompose(hallway, DecompositionConfig(max_area=40)):
            box = piece.bounding_box
            assert original.contains_point(Point(box.min_x, box.min_y))
            assert original.contains_point(Point(box.max_x, box.max_y))

    def test_max_depth_bounds_the_number_of_pieces(self):
        huge = Polygon.rectangle(0, 0, 100, 100)
        pieces = decompose(huge, DecompositionConfig(max_area=1.0, max_depth=3))
        assert len(pieces) <= 2 ** 3

    def test_default_config_used_when_omitted(self):
        hallway = Polygon.rectangle(0, 0, 80, 4)
        assert len(decompose(hallway)) > 1
