"""Unit tests for repro.geometry.line_of_sight."""

import pytest

from repro.geometry.line_of_sight import (
    analyze_sightline,
    count_obstacle_crossings,
    count_wall_crossings,
    has_line_of_sight,
    visible_targets,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@pytest.fixture()
def single_wall():
    """A vertical wall at x = 5 between y = 0 and y = 10."""
    return [Segment(Point(5, 0), Point(5, 10))]


class TestWallCrossings:
    def test_blocked_sightline_counts_one_wall(self, single_wall):
        sightline = Segment(Point(0, 5), Point(10, 5))
        assert count_wall_crossings(sightline, single_wall) == 1

    def test_clear_sightline_counts_zero(self, single_wall):
        sightline = Segment(Point(0, 15), Point(10, 15))
        assert count_wall_crossings(sightline, single_wall) == 0

    def test_parallel_sightline_not_blocked(self, single_wall):
        sightline = Segment(Point(4, 0), Point(4, 10))
        assert count_wall_crossings(sightline, single_wall) == 0

    def test_multiple_walls_counted_individually(self):
        walls = [Segment(Point(x, 0), Point(x, 10)) for x in (2, 4, 6)]
        sightline = Segment(Point(0, 5), Point(10, 5))
        assert count_wall_crossings(sightline, walls) == 3

    def test_sightline_grazing_wall_endpoint_not_counted(self, single_wall):
        sightline = Segment(Point(0, 10), Point(10, 10))
        assert count_wall_crossings(sightline, single_wall) == 0


class TestObstacleCrossings:
    def test_obstacle_crossed(self):
        obstacle = Polygon.rectangle(4, 4, 6, 6)
        sightline = Segment(Point(0, 5), Point(10, 5))
        assert count_obstacle_crossings(sightline, [obstacle]) == 1

    def test_obstacle_missed(self):
        obstacle = Polygon.rectangle(4, 7, 6, 9)
        sightline = Segment(Point(0, 5), Point(10, 5))
        assert count_obstacle_crossings(sightline, [obstacle]) == 0

    def test_endpoint_inside_obstacle_counts(self):
        obstacle = Polygon.rectangle(0, 0, 2, 2)
        sightline = Segment(Point(1, 1), Point(10, 10))
        assert count_obstacle_crossings(sightline, [obstacle]) == 1


class TestSightlineReport:
    def test_report_fields(self, single_wall):
        report = analyze_sightline(Point(0, 5), Point(10, 5), walls=single_wall)
        assert report.distance == pytest.approx(10.0)
        assert report.wall_crossings == 1
        assert report.obstacle_crossings == 0
        assert report.total_crossings == 1
        assert not report.clear

    def test_clear_report(self):
        report = analyze_sightline(Point(0, 0), Point(3, 4))
        assert report.clear
        assert report.distance == pytest.approx(5.0)

    def test_has_line_of_sight(self, single_wall):
        assert not has_line_of_sight(Point(0, 5), Point(10, 5), walls=single_wall)
        assert has_line_of_sight(Point(0, 5), Point(4, 5), walls=single_wall)

    def test_visible_targets(self, single_wall):
        origin = Point(0, 5)
        targets = [Point(4, 5), Point(10, 5), Point(2, 8)]
        assert visible_targets(origin, targets, walls=single_wall) == [0, 2]

    def test_figure3_asymmetry(self):
        """Figure 3(a): equal distances, but the wall-blocked device hears less.

        The geometric part of the figure is that only one of the two sight
        lines crosses a wall; the RSSI consequence is tested in the rssi
        package tests.
        """
        wall = [Segment(Point(4, 0), Point(4, 4.5))]
        observed = Point(5, 5)
        device_behind_wall = Point(2, 2)    # sight line crosses the wall
        device_in_open = Point(8, 2)        # clear line of sight
        assert observed.distance_to(device_behind_wall) == pytest.approx(
            observed.distance_to(device_in_open)
        )
        assert not has_line_of_sight(observed, device_behind_wall, walls=wall)
        assert has_line_of_sight(observed, device_in_open, walls=wall)
