"""Unit tests for repro.geometry.spatial_index (grid and R-tree)."""

import random

import pytest

from repro.core.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.spatial_index import GridIndex, RTreeIndex, build_index


def _make_rectangles(count: int, seed: int = 3):
    """Random small rectangles scattered over a 100x100 area."""
    rng = random.Random(seed)
    rectangles = []
    for _ in range(count):
        x = rng.uniform(0, 95)
        y = rng.uniform(0, 95)
        rectangles.append(Polygon.rectangle(x, y, x + rng.uniform(1, 5), y + rng.uniform(1, 5)))
    return rectangles


def _brute_force_box_query(items, box):
    return {id(p) for p in items if p.bounding_box.intersects(box)}


@pytest.fixture(scope="module")
def rectangles():
    return _make_rectangles(120)


@pytest.fixture(scope="module", params=["grid", "rtree"])
def index(request, rectangles):
    return build_index(rectangles, lambda p: p.bounding_box, kind=request.param)


class TestQueries:
    def test_len(self, index, rectangles):
        assert len(index) == len(rectangles)

    def test_box_query_matches_brute_force(self, index, rectangles):
        for box in (
            BoundingBox(0, 0, 20, 20),
            BoundingBox(40, 40, 60, 60),
            BoundingBox(90, 90, 100, 100),
            BoundingBox(0, 0, 100, 100),
        ):
            expected = _brute_force_box_query(rectangles, box)
            found = {id(p) for p in index.query_box(box)}
            assert found == expected

    def test_point_query_returns_containers_only(self, index, rectangles):
        point = Point(50, 50)
        expected = {id(p) for p in rectangles if p.bounding_box.contains_point(point)}
        found = {id(p) for p in index.query_point(point)}
        assert found == expected

    def test_nearest_returns_k_items(self, index):
        assert len(index.nearest(Point(50, 50), k=5)) == 5

    def test_nearest_first_result_is_truly_nearest(self, index, rectangles):
        point = Point(10, 90)
        result = index.nearest(point, k=1)[0]

        def box_distance(polygon):
            box = polygon.bounding_box
            dx = max(box.min_x - point.x, 0.0, point.x - box.max_x)
            dy = max(box.min_y - point.y, 0.0, point.y - box.max_y)
            return (dx ** 2 + dy ** 2) ** 0.5

        best = min(box_distance(p) for p in rectangles)
        assert box_distance(result) == pytest.approx(best)

    def test_nearest_zero_k_returns_empty(self, index):
        assert index.nearest(Point(0, 0), k=0) == []


class TestEdgeCases:
    def test_empty_grid_index(self):
        empty = GridIndex([], lambda p: p.bounding_box)
        assert len(empty) == 0
        assert empty.query_box(BoundingBox(0, 0, 10, 10)) == []
        assert empty.query_point(Point(1, 1)) == []

    def test_empty_rtree_index(self):
        empty = RTreeIndex([], lambda p: p.bounding_box)
        assert empty.query_box(BoundingBox(0, 0, 10, 10)) == []
        assert empty.nearest(Point(0, 0)) == []

    def test_single_item(self):
        only = Polygon.rectangle(0, 0, 1, 1)
        for kind in ("grid", "rtree"):
            index = build_index([only], lambda p: p.bounding_box, kind=kind)
            assert index.query_point(Point(0.5, 0.5)) == [only]
            assert index.nearest(Point(100, 100), k=3) == [only]

    def test_rtree_rejects_tiny_capacity(self):
        with pytest.raises(GeometryError):
            RTreeIndex([], lambda p: p.bounding_box, node_capacity=1)

    def test_unknown_kind_raises(self):
        with pytest.raises(GeometryError):
            build_index([], lambda p: p.bounding_box, kind="quad")

    def test_duplicate_boxes_are_all_returned(self):
        same = [Polygon.rectangle(0, 0, 1, 1) for _ in range(4)]
        index = build_index(same, lambda p: p.bounding_box, kind="rtree")
        assert len(index.query_point(Point(0.5, 0.5))) == 4
