"""Unit tests for repro.geometry.segment."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.segment import Segment


class TestSegmentBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(4, 6)).midpoint == Point(2, 3)

    def test_direction_is_unit(self):
        assert Segment(Point(0, 0), Point(0, 9)).direction() == Point(0, 1)

    def test_point_at_fraction(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at(0.3) == Point(3, 0)

    def test_angle(self):
        assert Segment(Point(0, 0), Point(1, 1)).angle() == pytest.approx(math.pi / 4)

    def test_reversed(self):
        segment = Segment(Point(1, 2), Point(3, 4))
        assert segment.reversed() == Segment(Point(3, 4), Point(1, 2))


class TestDistanceAndProjection:
    def test_closest_point_in_interior(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point_to(Point(4, 3)) == Point(4, 0)

    def test_closest_point_clamped_to_endpoint(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point_to(Point(-5, 2)) == Point(0, 0)
        assert segment.closest_point_to(Point(15, 2)) == Point(10, 0)

    def test_distance_to_point(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(5, 3)) == pytest.approx(3.0)

    def test_contains_point_on_segment(self):
        segment = Segment(Point(0, 0), Point(10, 10))
        assert segment.contains_point(Point(5, 5))
        assert not segment.contains_point(Point(5, 6))

    def test_degenerate_segment_distance(self):
        degenerate = Segment(Point(1, 1), Point(1, 1))
        assert degenerate.distance_to_point(Point(4, 5)) == pytest.approx(5.0)


class TestIntersection:
    def test_crossing_segments_intersect(self):
        a = Segment(Point(0, 0), Point(10, 10))
        b = Segment(Point(0, 10), Point(10, 0))
        assert a.intersects(b)
        assert a.intersection(b) == Point(5, 5)

    def test_parallel_segments_do_not_intersect(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(0, 1), Point(10, 1))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_touching_at_endpoint_intersects_but_does_not_cross(self):
        a = Segment(Point(0, 0), Point(5, 0))
        b = Segment(Point(5, 0), Point(5, 5))
        assert a.intersects(b)
        assert not a.crosses(b)

    def test_crosses_requires_interior_intersection(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, -5), Point(5, 5))
        assert a.crosses(b)

    def test_collinear_overlap_detected(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0), Point(15, 0))
        assert a.intersects(b)
        assert not a.crosses(b)

    def test_collinear_disjoint_not_intersecting(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(5, 0), Point(9, 0))
        assert not a.intersects(b)

    def test_near_miss_does_not_cross(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(11, -1), Point(11, 1))
        assert not a.crosses(b)
