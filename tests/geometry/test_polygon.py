"""Unit tests for repro.geometry.polygon."""

import random

import pytest

from repro.core.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon


@pytest.fixture()
def unit_square() -> Polygon:
    return Polygon.rectangle(0, 0, 1, 1)


@pytest.fixture()
def l_shape() -> Polygon:
    # An L-shaped room: 10x10 square with a 5x5 notch removed at the top-right.
    return Polygon(
        [
            Point(0, 0),
            Point(10, 0),
            Point(10, 5),
            Point(5, 5),
            Point(5, 10),
            Point(0, 10),
        ]
    )


class TestConstruction:
    def test_rejects_fewer_than_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_rejects_zero_area(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_accepts_tuples_as_vertices(self):
        polygon = Polygon([(0, 0), (4, 0), (4, 3)])
        assert polygon.area == pytest.approx(6.0)

    def test_rectangle_constructor_validates_corners(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(5, 0, 5, 10)

    def test_regular_polygon(self):
        hexagon = Polygon.regular(Point(0, 0), radius=2.0, sides=6)
        assert len(hexagon.vertices) == 6
        assert hexagon.contains_point(Point(0, 0))

    def test_regular_polygon_rejects_bad_arguments(self):
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), radius=1.0, sides=2)
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), radius=-1.0, sides=5)


class TestMeasures:
    def test_area_is_orientation_independent(self, unit_square):
        reversed_square = Polygon(list(reversed(unit_square.vertices)))
        assert unit_square.area == pytest.approx(reversed_square.area)

    def test_l_shape_area(self, l_shape):
        assert l_shape.area == pytest.approx(75.0)

    def test_perimeter(self, unit_square):
        assert unit_square.perimeter == pytest.approx(4.0)

    def test_centroid_of_square(self):
        square = Polygon.rectangle(2, 2, 6, 6)
        assert square.centroid.is_close(Point(4, 4), tolerance=1e-9)

    def test_aspect_ratio(self):
        assert Polygon.rectangle(0, 0, 10, 2).aspect_ratio == pytest.approx(5.0)
        assert Polygon.rectangle(0, 0, 3, 3).aspect_ratio == pytest.approx(1.0)

    def test_bounding_box(self, l_shape):
        box = l_shape.bounding_box
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 10, 10)


class TestContainment:
    def test_interior_point(self, l_shape):
        assert l_shape.contains_point(Point(2, 2))

    def test_point_in_notch_is_outside(self, l_shape):
        assert not l_shape.contains_point(Point(8, 8))

    def test_boundary_point_included_by_default(self, unit_square):
        assert unit_square.contains_point(Point(0.5, 0.0))

    def test_boundary_point_excluded_when_requested(self, unit_square):
        assert not unit_square.contains_point(Point(0.5, 0.0), include_boundary=False)

    def test_far_away_point(self, unit_square):
        assert not unit_square.contains_point(Point(50, 50))

    def test_on_boundary(self, unit_square):
        assert unit_square.on_boundary(Point(1.0, 0.5))
        assert not unit_square.on_boundary(Point(0.5, 0.5))


class TestSamplingAndTransforms:
    def test_random_points_are_inside(self, l_shape):
        rng = random.Random(5)
        for _ in range(50):
            assert l_shape.contains_point(l_shape.random_point(rng))

    def test_closest_interior_point_returns_input_when_inside(self, unit_square):
        assert unit_square.closest_interior_point(Point(0.3, 0.3)) == Point(0.3, 0.3)

    def test_closest_interior_point_projects_outside_points(self, unit_square):
        projected = unit_square.closest_interior_point(Point(2.0, 0.5))
        assert projected.is_close(Point(1.0, 0.5), tolerance=1e-9)

    def test_translated(self, unit_square):
        moved = unit_square.translated(3, 4)
        assert moved.centroid.is_close(Point(3.5, 4.5), tolerance=1e-9)
        assert moved.area == pytest.approx(unit_square.area)

    def test_scaled_doubles_area_with_sqrt2_factor(self, unit_square):
        scaled = unit_square.scaled(2.0)
        assert scaled.area == pytest.approx(4.0)
        # Scaling preserves the centroid.
        assert scaled.centroid.is_close(unit_square.centroid, tolerance=1e-9)


class TestOverlap:
    def test_disjoint_polygons_do_not_overlap(self):
        a = Polygon.rectangle(0, 0, 1, 1)
        b = Polygon.rectangle(5, 5, 6, 6)
        assert not a.overlaps(b)

    def test_contained_polygon_overlaps(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(3, 3, 4, 4)
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)

    def test_edge_sharing_polygons_overlap(self):
        a = Polygon.rectangle(0, 0, 5, 5)
        b = Polygon.rectangle(5, 0, 10, 5)
        assert a.overlaps(b)

    def test_intersects_segment(self, unit_square):
        from repro.geometry.segment import Segment

        assert unit_square.intersects_segment(Segment(Point(-1, 0.5), Point(2, 0.5)))
        assert not unit_square.intersects_segment(Segment(Point(-1, 5), Point(2, 5)))


class TestClipping:
    def test_clip_fully_inside_box_is_identity(self, unit_square):
        clipped = unit_square.clip_to_box(BoundingBox(-1, -1, 2, 2))
        assert clipped is not None
        assert clipped.area == pytest.approx(unit_square.area)

    def test_clip_half(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        clipped = square.clip_to_box(BoundingBox(0, 0, 5, 10))
        assert clipped is not None
        assert clipped.area == pytest.approx(50.0)

    def test_clip_outside_returns_none(self, unit_square):
        assert unit_square.clip_to_box(BoundingBox(5, 5, 6, 6)) is None

    def test_clip_l_shape_preserves_total_area(self, l_shape):
        left = l_shape.clip_to_box(BoundingBox(0, 0, 5, 10))
        right = l_shape.clip_to_box(BoundingBox(5, 0, 10, 10))
        assert left is not None and right is not None
        assert left.area + right.area == pytest.approx(l_shape.area, rel=1e-6)


class TestBoundingBox:
    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        union = a.union(b)
        assert (union.min_x, union.min_y, union.max_x, union.max_y) == (0, 0, 3, 3)

    def test_intersects(self):
        assert BoundingBox(0, 0, 2, 2).intersects(BoundingBox(1, 1, 3, 3))
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(1)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, -1, 2, 2)

    def test_contains_point(self):
        assert BoundingBox(0, 0, 2, 2).contains_point(Point(1, 1))
        assert not BoundingBox(0, 0, 2, 2).contains_point(Point(3, 1))

    def test_center_and_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.center == Point(2, 1)
        assert box.width == 4 and box.height == 2 and box.area == 8
