"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, centroid_of, polyline_length


class TestPointArithmetic:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(5, 7) - Point(2, 3) == Point(3, 4)

    def test_scalar_multiplication(self):
        assert Point(1.5, -2.0) * 2 == Point(3.0, -4.0)
        assert 2 * Point(1.5, -2.0) == Point(3.0, -4.0)

    def test_division(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_iteration_unpacks_coordinates(self):
        x, y = Point(3.5, 4.5)
        assert (x, y) == (3.5, 4.5)

    def test_dot_product(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_cross_product_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1


class TestPointMetrics:
    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_normalized_has_unit_length(self):
        assert Point(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_vector_unchanged(self):
        assert Point(0, 0).normalized() == Point(0, 0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_lerp_endpoints_and_middle(self):
        a, b = Point(0, 0), Point(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Point(5, 10)

    def test_rotation_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-9)
        assert rotated.y == pytest.approx(1.0)

    def test_rotation_around_custom_origin(self):
        rotated = Point(2, 1).rotated(math.pi, around=Point(1, 1))
        assert rotated.x == pytest.approx(0.0, abs=1e-9)
        assert rotated.y == pytest.approx(1.0)

    def test_is_close(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1))
        assert not Point(1, 1).is_close(Point(1.1, 1))

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestHelpers:
    def test_centroid_of_points(self):
        centroid = centroid_of([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert centroid == Point(1, 1)

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            centroid_of([])

    def test_polyline_length(self):
        length = polyline_length([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert length == pytest.approx(7.0)

    def test_polyline_length_single_point_is_zero(self):
        assert polyline_length([Point(1, 1)]) == 0.0
