"""Unit tests for fingerprinting (radio map, kNN, Naive Bayes) — Section 3.3 (2)."""

import pytest

from repro.core.errors import RadioMapError
from repro.core.types import PositioningMethod, RSSIRecord
from repro.geometry.point import Point
from repro.positioning.base import ObservationWindow, build_windows
from repro.positioning.fingerprinting import (
    KNNFingerprinting,
    MISSING_RSSI_DBM,
    NaiveBayesFingerprinting,
    RadioMap,
    ReferenceLocation,
)
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel


@pytest.fixture(scope="module")
def survey_generator(office, office_wifi):
    """A low-noise generator used for the offline site survey."""
    return RSSIGenerator(
        office,
        office_wifi,
        RSSIGenerationConfig(
            fluctuation_noise=FluctuationNoiseModel(1.0),
            detection_probability=1.0,
            seed=17,
        ),
    )


@pytest.fixture(scope="module")
def radio_map(office, survey_generator):
    return RadioMap.survey_grid(office, survey_generator, spacing=4.0, samples_per_location=6)


class TestReferenceLocation:
    def test_signal_distance_prefers_similar_fingerprints(self):
        reference = ReferenceLocation(0, Point(1, 1), mean_rssi={"a": -50.0, "b": -70.0})
        close = reference.signal_distance({"a": -52.0, "b": -69.0})
        far = reference.signal_distance({"a": -80.0, "b": -40.0})
        assert close < far

    def test_missing_devices_penalised(self):
        reference = ReferenceLocation(0, Point(1, 1), mean_rssi={"a": -50.0})
        with_device = reference.signal_distance({"a": -50.0})
        without_device = reference.signal_distance({"b": -50.0})
        assert with_device < without_device

    def test_empty_reference_gives_infinite_distance(self):
        reference = ReferenceLocation(0, Point(1, 1))
        assert reference.signal_distance({}) == float("inf")

    def test_log_likelihood_prefers_matching_observation(self):
        reference = ReferenceLocation(
            0, Point(1, 1), mean_rssi={"a": -50.0}, std_rssi={"a": 2.0}
        )
        assert reference.log_likelihood({"a": -50.0}) > reference.log_likelihood({"a": -70.0})


class TestRadioMapConstruction:
    def test_survey_grid_covers_every_floor(self, radio_map, office):
        assert radio_map.floors() == office.floor_ids

    def test_reference_density_follows_spacing(self, office, survey_generator):
        sparse = RadioMap.survey_grid(office, survey_generator, spacing=8.0, samples_per_location=3)
        dense = RadioMap.survey_grid(office, survey_generator, spacing=4.0, samples_per_location=3)
        assert len(dense) > len(sparse)

    def test_references_have_fingerprints(self, radio_map):
        assert all(reference.mean_rssi for reference in radio_map.references)

    def test_survey_explicit_points(self, office, survey_generator):
        """Section 3.3: users select the set of reference locations."""
        points = [(0, Point(4.0, 3.0)), (0, Point(20.0, 9.0)), (1, Point(12.0, 3.0))]
        radio_map = RadioMap.survey(office, survey_generator, points, samples_per_location=4)
        assert len(radio_map) == 3
        assert radio_map.references[0].partition_id is not None

    def test_empty_radio_map_rejected_by_methods(self, office, office_wifi):
        with pytest.raises(RadioMapError):
            KNNFingerprinting(office, office_wifi, RadioMap())
        with pytest.raises(RadioMapError):
            NaiveBayesFingerprinting(office, office_wifi, RadioMap())


class TestKNN:
    def test_k_must_be_positive(self, office, office_wifi, radio_map):
        with pytest.raises(RadioMapError):
            KNNFingerprinting(office, office_wifi, radio_map, k=0)

    def test_empty_window_returns_none(self, office, office_wifi, radio_map):
        method = KNNFingerprinting(office, office_wifi, radio_map)
        assert method.estimate_window(ObservationWindow("o", 0.0, 5.0)) is None

    def test_estimate_near_surveyed_location(self, office, office_wifi, radio_map, survey_generator):
        method = KNNFingerprinting(office, office_wifi, radio_map, k=3)
        true_point = Point(20.0, 9.0)
        observation = survey_generator.collect_fingerprint(0, true_point, samples=4)
        records = [
            RSSIRecord("o", device_id, sum(values) / len(values), 1.0)
            for device_id, values in observation.items()
        ]
        estimate = method.estimate_window(ObservationWindow("o", 0.0, 5.0, records=records))
        assert estimate is not None
        assert estimate.location.floor_id == 0
        x, y = estimate.location.point()
        assert Point(x, y).distance_to(true_point) < 6.0

    def test_estimates_never_mix_floors(self, office, office_wifi, radio_map, office_rssi):
        method = KNNFingerprinting(office, office_wifi, radio_map, k=5)
        for estimate in method.estimate(build_windows(office_rssi, period=5.0)):
            assert estimate.location.floor_id in office.floor_ids
            assert estimate.method is PositioningMethod.FINGERPRINTING

    def test_accuracy_on_generated_data(self, office, office_wifi, radio_map, office_rssi, office_simulation):
        from repro.analysis.accuracy import evaluate_positioning

        method = KNNFingerprinting(office, office_wifi, radio_map, k=3)
        estimates = method.estimate(build_windows(office_rssi, period=5.0))
        report = evaluate_positioning(estimates, office_simulation.trajectories)
        assert report.mean_error < 8.0


class TestNaiveBayes:
    def test_probabilities_sum_to_one(self, office, office_wifi, radio_map, office_rssi):
        method = NaiveBayesFingerprinting(office, office_wifi, radio_map, top_k=4)
        estimates = method.estimate(build_windows(office_rssi, period=5.0))
        assert estimates
        for estimate in estimates[:50]:
            total = sum(prob for _, prob in estimate.candidates)
            assert total == pytest.approx(1.0, abs=1e-6)
            assert len(estimate.candidates) <= 4

    def test_best_candidate_has_highest_probability(self, office, office_wifi, radio_map, office_rssi):
        method = NaiveBayesFingerprinting(office, office_wifi, radio_map)
        estimates = method.estimate(build_windows(office_rssi, period=5.0))
        for estimate in estimates[:50]:
            assert estimate.best_probability == max(prob for _, prob in estimate.candidates)

    def test_probabilistic_output_format(self, office, office_wifi, radio_map, office_rssi):
        """Section 4.2: probabilistic records are (o_id, {(loc_i, prob_i)}, t)."""
        method = NaiveBayesFingerprinting(office, office_wifi, radio_map)
        estimate = method.estimate(build_windows(office_rssi, period=5.0))[0]
        row = estimate.as_record()
        assert row["method"] == "fingerprinting"
        assert all("location" in candidate and "prob" in candidate for candidate in row["candidates"])

    def test_top_k_validation(self, office, office_wifi, radio_map):
        with pytest.raises(RadioMapError):
            NaiveBayesFingerprinting(office, office_wifi, radio_map, top_k=0)

    def test_empty_window_returns_none(self, office, office_wifi, radio_map):
        method = NaiveBayesFingerprinting(office, office_wifi, radio_map)
        assert method.estimate_window(ObservationWindow("o", 0.0, 5.0)) is None

    def test_bayes_accuracy_comparable_to_knn(self, office, office_wifi, radio_map, office_rssi, office_simulation):
        from repro.analysis.accuracy import evaluate_probabilistic

        method = NaiveBayesFingerprinting(office, office_wifi, radio_map, top_k=3)
        estimates = method.estimate(build_windows(office_rssi, period=5.0))
        report = evaluate_probabilistic(estimates, office_simulation.trajectories)
        assert report.mean_error < 10.0
