"""Unit tests for observation windows and the positioning method base."""

import pytest

from repro.core.errors import PositioningError
from repro.core.types import RSSIRecord
from repro.positioning.base import ObservationWindow, PositioningMethodBase, build_windows


def _record(object_id="o1", device_id="ap_001", rssi=-60.0, t=0.0):
    return RSSIRecord(object_id=object_id, device_id=device_id, rssi=rssi, t=t)


class TestBuildWindows:
    def test_empty_input(self):
        assert build_windows([], period=5.0) == []

    def test_rejects_non_positive_period(self):
        with pytest.raises(PositioningError):
            build_windows([_record()], period=0.0)

    def test_records_grouped_by_object_and_period(self):
        records = [
            _record("a", t=0.0), _record("a", t=1.0), _record("a", t=6.0),
            _record("b", t=0.5),
        ]
        windows = build_windows(records, period=5.0)
        assert len(windows) == 3
        by_key = {(w.object_id, w.t_start): len(w.records) for w in windows}
        assert by_key[("a", 0.0)] == 2
        assert by_key[("a", 5.0)] == 1
        assert by_key[("b", 0.0)] == 1

    def test_windows_sorted_by_time(self):
        records = [_record(t=12.0), _record(t=2.0), _record(t=7.0)]
        windows = build_windows(records, period=5.0, origin=0.0)
        assert [w.t_start for w in windows] == [0.0, 5.0, 10.0]

    def test_window_origin_defaults_to_first_record(self):
        records = [_record(t=12.0), _record(t=2.0), _record(t=7.0)]
        windows = build_windows(records, period=5.0)
        assert [w.t_start for w in windows] == [2.0, 7.0, 12.0]

    def test_origin_override(self):
        records = [_record(t=10.0), _record(t=11.0)]
        windows = build_windows(records, period=5.0, origin=0.0)
        assert windows[0].t_start == 10.0

    def test_window_center(self):
        window = ObservationWindow("o", 10.0, 15.0)
        assert window.t_center == pytest.approx(12.5)


class TestObservationWindow:
    def test_mean_rssi_by_device(self):
        window = ObservationWindow("o", 0.0, 5.0, records=[
            _record(device_id="a", rssi=-60.0), _record(device_id="a", rssi=-70.0),
            _record(device_id="b", rssi=-50.0),
        ])
        means = window.mean_rssi_by_device()
        assert means["a"] == pytest.approx(-65.0)
        assert means["b"] == pytest.approx(-50.0)

    def test_device_ids_sorted(self):
        window = ObservationWindow("o", 0.0, 5.0, records=[
            _record(device_id="z"), _record(device_id="a"),
        ])
        assert window.device_ids == ["a", "z"]

    def test_strongest_device(self):
        window = ObservationWindow("o", 0.0, 5.0, records=[
            _record(device_id="far", rssi=-80.0), _record(device_id="near", rssi=-45.0),
        ])
        assert window.strongest_device() == ("near", -45.0)

    def test_strongest_device_empty(self):
        assert ObservationWindow("o", 0.0, 5.0).strongest_device() is None


class TestMethodBase:
    def test_unknown_device_raises(self, office, office_wifi):
        method = PositioningMethodBase(office, office_wifi)
        with pytest.raises(PositioningError):
            method.device("ghost")

    def test_dominant_floor(self, office, office_wifi):
        method = PositioningMethodBase(office, office_wifi)
        floor0_device = next(d for d in office_wifi if d.floor_id == 0)
        floor1_device = next(d for d in office_wifi if d.floor_id == 1)
        window = ObservationWindow("o", 0.0, 5.0, records=[
            _record(device_id=floor0_device.device_id),
            _record(device_id=floor0_device.device_id, t=1.0),
            _record(device_id=floor1_device.device_id),
        ])
        assert method.dominant_floor(window) == 0

    def test_dominant_floor_empty_window_raises(self, office, office_wifi):
        method = PositioningMethodBase(office, office_wifi)
        with pytest.raises(PositioningError):
            method.dominant_floor(ObservationWindow("o", 0.0, 5.0))

    def test_locate_point_annotates_partition(self, office, office_wifi):
        from repro.geometry.point import Point

        method = PositioningMethodBase(office, office_wifi)
        location = method.locate_point(0, Point(4.0, 3.0))
        assert location.partition_id is not None
