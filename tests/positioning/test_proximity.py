"""Unit tests for proximity positioning (Section 3.3 (3))."""

import pytest

from repro.core.types import IndoorLocation, RSSIRecord
from repro.devices.rfid import RFIDReader
from repro.positioning.proximity import ProximityMethod
from repro.rssi.pathloss import default_model_for


@pytest.fixture()
def reader(office):
    return RFIDReader(
        "rfid_1", IndoorLocation("office", 0, x=20.0, y=9.0),
        detection_range=3.0, detection_interval=1.0,
    )


def _strong(reader, object_id="o1", t=0.0):
    """An RSSI value comfortably above the reader's detection threshold."""
    return RSSIRecord(object_id, reader.device_id, reader.tx_power_dbm - 2.0, t)


def _weak(reader, object_id="o1", t=0.0):
    """An RSSI value below the detection threshold (object out of range)."""
    threshold = default_model_for(reader).rssi_at(reader.detection_range)
    return RSSIRecord(object_id, reader.device_id, threshold - 10.0, t)


class TestThresholding:
    def test_default_threshold_derived_from_detection_range(self, office, reader):
        method = ProximityMethod(office, [reader])
        expected = default_model_for(reader).rssi_at(reader.detection_range)
        assert method.threshold_for(reader.device_id) == pytest.approx(expected)

    def test_explicit_threshold_override(self, office, reader):
        method = ProximityMethod(office, [reader], rssi_threshold=-55.0)
        assert method.threshold_for(reader.device_id) == -55.0

    def test_weak_measurements_produce_no_detection(self, office, reader):
        method = ProximityMethod(office, [reader])
        records = [_weak(reader, t=float(t)) for t in range(10)]
        assert method.detect(records) == []

    def test_miss_tolerance_must_be_positive(self, office, reader):
        with pytest.raises(ValueError):
            ProximityMethod(office, [reader], miss_tolerance=0)


class TestDetectionPeriods:
    def test_continuous_detection_is_one_period(self, office, reader):
        method = ProximityMethod(office, [reader])
        records = [_strong(reader, t=float(t)) for t in range(10)]
        periods = method.detect(records)
        assert len(periods) == 1
        assert periods[0].t_start == 0.0
        assert periods[0].t_end == 9.0
        assert periods[0].duration == pytest.approx(9.0)

    def test_gap_longer_than_detection_interval_splits_periods(self, office, reader):
        """Section 3.3: missing one detection operation completes the period."""
        method = ProximityMethod(office, [reader], miss_tolerance=1)
        records = [
            _strong(reader, t=0.0), _strong(reader, t=1.0),
            # 5-second silence: the object left the detection range.
            _strong(reader, t=6.0), _strong(reader, t=7.0),
        ]
        periods = method.detect(records)
        assert len(periods) == 2
        assert (periods[0].t_start, periods[0].t_end) == (0.0, 1.0)
        assert (periods[1].t_start, periods[1].t_end) == (6.0, 7.0)

    def test_miss_tolerance_bridges_short_gaps(self, office, reader):
        method = ProximityMethod(office, [reader], miss_tolerance=5)
        records = [_strong(reader, t=0.0), _strong(reader, t=1.0), _strong(reader, t=5.0)]
        assert len(method.detect(records)) == 1

    def test_periods_split_per_object_and_device(self, office, reader):
        second_reader = RFIDReader(
            "rfid_2", IndoorLocation("office", 0, x=28.0, y=9.0),
            detection_range=3.0, detection_interval=1.0,
        )
        method = ProximityMethod(office, [reader, second_reader])
        records = [
            _strong(reader, "a", 0.0), _strong(reader, "a", 1.0),
            _strong(reader, "b", 0.0),
            _strong(second_reader, "a", 10.0),
        ]
        periods = method.detect(records)
        keys = {(p.object_id, p.device_id) for p in periods}
        assert keys == {("a", "rfid_1"), ("b", "rfid_1"), ("a", "rfid_2")}

    def test_single_measurement_is_a_zero_length_period(self, office, reader):
        method = ProximityMethod(office, [reader])
        periods = method.detect([_strong(reader, t=4.0)])
        assert len(periods) == 1
        assert periods[0].duration == 0.0

    def test_unknown_devices_ignored(self, office, reader):
        method = ProximityMethod(office, [reader])
        stray = RSSIRecord("o1", "unknown_device", -10.0, 0.0)
        assert method.detect([stray]) == []

    def test_periods_sorted_by_start_time(self, office, reader):
        method = ProximityMethod(office, [reader])
        records = [
            _strong(reader, "b", 20.0),
            _strong(reader, "a", 0.0),
            _strong(reader, "c", 10.0),
        ]
        periods = method.detect(records)
        starts = [p.t_start for p in periods]
        assert starts == sorted(starts)


class TestSymbolicSemantics:
    def test_detected_object_really_is_near_the_device(self, office, office_simulation):
        """Proximity collocation: during a detection period the object is near the device."""
        from repro.analysis.accuracy import evaluate_proximity
        from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
        from repro.devices.deployment import CheckPointDeployment
        from repro.core.types import DeviceType
        from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator

        controller = PositioningDeviceController(office, seed=3)
        readers = controller.deploy(
            DeviceDeploymentRequest(DeviceType.RFID, 5, CheckPointDeployment())
        )
        rssi = RSSIGenerator(
            office, readers, RSSIGenerationConfig(sampling_period=1.0, seed=4)
        ).generate(office_simulation.trajectories)
        periods = ProximityMethod(office, readers).detect(rssi)
        assert periods
        report = evaluate_proximity(periods, office_simulation.trajectories, readers)
        assert report.in_range_fraction > 0.7
