"""Unit tests for trilateration (Section 3.3 (1))."""

import pytest

from repro.building.model import Building, Partition
from repro.core.types import IndoorLocation, PositioningMethod, RSSIRecord
from repro.devices.wifi import WiFiAccessPoint
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.positioning.base import ObservationWindow, build_windows
from repro.positioning.trilateration import (
    TrilaterationMethod,
    default_rssi_conversion,
)
from repro.rssi.pathloss import PathLossModel, default_model_for


@pytest.fixture()
def open_hall():
    """One large 40x40 open hall — ideal, wall-free trilateration conditions."""
    building = Building("hall")
    floor = building.new_floor(0)
    floor.add_partition(Partition("hall", 0, Polygon.rectangle(0, 0, 40, 40)))
    return building


@pytest.fixture()
def corner_devices(open_hall):
    """Four access points near the hall corners."""
    positions = [(2.0, 2.0), (38.0, 2.0), (38.0, 38.0), (2.0, 38.0)]
    return [
        WiFiAccessPoint(
            f"ap_{index}", IndoorLocation("hall", 0, x=x, y=y), detection_range=80.0
        )
        for index, (x, y) in enumerate(positions)
    ]


def _noise_free_window(devices, true_point: Point, object_id="o1", t=5.0):
    """An observation window with exact (noise-free) path-loss RSSI values."""
    records = []
    for device in devices:
        model = default_model_for(device)
        rssi = model.rssi_at(device.position.distance_to(true_point))
        records.append(RSSIRecord(object_id, device.device_id, rssi, t))
    return ObservationWindow(object_id, t - 2.5, t + 2.5, records=records)


class TestNoiseFreeAccuracy:
    @pytest.mark.parametrize("true_point", [Point(20, 20), Point(10, 30), Point(5, 5), Point(33, 12)])
    def test_recovers_position_exactly_without_noise(self, open_hall, corner_devices, true_point):
        method = TrilaterationMethod(open_hall, corner_devices)
        window = _noise_free_window(corner_devices, true_point)
        estimate = method.estimate_window(window)
        assert estimate is not None
        assert estimate.method is PositioningMethod.TRILATERATION
        x, y = estimate.location.point()
        assert Point(x, y).distance_to(true_point) < 0.5

    def test_estimate_is_annotated_with_partition_and_time(self, open_hall, corner_devices):
        method = TrilaterationMethod(open_hall, corner_devices)
        estimate = method.estimate_window(_noise_free_window(corner_devices, Point(20, 20), t=42.0))
        assert estimate.location.partition_id == "hall"
        assert estimate.t == pytest.approx(42.0)


class TestRequirements:
    def test_needs_at_least_three_devices(self, open_hall, corner_devices):
        method = TrilaterationMethod(open_hall, corner_devices)
        window = _noise_free_window(corner_devices[:2], Point(20, 20))
        assert method.estimate_window(window) is None

    def test_constructor_validates_min_devices(self, open_hall, corner_devices):
        with pytest.raises(ValueError):
            TrilaterationMethod(open_hall, corner_devices, min_devices=2)
        with pytest.raises(ValueError):
            TrilaterationMethod(open_hall, corner_devices, min_devices=4, max_devices=3)

    def test_devices_on_other_floors_are_ignored(self, open_hall, corner_devices):
        upstairs = WiFiAccessPoint(
            "up", IndoorLocation("hall", 1, x=20.0, y=20.0), detection_range=80.0
        )
        method = TrilaterationMethod(open_hall, corner_devices + [upstairs])
        window = _noise_free_window(corner_devices[:3], Point(20, 20))
        window.records.append(RSSIRecord("o1", "up", -40.0, 5.0))
        estimate = method.estimate_window(window)
        assert estimate is not None
        assert estimate.location.floor_id == 0

    def test_collinear_devices_rejected(self, open_hall):
        collinear = [
            WiFiAccessPoint(f"c_{i}", IndoorLocation("hall", 0, x=float(10 * i + 5), y=20.0),
                            detection_range=80.0)
            for i in range(3)
        ]
        method = TrilaterationMethod(open_hall, collinear)
        window = _noise_free_window(collinear, Point(20, 10))
        # Degenerate geometry: either None or a finite estimate, never an exception.
        estimate = method.estimate_window(window)
        if estimate is not None:
            assert estimate.location.has_point


class TestCustomConversion:
    def test_default_conversion_inverts_path_loss(self, corner_devices):
        device = corner_devices[0]
        model = default_model_for(device)
        assert default_rssi_conversion(device, model.rssi_at(7.0)) == pytest.approx(7.0, rel=1e-6)

    def test_user_defined_conversion_function_is_used(self, open_hall, corner_devices):
        """Section 3.3: users can define their own RSSI conversion functions."""
        calls = []

        def biased_conversion(device, rssi):
            calls.append(device.device_id)
            return default_rssi_conversion(device, rssi) * 2.0

        method = TrilaterationMethod(open_hall, corner_devices, rssi_conversion=biased_conversion)
        method.estimate_window(_noise_free_window(corner_devices, Point(20, 20)))
        assert calls  # the custom function was invoked

    def test_explicit_path_loss_model_conversion(self, open_hall, corner_devices):
        path_loss = PathLossModel(exponent=2.0, calibration_rssi=-40.0)
        method = TrilaterationMethod(open_hall, corner_devices, path_loss=path_loss)
        estimate = method.estimate_window(_noise_free_window(corner_devices, Point(20, 20)))
        assert estimate is not None


class TestClamping:
    def test_estimates_clamped_into_floor_extent(self, open_hall, corner_devices):
        method = TrilaterationMethod(open_hall, corner_devices, clamp_to_floor=True)
        # Wildly inconsistent radii: pretend every device hears a very weak signal.
        records = [
            RSSIRecord("o1", device.device_id, -95.0, 0.0) for device in corner_devices
        ]
        window = ObservationWindow("o1", 0.0, 5.0, records=records)
        estimate = method.estimate_window(window)
        assert estimate is not None
        x, y = estimate.location.point()
        assert 0.0 <= x <= 40.0 and 0.0 <= y <= 40.0


class TestEndToEnd:
    def test_accuracy_on_generated_office_data(self, office, office_wifi, office_rssi, office_simulation):
        from repro.analysis.accuracy import evaluate_positioning

        method = TrilaterationMethod(office, office_wifi)
        estimates = method.estimate(build_windows(office_rssi, period=5.0))
        assert len(estimates) > 50
        report = evaluate_positioning(estimates, office_simulation.trajectories)
        assert report.mean_error < 15.0
        assert report.floor_accuracy > 0.9
