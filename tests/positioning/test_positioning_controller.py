"""Unit tests for the Positioning Method Controller (PMC)."""

import pytest

from repro.core.errors import ConfigurationError, PositioningError
from repro.core.types import (
    DeviceType,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
)
from repro.positioning.controller import PositioningConfig, PositioningMethodController
from repro.positioning.fingerprinting import RadioMap
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator


@pytest.fixture(scope="module")
def office_radio_map(office, office_wifi):
    generator = RSSIGenerator(
        office, office_wifi, RSSIGenerationConfig(detection_probability=1.0, seed=41)
    )
    return RadioMap.survey_grid(office, generator, spacing=5.0, samples_per_location=5)


class TestConfigValidation:
    def test_rejects_bad_sampling_period(self):
        with pytest.raises(ConfigurationError):
            PositioningConfig(sampling_period=0)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            PositioningConfig(fingerprinting_algorithm="forest")


class TestCompatibility:
    def test_fingerprinting_with_rfid_rejected(self, office, fresh_office):
        """Section 5: fingerprinting currently does not apply to RFID devices."""
        from repro.devices.controller import PositioningDeviceController

        controller = PositioningDeviceController(office, seed=1)
        rfid = controller.add_device_at(DeviceType.RFID, 0, 20.0, 9.0)
        with pytest.raises(PositioningError):
            PositioningMethodController(
                office, [rfid], PositioningConfig(method=PositioningMethod.FINGERPRINTING)
            )

    def test_trilateration_with_bluetooth_allowed(self, office):
        from repro.devices.controller import PositioningDeviceController

        controller = PositioningDeviceController(office, seed=2)
        beacons = [
            controller.add_device_at(DeviceType.BLUETOOTH, 0, x, 9.0) for x in (5.0, 20.0, 35.0)
        ]
        pmc = PositioningMethodController(
            office, beacons, PositioningConfig(method=PositioningMethod.TRILATERATION)
        )
        assert pmc.build_method().name == "trilateration"


class TestMethodConstruction:
    def test_trilateration_default(self, office, office_wifi):
        pmc = PositioningMethodController(office, office_wifi)
        assert pmc.build_method().name == "trilateration"

    def test_fingerprinting_requires_radio_map(self, office, office_wifi):
        pmc = PositioningMethodController(
            office, office_wifi, PositioningConfig(method=PositioningMethod.FINGERPRINTING)
        )
        with pytest.raises(PositioningError):
            pmc.build_method()

    def test_fingerprinting_algorithm_selection(self, office, office_wifi, office_radio_map):
        knn = PositioningMethodController(
            office, office_wifi,
            PositioningConfig(method=PositioningMethod.FINGERPRINTING, fingerprinting_algorithm="knn"),
            radio_map=office_radio_map,
        )
        bayes = PositioningMethodController(
            office, office_wifi,
            PositioningConfig(method=PositioningMethod.FINGERPRINTING, fingerprinting_algorithm="bayes"),
            radio_map=office_radio_map,
        )
        assert knn.build_method().name == "fingerprinting-knn"
        assert bayes.build_method().name == "fingerprinting-bayes"

    def test_proximity_construction(self, office, office_wifi):
        pmc = PositioningMethodController(
            office, office_wifi, PositioningConfig(method=PositioningMethod.PROXIMITY)
        )
        assert pmc.build_method().name == "proximity"


class TestGeneration:
    def test_trilateration_output_type(self, office, office_wifi, office_rssi):
        pmc = PositioningMethodController(
            office, office_wifi, PositioningConfig(sampling_period=5.0)
        )
        output = pmc.generate(office_rssi)
        assert output
        assert all(isinstance(record, PositioningRecord) for record in output)

    def test_fingerprinting_bayes_output_type(self, office, office_wifi, office_rssi, office_radio_map):
        pmc = PositioningMethodController(
            office, office_wifi,
            PositioningConfig(
                method=PositioningMethod.FINGERPRINTING,
                fingerprinting_algorithm="bayes",
                sampling_period=5.0,
            ),
            radio_map=office_radio_map,
        )
        output = pmc.generate(office_rssi)
        assert output
        assert all(isinstance(record, ProbabilisticPositioningRecord) for record in output)

    def test_proximity_output_type(self, office, office_wifi, office_rssi):
        pmc = PositioningMethodController(
            office, office_wifi, PositioningConfig(method=PositioningMethod.PROXIMITY)
        )
        output = pmc.generate(office_rssi)
        assert output
        assert all(isinstance(record, ProximityRecord) for record in output)

    def test_positioning_sampling_frequency_differs_from_rssi(self, office, office_wifi, office_rssi):
        """Section 2: PMC has its own sampling frequency, lower than the RSSI one."""
        dense = PositioningMethodController(
            office, office_wifi, PositioningConfig(sampling_period=4.0)
        ).generate(office_rssi)
        sparse = PositioningMethodController(
            office, office_wifi, PositioningConfig(sampling_period=20.0)
        ).generate(office_rssi)
        assert len(dense) > len(sparse)
        assert len(dense) < len(office_rssi)
