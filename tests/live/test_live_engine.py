"""Unit tests for the incremental monitor engine, on hand-fed records."""

import pytest

from repro.core.errors import MonitorError
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.live.engine import LiveEngine, _window_indices
from repro.live.monitors import Monitor


def rec(object_id, x, y, t, floor=0, partition="hall"):
    return TrajectoryRecord(
        object_id, IndoorLocation("b", floor, partition_id=partition, x=x, y=y), t
    )


def run(monitors, records, shards=None, **engine_kwargs):
    """Feed *records* (one shard, or a list of per-shard lists) and finalize."""
    engine = LiveEngine(monitors, **engine_kwargs)
    batches = records if shards else [records]
    for shard_id, batch in enumerate(batches):
        engine.begin_shard(shard_id)
        engine.feed("trajectory", batch)
        engine.end_shard()
    return engine.finalize()


class TestWindowAssignment:
    def test_tumbling_windows_partition_the_time_axis(self):
        assert _window_indices(5.0, 10.0, 10.0) == (0,)
        assert _window_indices(15.0, 10.0, 10.0) == (1,)

    def test_boundary_record_lands_in_both_adjacent_windows(self):
        # t = 10 is the inclusive end of window 0 and start of window 1.
        assert _window_indices(10.0, 10.0, 10.0) == (0, 1)

    def test_sliding_overlap(self):
        # window 20, slide 5: t = 12 is inside windows starting at 0, 5, 10.
        assert _window_indices(12.0, 20.0, 5.0) == (0, 1, 2)

    def test_slide_larger_than_window_leaves_gaps(self):
        # window 5, slide 10: t = 7 falls between [0, 5] and [10, 15].
        assert _window_indices(7.0, 5.0, 10.0) == ()

    def test_negative_time_matches_nothing(self):
        assert _window_indices(-1.0, 10.0, 10.0) == ()


class TestDensity:
    def test_counts_distinct_objects_per_window(self):
        monitors = [Monitor.density(floor=0).window(10).slide(10).named("occ")]
        records = [rec("a", 1, 1, 2.0), rec("a", 2, 2, 4.0), rec("b", 3, 3, 12.0)]
        report = run(monitors, records)
        assert report.results["occ"].values() == [1, 1]

    def test_region_target_excludes_outside_samples(self):
        monitors = [Monitor.density((0, 0, 5, 5), floor=0).window(10).named("inbox")]
        records = [rec("a", 1, 1, 0.0), rec("b", 50, 50, 1.0)]
        assert run(monitors, records).results["inbox"].values() == [1]

    def test_partition_target(self):
        monitors = [Monitor.density(partition="room").window(10).named("room")]
        records = [rec("a", 1, 1, 0.0, partition="room"), rec("b", 1, 1, 0.0)]
        assert run(monitors, records).results["room"].values() == [1]

    def test_floor_mismatch_excluded(self):
        monitors = [Monitor.density(floor=1).window(10).named("f1")]
        assert run(monitors, [rec("a", 1, 1, 0.0, floor=0)]).results["f1"].values() == [0]

    def test_predicate_filters_the_stream(self):
        monitors = [
            Monitor.density(floor=0).where("object_id", "!=", "a").window(10).named("rest")
        ]
        records = [rec("a", 1, 1, 0.0), rec("b", 1, 1, 1.0)]
        assert run(monitors, records).results["rest"].values() == [1]


class TestFlow:
    def test_counts_transitions_between_partitions(self):
        monitors = [Monitor.flow("hall", "room").window(100).named("in")]
        records = [
            rec("a", 1, 1, 0.0, partition="hall"),
            rec("a", 2, 2, 5.0, partition="room"),   # hall -> room: counts
            rec("a", 3, 3, 10.0, partition="hall"),  # room -> hall: not this monitor
            rec("a", 4, 4, 15.0, partition="room"),  # counts again
            rec("b", 9, 9, 2.0, partition="room"),   # first sample: no transition
        ]
        assert run(monitors, records).results["in"].values() == [2]

    def test_transition_requires_immediately_preceding_sample(self):
        monitors = [Monitor.flow("hall", "room").window(100).named("in")]
        records = [
            rec("a", 1, 1, 0.0, partition="hall"),
            rec("a", 2, 2, 5.0, partition="lobby"),
            rec("a", 3, 3, 10.0, partition="room"),  # lobby -> room: no count
        ]
        assert run(monitors, records).results["in"].values() == [0]


class TestGeofence:
    def test_enter_and_exit_events_and_alerts(self):
        monitors = [Monitor.geofence((0, 0, 5, 5), floor=0).window(100).named("fence")]
        records = [
            rec("a", 1, 1, 0.0),    # first sample inside: enter
            rec("a", 2, 2, 5.0),    # still inside: no event
            rec("a", 9, 9, 10.0),   # exit
            rec("a", 1, 1, 15.0),   # enter again
        ]
        report = run(monitors, records)
        result = report.results["fence"]
        assert result.values() == [
            ((0.0, "a", "enter"), (10.0, "a", "exit"), (15.0, "a", "enter"))
        ]
        assert [(a.t, a.kind) for a in result.alerts] == [
            (0.0, "enter"), (10.0, "exit"), (15.0, "enter"),
        ]

    def test_alert_on_restricts_alerts_but_not_window_events(self):
        monitors = [
            Monitor.geofence((0, 0, 5, 5), floor=0, on=("exit",)).window(100).named("f")
        ]
        records = [rec("a", 1, 1, 0.0), rec("a", 9, 9, 10.0)]
        result = run(monitors, records).results["f"]
        assert [a.kind for a in result.alerts] == ["exit"]
        assert result.values() == [((0.0, "a", "enter"), (10.0, "a", "exit"))]

    def test_on_alert_callback_fires_at_shard_merge(self):
        seen = []
        monitors = [Monitor.geofence((0, 0, 5, 5), floor=0).window(100).named("f")]
        run(monitors, [rec("a", 1, 1, 0.0)], on_alert=seen.append)
        assert [(a.monitor, a.kind) for a in seen] == [("f", "enter")]

    def test_pending_alert_queue_is_bounded(self):
        monitors = [Monitor.geofence((0, 0, 5, 5), floor=0).window(1000).named("f")]
        records = []
        for i in range(6):  # alternate inside/outside: 6 alerts
            records.append(rec("a", 1 if i % 2 == 0 else 9, 1, float(i)))
        report = run(monitors, records, max_pending_alerts=4)
        assert report.results["f"].dropped_alerts == 2
        # The finalized window still carries every event: backpressure bounds
        # the undrained alert queue, never the aggregates.
        assert len(report.results["f"].windows[0].value) == 6


class TestKnn:
    def test_ranks_objects_by_closest_approach(self):
        monitors = [Monitor.knn((0.0, 0.0), k=2, floor=0).window(100).named("near")]
        records = [
            rec("far", 30, 40, 0.0),    # distance 50
            rec("mid", 3, 4, 1.0),      # distance 5
            rec("close", 0, 1, 2.0),    # distance 1
            rec("mid", 0.6, 0.8, 3.0),  # improves mid to 1.0: ties with close
        ]
        result = run(monitors, records).results["near"]
        assert result.values() == [(("close", 1.0), ("mid", 1.0))]


class TestVisitCounts:
    def test_top_k_partitions_by_distinct_objects(self):
        monitors = [Monitor.visit_counts(top_k=2).window(100).named("pois")]
        records = [
            rec("a", 1, 1, 0.0, partition="hall"),
            rec("b", 1, 1, 1.0, partition="hall"),
            rec("a", 2, 2, 2.0, partition="room"),
            rec("c", 3, 3, 3.0, partition="lobby"),
        ]
        result = run(monitors, records).results["pois"]
        assert result.values() == [(("hall", 2), ("lobby", 1))]


class TestEngineProtocol:
    def test_shared_groups_and_unique_names(self):
        engine = LiveEngine()
        first = engine.subscribe(Monitor.density(floor=0))
        second = engine.subscribe(Monitor.density(floor=0))
        assert first != second and second.endswith("#2")

    def test_subscribe_after_feed_rejected(self):
        engine = LiveEngine([Monitor.density(floor=0)])
        engine.feed("trajectory", [rec("a", 1, 1, 0.0)])
        with pytest.raises(MonitorError):
            engine.subscribe(Monitor.visit_counts())

    def test_finalize_twice_rejected(self):
        engine = LiveEngine([Monitor.density(floor=0)])
        engine.finalize()
        with pytest.raises(MonitorError):
            engine.finalize()

    def test_unmonitored_datasets_are_ignored(self):
        engine = LiveEngine([Monitor.density(floor=0)])
        assert engine.feed("rssi", [object()]) == 0

    def test_empty_stream_emits_no_windows(self):
        report = run([Monitor.density(floor=0).named("occ")], [])
        assert report.results["occ"].windows == []

    def test_shard_split_is_invisible_in_results(self):
        monitors = [Monitor.density(floor=0).window(10).slide(5).named("occ")]
        records_a = [rec("a", 1, 1, float(t)) for t in range(0, 20, 2)]
        records_b = [rec("b", 2, 2, float(t)) for t in range(0, 20, 2)]
        merged = run(monitors, records_a + records_b)
        sharded = run(monitors, [records_a, records_b], shards=True)
        assert merged.results["occ"].values() == sharded.results["occ"].values()
        assert sharded.shards_merged == 2

    def test_accepts_plain_row_dicts(self):
        monitors = [Monitor.density(floor=0).window(10).named("occ")]
        rows = [rec("a", 1, 1, 0.0).as_record()]
        assert run(monitors, rows).results["occ"].values() == [1]


class TestSpatialPruning:
    def test_region_off_the_floor_is_statically_empty(self, office):
        from repro.spatial import SpatialService

        spatial = SpatialService(office)
        monitors = [
            Monitor.density((1e6, 1e6, 1e6 + 1, 1e6 + 1), floor=1).window(10).named("off")
        ]
        report = run(monitors, [rec("a", 1, 1, 0.0, floor=1)], spatial=spatial)
        assert report.results["off"].values() == [0]

    def test_unknown_floor_is_statically_empty(self, office):
        from repro.spatial import SpatialService

        spatial = SpatialService(office)
        monitors = [Monitor.density((0, 0, 5, 5), floor=99).window(10).named("ghost")]
        report = run(monitors, [rec("a", 1, 1, 0.0, floor=99)], spatial=spatial)
        assert report.results["ghost"].values() == [0]

    def test_pruned_results_match_unpruned(self, office):
        from repro.spatial import SpatialService

        spatial = SpatialService(office)
        bounds = spatial.floor_bounds(1)
        region = (bounds.min_x, bounds.min_y,
                  bounds.min_x + bounds.width / 2, bounds.min_y + bounds.height / 2)
        monitors = [Monitor.density(region, floor=1).window(10).named("half")]
        records = [
            rec("a", bounds.min_x + 1, bounds.min_y + 1, 0.0, floor=1, partition=None),
            rec("b", bounds.max_x - 1, bounds.max_y - 1, 1.0, floor=1, partition=None),
        ]
        pruned = run(monitors, records, spatial=spatial)
        unpruned = run(monitors, records)
        assert pruned.results["half"].values() == unpruned.results["half"].values()
