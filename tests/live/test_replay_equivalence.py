"""The replay-equivalence contract, end to end.

A monitored streaming run, a replay over the warehouse it produced, and the
equivalent offline builder queries must all tell the same story — on both
storage engines, and for any ``workers`` value.
"""

import pytest

from repro.core.config import config_from_dict
from repro.core.pipeline import VitaPipeline
from repro.live import Monitor, replay
from repro.storage.stream import DataStreamAPI


def small_config(backend="memory", path=None, monitors=()):
    payload = {
        "environment": {"building": "clinic", "floors": 1},
        "devices": [{"type": "wifi", "count_per_floor": 4}],
        "objects": {"count": 6, "duration": 60, "time_step": 0.5, "seed": 11},
        "monitors": list(monitors),
        "seed": 11,
    }
    if backend == "sqlite":
        payload["storage"] = {"backend": "sqlite", "path": str(path)}
    return config_from_dict(payload)


MONITOR_SECTION = (
    {"monitor": "density", "floor": 0, "window": 20, "slide": 10, "name": "occ"},
    {"monitor": "visit_counts", "top_k": 3, "window": 30, "name": "pois"},
    {"monitor": "geofence", "floor": 0, "region": [0, 0, 12, 12], "name": "fence"},
    {"monitor": "knn", "floor": 0, "x": 8.0, "y": 6.0, "k": 3, "window": 30,
     "name": "near"},
)


@pytest.fixture(scope="module", params=("memory", "sqlite"))
def monitored_run(request, tmp_path_factory):
    """One monitored streaming run per backend, shared by the suite."""
    path = tmp_path_factory.mktemp("live") / "run.sqlite"
    config = small_config(request.param, path, MONITOR_SECTION)
    result = VitaPipeline(config).run_streaming()
    yield config, result
    result.warehouse.close()


class TestAttachedVersusReplay:
    def test_every_monitor_replays_identically(self, monitored_run):
        config, result = monitored_run
        monitors = [mc.build() for mc in config.monitors]
        replayed = replay(result.warehouse, monitors)
        assert set(replayed.results) == set(result.live.results)
        for name, live_result in result.live.results.items():
            assert replayed.results[name].values() == live_result.values(), name

    def test_replay_through_stream_api(self, monitored_run):
        config, result = monitored_run
        monitors = [mc.build() for mc in config.monitors]
        replayed = DataStreamAPI(result.warehouse).replay_monitors(monitors)
        assert replayed.results["occ"].values() == result.live.results["occ"].values()

    def test_alert_multiset_matches_across_modes(self, monitored_run):
        config, result = monitored_run
        monitors = [mc.build() for mc in config.monitors]
        replayed = replay(result.warehouse, monitors)
        live_alerts = {(a.t, a.object_id, a.kind) for a in result.live.results["fence"].alerts}
        replay_alerts = {(a.t, a.object_id, a.kind) for a in replayed.results["fence"].alerts}
        assert live_alerts == replay_alerts


class TestOfflineBuilderEquivalence:
    def test_density_windows_match_distinct_queries(self, monitored_run):
        _, result = monitored_run
        warehouse = result.warehouse
        for window in result.live.results["occ"].windows:
            expected = len(
                warehouse.query("trajectory")
                .during(window.t_start, window.t_end)
                .on_floor(0)
                .distinct("object_id")
            )
            assert window.value == expected

    def test_visit_counts_match_count_by_queries(self, monitored_run):
        _, result = monitored_run
        warehouse = result.warehouse
        for window in result.live.results["pois"].windows:
            counts = (
                warehouse.query("trajectory")
                .during(window.t_start, window.t_end)
                .where("partition_id", "not_in", (None, ""))
                .count_by("partition_id", distinct="object_id")
            )
            expected = tuple(
                sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:3]
            )
            assert window.value == expected

    def test_knn_windows_match_min_distance_scan(self, monitored_run):
        import math

        _, result = monitored_run
        warehouse = result.warehouse
        for window in result.live.results["near"].windows:
            best = {}
            rows = (
                warehouse.query("trajectory")
                .during(window.t_start, window.t_end)
                .on_floor(0)
                .iter()
            )
            for row in rows:
                distance = math.hypot(row["x"] - 8.0, row["y"] - 6.0)
                if row["object_id"] not in best or distance < best[row["object_id"]]:
                    best[row["object_id"]] = distance
            expected = tuple(sorted(best.items(), key=lambda item: (item[1], item[0]))[:3])
            assert window.value == expected

    def test_geofence_windows_match_state_machine_scan(self, monitored_run):
        _, result = monitored_run
        warehouse = result.warehouse
        region = result.config.monitors[2].build().plan().region
        inside_state = {}
        events = []
        rows = warehouse.query("trajectory").order_by("object_id", "t").iter()
        for row in rows:
            if row["floor_id"] != 0:
                continue
            inside = region.matches(row)
            was = inside_state.get(row["object_id"], False)
            inside_state[row["object_id"]] = inside
            if inside != was:
                events.append((row["t"], row["object_id"], "enter" if inside else "exit"))
        for window in result.live.results["fence"].windows:
            expected = tuple(
                sorted(e for e in events if window.t_start <= e[0] <= window.t_end)
            )
            assert window.value == expected


class TestWorkerEquivalence:
    def test_workers_do_not_change_emission(self):
        config = small_config(monitors=MONITOR_SECTION)
        serial = VitaPipeline(config).run_streaming(shards=3, workers=1)
        parallel = VitaPipeline(config).run_streaming(shards=3, workers=2)
        for name, serial_result in serial.live.results.items():
            parallel_result = parallel.live.results[name]
            assert parallel_result.values() == serial_result.values(), name
            assert [
                (a.t, a.object_id, a.kind) for a in parallel_result.alerts
            ] == [(a.t, a.object_id, a.kind) for a in serial_result.alerts], name


class TestExplicitMonitorsArgument:
    def test_monitors_passed_to_run_streaming_combine_with_config(self):
        config = small_config(monitors=MONITOR_SECTION[:1])
        extra = Monitor.visit_counts(top_k=2).window(30).named("extra")
        result = VitaPipeline(config).run_streaming(monitors=[extra])
        assert set(result.live.results) == {"occ", "extra"}
        assert result.report.monitors["extra"]["windows"] > 0
