"""Unit tests for the standing-monitor grammar."""

import pytest

from repro.core.config import MonitorConfig, config_from_dict
from repro.core.errors import ConfigurationError, MonitorError
from repro.geometry.polygon import BoundingBox
from repro.live.monitors import Monitor, parse_condition


class TestGrammar:
    def test_builders_are_immutable(self):
        base = Monitor.density(floor=1)
        windowed = base.window(30.0)
        assert base.plan().window == 60.0
        assert windowed.plan().window == 30.0
        assert base is not windowed

    def test_slide_defaults_to_window(self):
        plan = Monitor.density(floor=1).window(45.0).plan()
        assert plan.slide is None
        assert plan.slide_seconds == 45.0
        assert Monitor.density(floor=1).window(45.0).slide(5.0).plan().slide_seconds == 5.0

    def test_density_accepts_bounding_box_and_tuple_regions(self):
        from_box = Monitor.density(BoundingBox(0, 0, 5, 5), floor=1).plan()
        from_tuple = Monitor.density((0, 0, 5, 5), floor=1).plan()
        assert from_box.region == from_tuple.region

    def test_density_needs_a_target(self):
        with pytest.raises(MonitorError):
            Monitor.density()

    def test_region_needs_a_floor(self):
        with pytest.raises(MonitorError):
            Monitor.density((0, 0, 5, 5))

    def test_flow_needs_two_distinct_partitions(self):
        with pytest.raises(MonitorError):
            Monitor.flow("hall", "hall")

    def test_knn_point_forms(self):
        from repro.geometry.point import Point

        assert Monitor.knn(Point(1.0, 2.0), k=2, floor=0).plan().x == 1.0
        assert Monitor.knn((1.0, 2.0), k=2, floor=0).plan().y == 2.0
        with pytest.raises(MonitorError):
            Monitor.knn((1.0, 2.0), k=0, floor=0)

    def test_geofence_rejects_unknown_alert_kinds(self):
        with pytest.raises(MonitorError):
            Monitor.geofence((0, 0, 1, 1), floor=0, on=("teleport",))

    def test_invalid_window_and_slide(self):
        with pytest.raises(MonitorError):
            Monitor.density(floor=0).window(0.0)
        with pytest.raises(MonitorError):
            Monitor.density(floor=0).slide(-1.0)

    def test_named_sets_subscription_name(self):
        assert Monitor.visit_counts().named("pois").plan().name == "pois"
        with pytest.raises(MonitorError):
            Monitor.visit_counts().named("")

    def test_default_name_is_descriptive(self):
        assert Monitor.flow("a", "b").plan().describe() == "flow[a->b]"


class TestWhere:
    def test_keyword_triple_and_string_spellings_agree(self):
        by_kw = Monitor.density(floor=0).where(object_id="o1").plan().filters
        by_triple = Monitor.density(floor=0).where("object_id", "==", "o1").plan().filters
        by_text = Monitor.density(floor=0).where("object_id=o1").plan().filters
        assert by_kw == by_triple == by_text

    def test_values_are_coerced_like_the_query_builder(self):
        plan = Monitor.density(floor=0).where("t", ">=", 10).plan()
        assert plan.filters[0].value == 10.0
        assert isinstance(plan.filters[0].value, float)

    def test_unknown_column_rejected(self):
        with pytest.raises(MonitorError):
            Monitor.density(floor=0).where(bogus=1)

    def test_unknown_operator_rejected(self):
        with pytest.raises(MonitorError):
            Monitor.density(floor=0).where("t", "~~", 1)

    def test_callable_predicate(self):
        plan = Monitor.density(floor=0).filter(lambda row: row["t"] > 1).plan()
        assert plan.filters[0].op == "python"

    def test_parse_condition_values(self):
        assert parse_condition("rssi>=-60") == ("rssi", ">=", -60)
        assert parse_condition("object_id=o12") == ("object_id", "=", "o12")
        with pytest.raises(MonitorError):
            parse_condition("no operator here")


class TestMonitorConfig:
    def test_build_each_kind(self):
        configs = [
            MonitorConfig(monitor="density", floor=1),
            MonitorConfig(monitor="flow", from_partition="a", to_partition="b"),
            MonitorConfig(monitor="geofence", floor=0, region=[0, 0, 5, 5]),
            MonitorConfig(monitor="knn", floor=0, x=1.0, y=2.0, k=3),
            MonitorConfig(monitor="visit_counts", top_k=2),
        ]
        kinds = [config.build().kind for config in configs]
        assert kinds == ["density", "flow", "geofence", "knn", "visit_counts"]

    def test_from_and_to_json_aliases(self):
        config = config_from_dict(
            {
                "objects": {"count": 1},
                "monitors": [{"monitor": "flow", "from": "a", "to": "b"}],
            }
        )
        plan = config.monitors[0].build().plan()
        assert (plan.from_partition, plan.to_partition) == ("a", "b")

    def test_where_conditions_and_window_thread_through(self):
        config = MonitorConfig(
            monitor="density", floor=1, window=30, slide=10,
            where=["object_id=o1", ["t", ">=", 5]],
        )
        plan = config.build().plan()
        assert plan.window == 30.0 and plan.slide_seconds == 10.0
        assert len(plan.filters) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MonitorConfig(monitor="teleport")

    def test_cross_field_errors_surface_at_load_time(self):
        with pytest.raises(ConfigurationError):
            config_from_dict(
                {"objects": {"count": 1}, "monitors": [{"monitor": "flow", "from": "a"}]}
            )
        with pytest.raises(ConfigurationError):
            config_from_dict(
                {"objects": {"count": 1}, "monitors": [{"monitor": "density"}]}
            )

    def test_malformed_where_triple_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            config_from_dict(
                {"objects": {"count": 1},
                 "monitors": [{"monitor": "density", "floor": 0,
                               "where": [["floor_id", 0]]}]}
            )

    def test_unknown_monitor_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict(
                {"objects": {"count": 1},
                 "monitors": [{"monitor": "visit_counts", "bogus": 1}]}
            )
