"""Unit tests for the device deployment models (Section 3.2)."""

import random
import statistics

import pytest

from repro.core.errors import DeploymentError
from repro.devices.deployment import (
    CheckPointDeployment,
    CoverageDeployment,
    ManualDeployment,
    MountingSite,
    deployment_model_by_name,
)
from repro.geometry.point import Point


class TestCoverageModel:
    def test_requested_count_is_returned(self, office):
        sites = CoverageDeployment().propose(office, 0, 6)
        assert len(sites) == 6

    def test_sites_are_inside_partitions(self, office):
        for site in CoverageDeployment().propose(office, 0, 8):
            partition = office.floor(0).partition_at(site.point)
            assert partition is not None

    def test_sites_are_close_to_walls(self, office):
        """Coverage model: devices should be close to the wall (power supply)."""
        walls = office.floor(0).wall_segments()
        for site in CoverageDeployment(wall_offset=0.6).propose(office, 0, 6):
            distance = min(w.distance_to_point(site.point) for w in walls)
            assert distance <= 2.0

    def test_sites_are_mutually_separated(self, office):
        """Coverage model: devices separate from each other for maximum coverage."""
        sites = CoverageDeployment().propose(office, 0, 6)
        pairwise = [
            sites[i].point.distance_to(sites[j].point)
            for i in range(len(sites))
            for j in range(i + 1, len(sites))
        ]
        assert min(pairwise) > 5.0

    def test_zero_count_returns_empty(self, office):
        assert CoverageDeployment().propose(office, 0, 0) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeploymentError):
            CoverageDeployment(wall_offset=-1)
        with pytest.raises(DeploymentError):
            CoverageDeployment(sample_spacing=0)


class TestCheckPointModel:
    def test_sites_are_near_doors(self, office):
        """Check-point model: devices at entrances to rooms."""
        doors = list(office.floor(0).doors.values())
        sites = CheckPointDeployment().propose(office, 0, 6)
        for site in sites:
            nearest_door = min(d.position.distance_to(site.point) for d in doors)
            assert nearest_door <= 1.5

    def test_checkpoint_closer_to_doors_than_coverage(self, office):
        doors = list(office.floor(0).doors.values())

        def mean_door_distance(sites):
            return statistics.fmean(
                min(d.position.distance_to(s.point) for d in doors) for s in sites
            )

        checkpoint_sites = CheckPointDeployment().propose(office, 0, 6)
        coverage_sites = CoverageDeployment().propose(office, 0, 6)
        assert mean_door_distance(checkpoint_sites) < mean_door_distance(coverage_sites)

    def test_hotspots_used_when_more_devices_than_doors(self, mall):
        door_count = len(mall.floor(0).doors)
        sites = CheckPointDeployment(hotspot_min_area=30.0).propose(mall, 0, door_count + 2)
        assert len(sites) == door_count + 2
        assert any(site.reason == "hotspot in large room" for site in sites)

    def test_requested_count_subset_is_spread(self, mall):
        sites = CheckPointDeployment().propose(mall, 0, 4)
        assert len(sites) == 4


class TestManualDeployment:
    def test_explicit_sites_returned(self, office):
        manual = ManualDeployment(
            [MountingSite(floor_id=0, point=Point(5, 5)), MountingSite(floor_id=0, point=Point(15, 5))]
        )
        sites = manual.propose(office, 0, 2)
        assert [s.point for s in sites] == [Point(5, 5), Point(15, 5)]

    def test_too_few_manual_sites_raises(self, office):
        manual = ManualDeployment([MountingSite(floor_id=0, point=Point(5, 5))])
        with pytest.raises(DeploymentError):
            manual.propose(office, 0, 3)

    def test_empty_manual_rejected(self):
        with pytest.raises(DeploymentError):
            ManualDeployment([])


class TestFactory:
    def test_by_name(self):
        assert isinstance(deployment_model_by_name("coverage"), CoverageDeployment)
        assert isinstance(deployment_model_by_name("check-point"), CheckPointDeployment)
        assert isinstance(deployment_model_by_name("checkpoint"), CheckPointDeployment)

    def test_unknown_name_rejected(self):
        with pytest.raises(DeploymentError):
            deployment_model_by_name("satellite")
