"""Unit tests for the positioning-device classes."""

import pytest

from repro.core.types import DeviceType, IndoorLocation
from repro.devices.base import PositioningDevice
from repro.devices.bluetooth import BluetoothBeacon
from repro.devices.rfid import RFIDReader
from repro.devices.wifi import WiFiAccessPoint
from repro.geometry.point import Point


def _location(floor=0, x=5.0, y=5.0):
    return IndoorLocation(building_id="b", floor_id=floor, x=x, y=y)


class TestBaseValidation:
    def test_requires_coordinate_location(self):
        symbolic = IndoorLocation(building_id="b", floor_id=0, partition_id="p")
        with pytest.raises(ValueError):
            PositioningDevice("d", DeviceType.WIFI, symbolic, 10.0, 1.0)

    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            PositioningDevice("d", DeviceType.WIFI, _location(), 0.0, 1.0)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PositioningDevice("d", DeviceType.WIFI, _location(), 10.0, 0.0)


class TestRangeChecks:
    def test_in_range_same_floor(self):
        device = WiFiAccessPoint("ap", _location(), detection_range=10.0)
        assert device.in_range(0, Point(10, 5))
        assert not device.in_range(0, Point(16, 5))

    def test_other_floor_never_in_range(self):
        device = WiFiAccessPoint("ap", _location(floor=1))
        assert not device.in_range(0, Point(5, 5))

    def test_distance_to(self):
        device = WiFiAccessPoint("ap", _location(x=0.0, y=0.0))
        assert device.distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_position_property(self):
        device = RFIDReader("r", _location(x=2.0, y=7.0))
        assert device.position == Point(2.0, 7.0)
        assert device.floor_id == 0


class TestTechnologyDefaults:
    def test_wifi_defaults(self):
        device = WiFiAccessPoint("ap", _location())
        assert device.device_type is DeviceType.WIFI
        assert device.detection_range == pytest.approx(25.0)

    def test_bluetooth_defaults_shorter_range_than_wifi(self):
        wifi = WiFiAccessPoint("ap", _location())
        ble = BluetoothBeacon("b", _location())
        assert ble.device_type is DeviceType.BLUETOOTH
        assert ble.detection_range < wifi.detection_range

    def test_rfid_defaults_shortest_range(self):
        rfid = RFIDReader("r", _location())
        ble = BluetoothBeacon("b", _location())
        assert rfid.device_type is DeviceType.RFID
        assert rfid.detection_range < ble.detection_range

    def test_overridable_type_dependent_properties(self):
        """Section 2: e.g. the detection range of RFID readers is configurable."""
        rfid = RFIDReader("r", _location(), detection_range=8.0, detection_interval=0.1)
        assert rfid.detection_range == 8.0
        assert rfid.detection_interval == 0.1

    def test_as_record(self):
        device = BluetoothBeacon("ble_1", _location())
        record = device.as_record()
        assert record.device_id == "ble_1"
        assert record.device_type is DeviceType.BLUETOOTH
        assert record.location.has_point
