"""Unit tests for the Positioning Device Controller."""

import pytest

from repro.core.errors import DeploymentError
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment, CoverageDeployment


class TestDeployment:
    def test_deploy_on_all_floors_by_default(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        devices = controller.deploy(
            DeviceDeploymentRequest(DeviceType.WIFI, 4, CoverageDeployment())
        )
        assert len(devices) == 8  # 4 per floor on 2 floors
        assert {d.floor_id for d in devices} == {0, 1}

    def test_deploy_on_selected_floors(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        devices = controller.deploy(
            DeviceDeploymentRequest(DeviceType.RFID, 3, CheckPointDeployment(), floor_ids=[1])
        )
        assert len(devices) == 3
        assert all(d.floor_id == 1 for d in devices)

    def test_device_ids_are_unique_and_prefixed(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        controller.deploy(DeviceDeploymentRequest(DeviceType.WIFI, 3, CoverageDeployment()))
        controller.deploy(DeviceDeploymentRequest(DeviceType.BLUETOOTH, 3, CoverageDeployment()))
        ids = list(controller.devices)
        assert len(ids) == len(set(ids)) == 12
        assert any(i.startswith("ap_") for i in ids)
        assert any(i.startswith("ble_") for i in ids)

    def test_type_specific_overrides_applied(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        devices = controller.deploy(
            DeviceDeploymentRequest(
                DeviceType.RFID, 2, CheckPointDeployment(), overrides={"detection_range": 5.5}
            )
        )
        assert all(d.detection_range == 5.5 for d in devices)

    def test_invalid_count_rejected(self):
        with pytest.raises(DeploymentError):
            DeviceDeploymentRequest(DeviceType.WIFI, 0, CoverageDeployment())

    def test_devices_know_their_partition(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        devices = controller.deploy(
            DeviceDeploymentRequest(DeviceType.WIFI, 4, CoverageDeployment())
        )
        assert all(d.location.partition_id is not None for d in devices)


class TestManagement:
    def test_add_device_at_explicit_coordinate(self, fresh_office):
        controller = PositioningDeviceController(fresh_office)
        device = controller.add_device_at(DeviceType.BLUETOOTH, 0, 5.0, 5.0, detection_range=9.0)
        assert device.position.as_tuple() == (5.0, 5.0)
        assert device.detection_range == 9.0
        assert device.device_id in controller.devices

    def test_remove_device(self, fresh_office):
        controller = PositioningDeviceController(fresh_office)
        device = controller.add_device_at(DeviceType.WIFI, 0, 5.0, 5.0)
        controller.remove_device(device.device_id)
        assert len(controller) == 0
        with pytest.raises(DeploymentError):
            controller.remove_device(device.device_id)

    def test_clear(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        controller.deploy(DeviceDeploymentRequest(DeviceType.WIFI, 2, CoverageDeployment()))
        controller.clear()
        assert len(controller) == 0

    def test_queries_by_type_and_floor(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        controller.deploy(DeviceDeploymentRequest(DeviceType.WIFI, 2, CoverageDeployment()))
        controller.deploy(DeviceDeploymentRequest(DeviceType.RFID, 3, CheckPointDeployment()))
        assert len(controller.devices_of_type(DeviceType.WIFI)) == 4
        assert len(controller.devices_of_type(DeviceType.RFID)) == 6
        assert len(controller.devices_on_floor(0)) == 5

    def test_device_records_export(self, fresh_office):
        controller = PositioningDeviceController(fresh_office, seed=1)
        controller.deploy(DeviceDeploymentRequest(DeviceType.WIFI, 2, CoverageDeployment()))
        records = controller.device_records()
        assert len(records) == 4
        assert all(r.device_type is DeviceType.WIFI for r in records)
