"""Integration tests for the telemetry surface.

The :class:`~repro.obs.Telemetry` bundle, its ``telemetry:`` configuration
section, the pipeline/live wiring (spans, counters, gauges, dropped-alert
accounting) and the CLI flags (``--metrics-json`` / ``--trace-json`` /
``query --profile``).  The determinism contracts live in
``tests/properties/test_property_telemetry.py``.
"""

import json

import pytest

from repro.core.config import (
    ConfigurationError,
    DeviceConfig,
    EnvironmentConfig,
    MonitorConfig,
    ObjectConfig,
    TelemetryConfig,
    VitaConfig,
    config_from_dict,
)
from repro.core.pipeline import VitaPipeline
from repro.core.toolkit import Vita
from repro.obs import Telemetry


def _config(**overrides):
    defaults = dict(
        environment=EnvironmentConfig(building="clinic", floors=1),
        devices=[DeviceConfig(count_per_floor=4)],
        objects=ObjectConfig(
            count=5, duration=40.0, time_step=0.5, min_lifespan=20.0, max_lifespan=40.0
        ),
        seed=11,
        shards=2,
    )
    defaults.update(overrides)
    return VitaConfig(**defaults)


class TestTelemetryBundle:
    def test_disabled_is_the_default_everywhere(self):
        assert Telemetry.disabled().snapshot() == {"enabled": False}
        assert Telemetry.from_config(None).enabled is False
        assert Telemetry.from_config(TelemetryConfig()).enabled is False
        assert VitaConfig().telemetry.enabled is False

    def test_from_config_honours_trace_settings(self):
        telemetry = Telemetry.from_config(
            TelemetryConfig(enabled=True, trace=False), id_prefix="p:"
        )
        assert telemetry.enabled and telemetry.metrics.enabled
        assert telemetry.tracer.enabled is False
        capped = Telemetry.from_config(TelemetryConfig(enabled=True, trace_capacity=7))
        assert capped.tracer.capacity == 7

    def test_write_json_files(self, tmp_path):
        telemetry = Telemetry()
        telemetry.metrics.counter("n").inc(3)
        with telemetry.tracer.span("s"):
            pass
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        telemetry.write_metrics_json(metrics_path)
        telemetry.write_trace_json(trace_path)
        assert json.loads(metrics_path.read_text())["counters"] == {"n": 3}
        assert len(json.loads(trace_path.read_text())["spans"]) == 1


class TestTelemetryConfig:
    def test_parses_from_dict(self):
        config = config_from_dict(
            {"telemetry": {"enabled": True, "trace": False, "trace_capacity": 128,
                           "metrics_json": "m.json", "trace_json": "t.json"}}
        )
        telemetry = config.telemetry
        assert telemetry.enabled is True
        assert telemetry.trace is False
        assert telemetry.trace_capacity == 128
        assert telemetry.metrics_json == "m.json"
        assert telemetry.trace_json == "t.json"

    def test_rejects_unknown_keys_and_bad_capacity(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            config_from_dict({"telemetry": {"enable": True}})
        with pytest.raises(ConfigurationError, match="trace_capacity"):
            TelemetryConfig(trace_capacity=0)


class TestPipelineTelemetry:
    def test_streaming_report_carries_the_snapshot(self):
        config = _config(telemetry=TelemetryConfig(enabled=True))
        result = VitaPipeline(config).run_streaming(workers=1)
        telemetry = result.report.telemetry
        assert telemetry["enabled"] is True
        counters = telemetry["metrics"]["counters"]
        assert counters["generated.shards"] == 2
        assert counters["generated.records.trajectory"] > 0
        assert counters["storage.flushes"] > 0
        assert telemetry["trace"]["spans"] > 0
        gauges = telemetry["metrics"]["gauges"]
        assert gauges["pipeline.records_per_second"] > 0

    def test_disabled_telemetry_reports_disabled(self):
        result = VitaPipeline(_config()).run_streaming(workers=1)
        assert result.report.telemetry == {"enabled": False}

    def test_batch_run_carries_the_snapshot_too(self):
        config = _config(telemetry=TelemetryConfig(enabled=True))
        result = VitaPipeline(config).run()
        assert result.telemetry["enabled"] is True
        assert result.telemetry["metrics"]["counters"]["generated.objects"] == 5

    def test_config_paths_write_the_json_files(self, tmp_path):
        config = _config(
            telemetry=TelemetryConfig(
                enabled=True,
                metrics_json=str(tmp_path / "m.json"),
                trace_json=str(tmp_path / "t.json"),
            )
        )
        VitaPipeline(config).run_streaming(workers=1)
        metrics = json.loads((tmp_path / "m.json").read_text())
        trace = json.loads((tmp_path / "t.json").read_text())
        assert metrics["counters"]["generated.shards"] == 2
        span_names = {span["name"] for span in trace["spans"]}
        assert {"pipeline.run_streaming", "shard", "phase.rssi", "finalize"} <= span_names

    def test_worker_spans_are_adopted_under_the_root(self, tmp_path):
        config = _config(
            telemetry=TelemetryConfig(enabled=True, trace_json=str(tmp_path / "t.json"))
        )
        VitaPipeline(config).run_streaming(workers=2)
        spans = json.loads((tmp_path / "t.json").read_text())["spans"]
        by_id = {span["span_id"]: span for span in spans}
        shard_spans = [span for span in spans if span["name"] == "shard"]
        assert len(shard_spans) == 2
        for span in shard_spans:
            assert span["span_id"].startswith("s")  # worker prefix survived
            assert by_id[span["parent_id"]]["name"] == "pipeline.run_streaming"

    def test_vita_facade_exposes_the_last_snapshot(self):
        with Vita(seed=11) as vita:
            assert vita.telemetry == {"enabled": False}
            vita.generate(_config(telemetry=TelemetryConfig(enabled=True)), workers=1)
            assert vita.telemetry["enabled"] is True


class TestLiveTelemetry:
    def test_monitored_run_records_live_instruments(self):
        config = _config(
            telemetry=TelemetryConfig(enabled=True),
            monitors=[MonitorConfig(name="occ", monitor="density", floor=0, window=20.0)],
        )
        result = VitaPipeline(config).run_streaming(workers=1)
        metrics = result.report.telemetry["metrics"]
        assert metrics["counters"]["live.records_fed"] > 0
        assert "live.records_per_second" in metrics["gauges"]
        assert "live.alert_queue_depth" in metrics["gauges"]
        assert metrics["histograms"]["live.window_finalize_seconds"]["count"] >= 1

    def test_monitor_summaries_surface_dropped_alerts(self):
        config = _config(
            monitors=[MonitorConfig(name="occ", monitor="density", floor=0, window=20.0)],
        )
        result = VitaPipeline(config).run_streaming(workers=1)
        assert result.report.monitors["occ"]["dropped_alerts"] == 0
        assert result.live.results["occ"].to_json()["dropped_alerts"] == 0


class TestQueryProfile:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_profile_reports_stages_rows_and_statements(self, backend, tmp_path):
        from repro.core.config import StorageConfig

        storage = StorageConfig(backend=backend)
        if backend == "sqlite":
            storage.path = str(tmp_path / "wh.sqlite")
        result = VitaPipeline(_config(storage=storage)).run_streaming(workers=1)
        warehouse = result.warehouse

        profile = warehouse.query("trajectory").during(0.0, 20.0).profile()
        stages = profile["stages"]
        assert set(stages) == {
            "compile_seconds", "backend_seconds", "residual_seconds", "total_seconds"
        }
        assert stages["total_seconds"] >= 0.0
        assert profile["result"]["kind"] == "rows"
        assert profile["rows"]["returned"] == profile["result"]["count"]
        # The profiled count must equal the unprofiled execution.
        assert profile["result"]["count"] == (
            warehouse.query("trajectory").during(0.0, 20.0).count()
        )
        if backend == "sqlite":
            assert profile["statements"], "SQLite pushes the scan as one statement"
            assert all("SELECT" in s["sql"] for s in profile["statements"])
        else:
            assert profile["rows"]["scanned"] >= profile["rows"]["returned"]

        aggregate = warehouse.query("trajectory").profile(verb="count")
        assert aggregate["result"] == {
            "kind": "aggregate", "value": warehouse.query("trajectory").count()
        }
        warehouse.close()
