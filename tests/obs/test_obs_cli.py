"""CLI tests for the observability flags.

``--metrics-json`` / ``--trace-json`` on ``generate``, ``query`` and
``monitor``, the ``query --profile`` stage report, the ``telemetry`` summary
block and the surfaced dropped-alert totals.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def config_path(tmp_path):
    payload = {
        "environment": {"building": "clinic", "floors": 1},
        "devices": [{"type": "wifi", "count_per_floor": 4}],
        "objects": {"count": 4, "duration": 40, "time_step": 0.5},
        "monitors": [{"name": "occ", "monitor": "density", "floor": 0, "window": 20}],
        "seed": 3,
    }
    path = tmp_path / "run.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def generated_db(config_path, tmp_path):
    db = tmp_path / "wh.sqlite"
    exit_code = main([
        "generate", "--config", str(config_path),
        "--output", str(tmp_path / "out"), "--db", str(db),
    ])
    assert exit_code == 0
    return db


class TestGenerateTelemetryFlags:
    def test_flags_enable_telemetry_and_write_files(self, config_path, tmp_path):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        exit_code = main([
            "generate", "--config", str(config_path),
            "--output", str(tmp_path / "out"),
            "--metrics-json", str(metrics_path),
            "--trace-json", str(trace_path),
        ])
        assert exit_code == 0
        summary = json.loads((tmp_path / "out" / "summary.json").read_text())
        assert summary["telemetry"]["enabled"] is True
        counters = summary["telemetry"]["metrics"]["counters"]
        assert counters["generated.records.trajectory"] == (
            summary["records"]["trajectory_records"]
        )
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"] == counters
        trace = json.loads(trace_path.read_text())
        names = {span["name"] for span in trace["spans"]}
        assert "pipeline.run_streaming" in names and "shard" in names

    def test_without_flags_the_summary_has_no_telemetry_block(
        self, config_path, tmp_path
    ):
        exit_code = main([
            "generate", "--config", str(config_path), "--output", str(tmp_path / "out"),
        ])
        assert exit_code == 0
        summary = json.loads((tmp_path / "out" / "summary.json").read_text())
        assert "telemetry" not in summary


class TestQueryProfileFlag:
    def test_profile_reports_stages_rows_and_statements(
        self, generated_db, tmp_path, capsys
    ):
        exit_code = main([
            "query", "--db", str(generated_db),
            "--dataset", "trajectory", "--during", "0", "20", "--count", "--profile",
            "--metrics-json", str(tmp_path / "qm.json"),
            "--trace-json", str(tmp_path / "qt.json"),
        ])
        assert exit_code == 0
        output = json.loads(capsys.readouterr().out)
        profile = output["query"]["profile"]
        assert set(profile["stages"]) == {
            "compile_seconds", "backend_seconds", "residual_seconds", "total_seconds"
        }
        assert profile["result"]["kind"] == "aggregate"
        assert profile["statements"], "the SQLite backend pushed a statement"
        metrics = json.loads((tmp_path / "qm.json").read_text())
        assert metrics["histograms"]["cli.query.seconds"]["count"] == 1
        trace = json.loads((tmp_path / "qt.json").read_text())
        assert [span["name"] for span in trace["spans"]] == ["query.builder"]


class TestMonitorTelemetry:
    def test_replay_surfaces_dropped_alerts_and_metrics(
        self, config_path, generated_db, tmp_path, capsys
    ):
        metrics_path = tmp_path / "mm.json"
        exit_code = main([
            "monitor", "--config", str(config_path), "--replay",
            "--db", str(generated_db), "--no-alerts",
            "--metrics-json", str(metrics_path),
        ])
        assert exit_code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["dropped_alerts"] == 0
        assert summary["monitors"]["occ"]["dropped_alerts"] == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["live.records_fed"] > 0

    def test_follow_includes_telemetry_block(self, config_path, tmp_path, capsys):
        exit_code = main([
            "monitor", "--config", str(config_path), "--follow", "--no-alerts",
            "--metrics-json", str(tmp_path / "fm.json"),
        ])
        assert exit_code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["telemetry"]["enabled"] is True
        assert summary["dropped_alerts"] == 0
        assert summary["telemetry"]["metrics"]["counters"]["live.records_fed"] > 0
        assert (tmp_path / "fm.json").exists()
