"""Unit tests for the metrics registry (repro.obs.metrics).

The three contracts the observability layer leans on: instruments behave,
disabled registries are true no-ops, and snapshot/merge is the deterministic
delta-aggregation the streaming pipeline uses at shard boundaries.
"""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_keeps_last_value(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_tracks_count_sum_and_envelope(self):
        histogram = Histogram("h")
        for value in (0.002, 0.004, 0.4):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.406)
        assert histogram.min == pytest.approx(0.002)
        assert histogram.max == pytest.approx(0.4)
        assert histogram.mean == pytest.approx(0.406 / 3)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 0.5))

    def test_quantile_is_clamped_to_observed_envelope(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(0.003)
        # All observations share one bucket; the estimate must not leak
        # outside the observed [min, max].
        assert histogram.quantile(0.5) == pytest.approx(0.003)
        assert histogram.quantile(0.99) == pytest.approx(0.003)

    def test_quantile_orders_and_bounds(self):
        histogram = Histogram("h")
        for value in (0.0002, 0.003, 0.03, 0.3, 3.0):
            histogram.observe(value)
        p10, p50, p99 = (histogram.quantile(q) for q in (0.1, 0.5, 0.99))
        assert p10 <= p50 <= p99
        assert histogram.min <= p10 and p99 <= histogram.max
        assert histogram.quantile(0.0) == pytest.approx(histogram.min)
        assert histogram.quantile(1.0) == pytest.approx(histogram.max)

    def test_quantile_of_empty_histogram_is_none(self):
        assert Histogram("h").quantile(0.5) is None
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_overflow_bucket_counts_values_above_the_ladder(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.counts == [0, 0, 1]


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_disabled_registry_hands_out_the_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("b") is NULL_INSTRUMENT
        assert registry.histogram("c") is NULL_INSTRUMENT
        # Null instruments absorb every recording call without state.
        registry.counter("a").inc(10)
        registry.histogram("c").observe(1.0)
        assert registry.snapshot() == {}
        assert registry.to_json() == {"enabled": False}

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.count", "z.count"]
        assert snapshot["gauges"] == {"depth": 7.0}
        payload = snapshot["histograms"]["lat"]
        assert payload["count"] == 1
        assert payload["bounds"] == list(DEFAULT_BUCKETS)

    def test_to_json_adds_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.01)
        payload = registry.to_json()["histograms"]["lat"]
        assert {"mean", "p50", "p90", "p99"} <= set(payload)


class TestMerge:
    def test_counters_add_and_gauges_take_last(self):
        a = MetricsRegistry()
        a.counter("records").inc(10)
        a.gauge("depth").set(3)
        b = MetricsRegistry()
        b.counter("records").inc(5)
        b.gauge("depth").set(9)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["records"] == 15
        assert merged["gauges"]["depth"] == 9.0

    def test_histograms_merge_pointwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        serial = MetricsRegistry()
        for registry, values in ((a, (0.001, 0.5)), (b, (0.02, 70.0))):
            for value in values:
                registry.histogram("lat").observe(value)
                serial.histogram("lat").observe(value)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"]["lat"] == serial.snapshot()["histograms"]["lat"]

    def test_merge_order_does_not_change_counters_or_histograms(self):
        a = MetricsRegistry()
        a.counter("n").inc(1)
        a.histogram("lat").observe(0.1)
        b = MetricsRegistry()
        b.counter("n").inc(2)
        b.histogram("lat").observe(0.2)
        forward = merge_snapshots([a.snapshot(), b.snapshot()])
        backward = merge_snapshots([b.snapshot(), a.snapshot()])
        assert forward["counters"] == backward["counters"]
        assert forward["histograms"] == backward["histograms"]

    def test_mismatched_bounds_refuse_to_merge(self):
        a = MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat").observe(0.5)
        registry = MetricsRegistry()
        registry.merge(b.snapshot())
        with pytest.raises(ValueError, match="mismatched bucket bounds"):
            registry.merge(a.snapshot())

    def test_merging_into_disabled_registry_is_a_no_op(self):
        source = MetricsRegistry()
        source.counter("n").inc(3)
        disabled = MetricsRegistry(enabled=False)
        disabled.merge(source.snapshot())
        assert disabled.snapshot() == {}
