"""Unit tests for the span tracer (repro.obs.trace).

Covers the span tree shape, the bounded ring buffer, the disabled no-op
path and the cross-process ``adopt`` protocol the streaming pipeline uses
to graft worker spans into the parent's trace.
"""

import json

import pytest

from repro.obs import NULL_SPAN, Tracer


class TestSpanTree:
    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_span_ids_are_sequence_numbers_with_prefix(self):
        tracer = Tracer(id_prefix="s3:")
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert (a.span_id, b.span_id) == ("s3:1", "s3:2")

    def test_durations_are_recorded_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.export()  # finished order: inner first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert 0.0 <= inner["duration"] <= outer["duration"]

    def test_exceptions_finish_the_span_and_tag_the_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.export()
        assert span["attrs"]["error"] == "RuntimeError"
        assert span["duration"] is not None
        assert tracer.current is None  # the stack unwound

    def test_attrs_flow_through(self):
        tracer = Tracer()
        with tracer.span("s", shard=2) as span:
            span.set_attr("records", 10)
        (exported,) = tracer.export()
        assert exported["attrs"] == {"shard": 2, "records": 10}


class TestRingBuffer:
    def test_capacity_bounds_retention_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span["name"] for span in tracer.export()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as span:
            span.set_attr("k", "v")  # absorbed silently
        assert span is NULL_SPAN
        assert tracer.export() == []
        assert tracer.dropped == 0

    def test_disabled_adopt_is_a_no_op(self):
        tracer = Tracer(enabled=False)
        tracer.adopt([{"name": "x", "span_id": "s0:1", "parent_id": None,
                       "t_start": 0.0, "duration": 0.1}])
        assert tracer.export() == []


class TestAdopt:
    def _worker_spans(self):
        worker = Tracer(id_prefix="s0:")
        with worker.span("shard"):
            with worker.span("phase.rssi"):
                pass
        return worker.export()

    def test_top_level_spans_reparent_under_the_given_parent(self):
        parent = Tracer(id_prefix="p:")
        with parent.span("pipeline") as root:
            parent.adopt(self._worker_spans(), parent=root)
        names = {span["name"]: span for span in parent.export()}
        assert names["shard"]["parent_id"] == root.span_id
        # Nested worker spans keep their own in-shard parent links.
        assert names["phase.rssi"]["parent_id"] == names["shard"]["span_id"]

    def test_adoption_rebases_timestamps_onto_the_parent(self):
        parent = Tracer(id_prefix="p:")
        with parent.span("pipeline") as root:
            worker_spans = self._worker_spans()
            parent.adopt(worker_spans, parent=root)
        adopted = {span["name"]: span for span in parent.export()}
        assert adopted["shard"]["t_start"] == pytest.approx(
            root.t_start + worker_spans[1]["t_start"]
        )

    def test_adopt_defaults_to_the_current_span(self):
        parent = Tracer()
        with parent.span("pipeline") as root:
            parent.adopt(self._worker_spans())
        shard = next(s for s in parent.export() if s["name"] == "shard")
        assert shard["parent_id"] == root.span_id


class TestExport:
    def test_to_json_and_dump_round_trip(self, tmp_path):
        tracer = Tracer(capacity=8)
        with tracer.span("only"):
            pass
        path = tmp_path / "trace.json"
        tracer.dump(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["enabled"] is True
        assert payload["capacity"] == 8
        assert [span["name"] for span in payload["spans"]] == ["only"]
