"""Unit tests for raw RSSI measurement generation (Section 3.2)."""

import statistics

import pytest

from repro.building.model import Building, Partition
from repro.core.errors import ConfigurationError
from repro.core.types import IndoorLocation
from repro.devices.wifi import WiFiAccessPoint
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel


@pytest.fixture()
def open_hall_building():
    """A single 30x20 open hall with an internal wall stub in the middle.

    The wall separates the hall into a left and a right half only between
    y=0 and y=14, leaving a gap at the top, so the hall remains one partition
    while giving the path loss model something to block sight lines.
    """
    building = Building("hall")
    floor = building.new_floor(0)
    floor.add_partition(Partition("hall", 0, Polygon.rectangle(0, 0, 30, 20)))
    return building


def _device(device_id, x, y, floor=0, **kwargs):
    return WiFiAccessPoint(
        device_id, IndoorLocation("hall", floor, x=x, y=y), **kwargs
    )


class TestMeasurePrimitive:
    def test_rssi_decreases_with_distance(self, open_hall_building):
        device = _device("ap", 1.0, 10.0)
        generator = RSSIGenerator(
            open_hall_building, [device],
            RSSIGenerationConfig(
                fluctuation_noise=FluctuationNoiseModel(0.0),
                detection_probability=1.0,
                seed=1,
            ),
        )
        near = generator.measure(device, 0, Point(3.0, 10.0))
        far = generator.measure(device, 0, Point(20.0, 10.0))
        assert near is not None and far is not None
        assert near > far

    def test_out_of_range_returns_none(self, open_hall_building):
        device = _device("ap", 1.0, 10.0, detection_range=5.0)
        generator = RSSIGenerator(
            open_hall_building, [device], RSSIGenerationConfig(seed=1)
        )
        assert generator.measure(device, 0, Point(20.0, 10.0)) is None

    def test_wrong_floor_returns_none(self, open_hall_building):
        device = _device("ap", 1.0, 10.0)
        generator = RSSIGenerator(open_hall_building, [device], RSSIGenerationConfig(seed=1))
        assert generator.measure(device, 1, Point(2.0, 10.0)) is None

    def test_packet_loss_drops_measurements(self, open_hall_building):
        device = _device("ap", 1.0, 10.0)
        generator = RSSIGenerator(
            open_hall_building, [device],
            RSSIGenerationConfig(detection_probability=0.5, seed=2),
        )
        outcomes = [generator.measure(device, 0, Point(3.0, 10.0)) for _ in range(300)]
        missing = sum(1 for value in outcomes if value is None)
        assert 100 <= missing <= 200

    def test_fluctuation_noise_spreads_measurements(self, open_hall_building):
        device = _device("ap", 1.0, 10.0)
        generator = RSSIGenerator(
            open_hall_building, [device],
            RSSIGenerationConfig(
                fluctuation_noise=FluctuationNoiseModel(3.0),
                detection_probability=1.0,
                seed=3,
            ),
        )
        values = [generator.measure(device, 0, Point(10.0, 10.0)) for _ in range(200)]
        assert statistics.pstdev(values) > 1.0

    def test_figure3_wall_asymmetry(self):
        """Figure 3(a): equal distance, but the wall-blocked device reads lower RSSI."""
        building = Building("fig3")
        floor = building.new_floor(0)
        # Two rooms separated by a wall at x=10 with no door: the shared edge
        # stays a solid wall.
        floor.add_partition(Partition("left", 0, Polygon.rectangle(0, 0, 10, 10)))
        floor.add_partition(Partition("right", 0, Polygon.rectangle(10, 0, 30, 10)))
        d1 = _device("d1", 5.0, 5.0)    # in the left room, behind the wall
        d2 = _device("d2", 15.0, 5.0)   # in the right room, clear line of sight
        generator = RSSIGenerator(
            building, [d1, d2],
            RSSIGenerationConfig(
                fluctuation_noise=FluctuationNoiseModel(0.0),
                detection_probability=1.0,
                seed=4,
            ),
        )
        # Object p stands in the right room, 4 m from both devices... the same
        # transmission distance to d1 and d2.
        p = Point(11.0, 5.0)
        rssi_d1 = generator.measure(d1, 0, p)
        rssi_d2_at_same_distance = generator.measure(d2, 0, Point(d2.position.x + 6.0, 5.0))
        assert d1.distance_to(p) == pytest.approx(6.0)
        assert rssi_d1 is not None and rssi_d2_at_same_distance is not None
        assert rssi_d1 < rssi_d2_at_same_distance


class TestTrajectoryDrivenGeneration:
    def test_records_follow_sampling_period(self, office, office_wifi, office_simulation):
        sparse = RSSIGenerator(
            office, office_wifi, RSSIGenerationConfig(sampling_period=10.0, seed=5)
        ).generate(office_simulation.trajectories)
        dense = RSSIGenerator(
            office, office_wifi, RSSIGenerationConfig(sampling_period=2.0, seed=5)
        ).generate(office_simulation.trajectories)
        assert len(dense) > len(sparse)

    def test_records_are_sorted_and_reference_known_ids(self, office_rssi, office_wifi, office_simulation):
        device_ids = {device.device_id for device in office_wifi}
        object_ids = set(office_simulation.trajectories.object_ids)
        times = [record.t for record in office_rssi]
        assert times == sorted(times)
        assert all(record.device_id in device_ids for record in office_rssi)
        assert all(record.object_id in object_ids for record in office_rssi)

    def test_rssi_values_are_plausible_dbm(self, office_rssi):
        assert all(-120.0 < record.rssi < -10.0 for record in office_rssi)

    def test_empty_trajectories_produce_no_records(self, office, office_wifi):
        from repro.mobility.trajectory import TrajectorySet

        generator = RSSIGenerator(office, office_wifi, RSSIGenerationConfig(seed=6))
        assert generator.generate(TrajectorySet()) == []


class TestFingerprintCollection:
    def test_collect_fingerprint_returns_samples_per_device(self, office, office_wifi):
        generator = RSSIGenerator(office, office_wifi, RSSIGenerationConfig(seed=7))
        observations = generator.collect_fingerprint(0, Point(20.0, 9.0), samples=6)
        assert observations
        for values in observations.values():
            assert 1 <= len(values) <= 6

    def test_collect_fingerprint_only_includes_same_floor_devices(self, office, office_wifi):
        generator = RSSIGenerator(
            office, office_wifi, RSSIGenerationConfig(detection_probability=1.0, seed=8)
        )
        observations = generator.collect_fingerprint(1, Point(20.0, 9.0), samples=3)
        floor1_devices = {d.device_id for d in office_wifi if d.floor_id == 1}
        assert set(observations) <= floor1_devices

    def test_invalid_sample_count_rejected(self, office, office_wifi):
        generator = RSSIGenerator(office, office_wifi, RSSIGenerationConfig(seed=9))
        with pytest.raises(ConfigurationError):
            generator.collect_fingerprint(0, Point(5.0, 5.0), samples=0)


class TestConfigValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RSSIGenerationConfig(sampling_period=0)
        with pytest.raises(ConfigurationError):
            RSSIGenerationConfig(range_factor=0)
        with pytest.raises(ConfigurationError):
            RSSIGenerationConfig(detection_probability=0.0)
