"""Unit tests for the log-distance path loss model (Section 3.2)."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.devices.wifi import WiFiAccessPoint
from repro.core.types import IndoorLocation
from repro.rssi.pathloss import MIN_TRANSMISSION_DISTANCE, PathLossModel, default_model_for


class TestForwardModel:
    def test_calibration_value_at_one_meter(self):
        model = PathLossModel(exponent=2.5, calibration_rssi=-40.0)
        assert model.rssi_at(1.0) == pytest.approx(-40.0)

    def test_formula_matches_paper(self):
        """rssi = -10 * n * log10(dt) + A (noise terms added elsewhere)."""
        model = PathLossModel(exponent=3.0, calibration_rssi=-45.0)
        for distance in (0.5, 1.0, 2.0, 7.5, 20.0):
            expected = -10.0 * 3.0 * math.log10(max(distance, MIN_TRANSMISSION_DISTANCE)) - 45.0
            assert model.rssi_at(distance) == pytest.approx(expected)

    def test_monotonically_decreasing_with_distance(self):
        model = PathLossModel()
        values = [model.rssi_at(d) for d in (1, 2, 5, 10, 20, 50)]
        assert values == sorted(values, reverse=True)

    def test_higher_exponent_attenuates_faster(self):
        gentle = PathLossModel(exponent=2.0)
        harsh = PathLossModel(exponent=4.0)
        assert harsh.rssi_at(10.0) < gentle.rssi_at(10.0)

    def test_tiny_distances_clamped(self):
        model = PathLossModel()
        assert model.rssi_at(0.0) == model.rssi_at(MIN_TRANSMISSION_DISTANCE)
        assert math.isfinite(model.rssi_at(0.0))

    def test_rejects_non_positive_exponent(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(exponent=0.0)


class TestInverseModel:
    def test_inverse_round_trip(self):
        model = PathLossModel(exponent=2.8, calibration_rssi=-42.0)
        for distance in (0.5, 1.0, 3.0, 12.0, 25.0):
            assert model.distance_from_rssi(model.rssi_at(distance)) == pytest.approx(
                max(distance, MIN_TRANSMISSION_DISTANCE), rel=1e-9
            )

    def test_stronger_signal_means_shorter_distance(self):
        model = PathLossModel()
        assert model.distance_from_rssi(-50.0) < model.distance_from_rssi(-70.0)

    def test_with_parameters_copy(self):
        model = PathLossModel(exponent=2.0, calibration_rssi=-40.0)
        adjusted = model.with_parameters(exponent=3.0)
        assert adjusted.exponent == 3.0
        assert adjusted.calibration_rssi == -40.0
        assert model.exponent == 2.0  # original untouched


class TestDeviceDefaults:
    def test_default_model_for_device(self):
        device = WiFiAccessPoint(
            "ap", IndoorLocation("b", 0, x=0.0, y=0.0),
            tx_power_dbm=-38.0, path_loss_exponent=3.1,
        )
        model = default_model_for(device)
        assert model.calibration_rssi == -38.0
        assert model.exponent == 3.1
