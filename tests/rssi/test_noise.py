"""Unit tests for the RSSI noise models (obstacle noise Nob, fluctuation Nf)."""

import random
import statistics

import pytest

from repro.core.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel


class TestObstacleNoise:
    def test_clear_path_has_zero_attenuation(self):
        model = ObstacleNoiseModel()
        assert model.attenuation_from_counts(0, 0) == 0.0

    def test_attenuation_is_negative_and_grows_with_walls(self):
        model = ObstacleNoiseModel(wall_attenuation_db=3.0, non_line_of_sight_extra_db=2.0)
        one_wall = model.attenuation_from_counts(1, 0)
        two_walls = model.attenuation_from_counts(2, 0)
        assert one_wall == pytest.approx(-5.0)
        assert two_walls == pytest.approx(-8.0)
        assert two_walls < one_wall < 0.0

    def test_obstacles_add_their_own_attenuation(self):
        model = ObstacleNoiseModel(
            wall_attenuation_db=3.0, obstacle_attenuation_db=5.0, non_line_of_sight_extra_db=0.0
        )
        assert model.attenuation_from_counts(0, 2) == pytest.approx(-10.0)

    def test_attenuation_is_capped(self):
        model = ObstacleNoiseModel(wall_attenuation_db=10.0, max_attenuation_db=15.0)
        assert model.attenuation_from_counts(10, 0) == pytest.approx(-15.0)

    def test_geometric_attenuation_uses_sightline(self):
        model = ObstacleNoiseModel(wall_attenuation_db=3.0, non_line_of_sight_extra_db=0.0)
        walls = [Segment(Point(5, 0), Point(5, 10))]
        blocked = model.attenuation(Point(0, 5), Point(10, 5), walls=walls)
        clear = model.attenuation(Point(0, 15), Point(10, 15), walls=walls)
        assert blocked == pytest.approx(-3.0)
        assert clear == 0.0

    def test_obstacle_polygons_counted(self):
        model = ObstacleNoiseModel(obstacle_attenuation_db=4.0, non_line_of_sight_extra_db=0.0)
        obstacles = [Polygon.rectangle(4, 4, 6, 6)]
        assert model.attenuation(Point(0, 5), Point(10, 5), obstacles=obstacles) == pytest.approx(-4.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ObstacleNoiseModel(wall_attenuation_db=-1.0)
        with pytest.raises(ConfigurationError):
            ObstacleNoiseModel(max_attenuation_db=-5.0)


class TestFluctuationNoise:
    def test_zero_sigma_is_silent(self):
        model = FluctuationNoiseModel(sigma_db=0.0)
        assert model.sample(random.Random(1)) == 0.0

    def test_samples_follow_configured_sigma(self):
        model = FluctuationNoiseModel(sigma_db=2.0)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(4000)]
        assert statistics.fmean(samples) == pytest.approx(0.0, abs=0.15)
        assert statistics.pstdev(samples) == pytest.approx(2.0, abs=0.15)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            FluctuationNoiseModel(sigma_db=-1.0)
