"""The backend contract: every engine answers every query identically.

The same Data Stream API / repository suite runs parametrized over the
in-memory engine and SQLite (on-disk), plus SQLite-only tests for
persistence across a simulated process restart, WAL journalling, write
batching and index-backed query plans.
"""

import pytest

from repro.core.errors import StorageError
from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.backends import BACKENDS, MemoryBackend, SQLiteBackend, backend_by_name
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI

BACKEND_PARAMS = ("memory", "sqlite-file", "sqlite-memory")


def _loc(x, y, floor=0, partition="hall"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


def _make_backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite-file":
        return SQLiteBackend(path=tmp_path / "warehouse.sqlite")
    return SQLiteBackend()


def _populate(warehouse):
    """Two objects: 'a' walks right along y=5, 'b' stays at (50, 5) on floor 1."""
    warehouse.trajectories.add_many(
        [
            record
            for t in range(11)
            for record in (
                TrajectoryRecord("a", _loc(float(t * 2), 5.0), float(t)),
                TrajectoryRecord("b", _loc(50.0, 5.0, floor=1, partition="room9"), float(t)),
            )
        ]
    )
    warehouse.rssi.add_many(
        [
            RSSIRecord("a", "ap1", -60.0, 1.0),
            RSSIRecord("a", "ap1", -64.0, 2.0),
            RSSIRecord("a", "ap2", -70.0, 2.0),
        ]
    )
    warehouse.proximity.add_many(
        [
            ProximityRecord("a", "rfid1", 0.0, 3.0),
            ProximityRecord("b", "rfid1", 1.0, 2.0),
            ProximityRecord("a", "rfid2", 5.0, 6.0),
        ]
    )
    warehouse.positioning.add_many(
        [
            PositioningRecord("a", _loc(1.0, 5.5), 0.0, PositioningMethod.TRILATERATION),
            PositioningRecord("a", _loc(3.0, 5.5), 5.0, PositioningMethod.FINGERPRINTING),
        ]
    )
    warehouse.probabilistic.add(
        ProbabilisticPositioningRecord(
            "a", ((_loc(1.0, 1.0), 0.3), (_loc(2.0, 2.0, partition="p2"), 0.7)), 1.0
        )
    )
    warehouse.devices.add_many(
        [
            DeviceRecord("ap1", DeviceType.WIFI, _loc(0.0, 0.0), 25.0, 1.0),
            DeviceRecord("rfid1", DeviceType.RFID, _loc(9.0, 9.0, floor=1), 3.0, 0.5),
        ]
    )
    return warehouse


@pytest.fixture(params=BACKEND_PARAMS)
def warehouse(request, tmp_path):
    warehouse = _populate(DataWarehouse(_make_backend(request.param, tmp_path)))
    yield warehouse
    warehouse.close()


@pytest.fixture()
def api(warehouse):
    return DataStreamAPI(warehouse)


class TestDataStreamQueriesOnEveryBackend:
    def test_trajectory_window(self, api):
        assert len(api.trajectory_window(2.0, 4.0)) == 6

    def test_trajectory_window_validates_bounds(self, api):
        with pytest.raises(StorageError):
            api.trajectory_window(5.0, 1.0)

    def test_snapshot(self, api):
        snapshot = api.snapshot(5.4, tolerance=1.0)
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"].point()[0] == pytest.approx(10.0)
        assert api.snapshot(500.0, tolerance=1.0) == {}

    def test_sliding_windows(self, api):
        windows = list(api.sliding_windows(window=5.0))
        assert len(windows) >= 2
        assert sum(len(records) for _, _, records in windows) >= 22
        overlapping = list(api.sliding_windows(window=5.0, step=2.0))
        assert len(overlapping) > len(windows)

    def test_objects_in_region(self, api):
        assert api.objects_in_region(0, BoundingBox(0, 0, 6, 10), 0.0, 10.0) == ["a"]
        assert api.objects_in_region(1, BoundingBox(0, 0, 100, 100), 0.0, 10.0) == ["b"]
        assert api.objects_in_region(0, BoundingBox(200, 200, 300, 300), 0.0, 10.0) == []

    def test_objects_in_partition(self, api):
        assert api.objects_in_partition("hall", 0.0, 10.0) == ["a"]
        assert api.objects_in_partition("room9", 0.0, 10.0) == ["b"]
        assert api.objects_in_partition("hall", 100.0, 200.0) == []

    def test_knn(self, api):
        nearest = api.knn_at(0, Point(0.0, 5.0), t=5.0, k=3)
        assert nearest[0][0] == "a"
        assert len(nearest) == 1  # object b is on another floor
        assert api.knn_at(0, Point(0.0, 5.0), t=5.0, k=0) == []

    def test_aggregations(self, api):
        assert api.partition_visit_counts() == {"hall": 1, "room9": 1}
        assert api.device_detection_counts() == {"rfid1": 2, "rfid2": 1}
        statistics = api.rssi_statistics_by_device()
        assert statistics["ap1"]["count"] == 2.0
        assert statistics["ap1"]["mean"] == pytest.approx(-62.0)
        assert statistics["ap2"]["min"] == -70.0


class TestRepositoriesOnEveryBackend:
    def test_summary(self, warehouse):
        assert warehouse.summary() == {
            "trajectory_records": 22,
            "rssi_records": 3,
            "positioning_records": 2,
            "probabilistic_records": 1,
            "proximity_records": 3,
            "device_records": 2,
        }

    def test_trajectory_queries(self, warehouse):
        assert warehouse.trajectories.object_ids() == ["a", "b"]
        records = warehouse.trajectories.records_of("a")
        assert [record.t for record in records] == [float(t) for t in range(11)]
        assert len(warehouse.trajectories.in_time_range(4.0, 6.0)) == 6
        assert len(warehouse.trajectories.in_partition("room9")) == 11
        rebuilt = warehouse.trajectories.to_trajectory_set()
        assert rebuilt.total_records == 22

    def test_rssi_queries(self, warehouse):
        assert len(warehouse.rssi.records_of_object("a")) == 3
        assert len(warehouse.rssi.records_of_device("ap1")) == 2
        assert len(warehouse.rssi.in_time_range(1.5, 2.5)) == 2

    def test_positioning_queries(self, warehouse):
        assert len(warehouse.positioning.records_of("a")) == 2
        fingerprinting = warehouse.positioning.by_method(PositioningMethod.FINGERPRINTING)
        assert [record.t for record in fingerprinting] == [5.0]

    def test_probabilistic_round_trip(self, warehouse):
        records = warehouse.probabilistic.all_records()
        assert len(records) == 1
        assert records[0].best.partition_id == "p2"
        assert records[0].best_probability == pytest.approx(0.7)
        best = warehouse.probabilistic.best_estimates()[0]
        assert best.method is PositioningMethod.FINGERPRINTING

    def test_proximity_queries(self, warehouse):
        assert len(warehouse.proximity.records_of("a")) == 2
        active = warehouse.proximity.active_at(1.5)
        assert {(r.object_id, r.device_id) for r in active} == {("a", "rfid1"), ("b", "rfid1")}

    def test_device_queries(self, warehouse):
        assert len(warehouse.devices.by_type(DeviceType.WIFI)) == 1
        assert len(warehouse.devices.on_floor(1)) == 1
        assert warehouse.devices.all_records()[0].device_id == "ap1"

    def test_clear(self, warehouse):
        warehouse.clear()
        assert sum(warehouse.summary().values()) == 0


class TestBackendEquivalence:
    def test_backends_agree_on_every_query(self, tmp_path):
        memory = _populate(DataWarehouse(MemoryBackend()))
        sqlite = _populate(DataWarehouse(SQLiteBackend(path=tmp_path / "eq.sqlite")))
        api_a, api_b = DataStreamAPI(memory), DataStreamAPI(sqlite)
        assert api_a.trajectory_window(0.0, 10.0) == api_b.trajectory_window(0.0, 10.0)
        assert api_a.snapshot(5.0) == api_b.snapshot(5.0)
        assert api_a.knn_at(0, Point(0.0, 5.0), 5.0, k=5) == api_b.knn_at(
            0, Point(0.0, 5.0), 5.0, k=5
        )
        assert api_a.partition_visit_counts() == api_b.partition_visit_counts()
        assert api_a.rssi_statistics_by_device() == api_b.rssi_statistics_by_device()
        assert memory.trajectories.to_trajectory_set().all_records() == (
            sqlite.trajectories.to_trajectory_set().all_records()
        )
        sqlite.close()


class TestSQLitePersistence:
    def test_survives_process_restart(self, tmp_path):
        path = tmp_path / "persisted.sqlite"
        _populate(DataWarehouse(SQLiteBackend(path=path))).close()

        reopened = DataWarehouse.open("sqlite", path=str(path))
        api = DataStreamAPI(reopened)
        assert reopened.summary()["trajectory_records"] == 22
        assert api.snapshot(5.0)["a"].point()[0] == pytest.approx(10.0)
        assert len(api.trajectory_window(0.0, 4.0)) == 10
        assert api.knn_at(0, Point(0.0, 5.0), 5.0, k=1) == [("a", pytest.approx(10.0))]
        reopened.close()

    def test_cell_size_persisted_across_reopen(self, tmp_path):
        path = tmp_path / "cells.sqlite"
        backend = SQLiteBackend(path=path, cell_size=2.0)
        backend.insert_rows(
            "trajectory", [TrajectoryRecord("o1", _loc(10.0, 10.0), 0.0).as_record()]
        )
        backend.close()
        # Reopening without naming a cell size must keep the stored buckets
        # consistent — the grid prefilter would otherwise drop matching rows.
        reopened = SQLiteBackend(path=path)
        assert reopened.cell_size == 2.0
        assert reopened.region_object_ids(0, 8.0, 8.0, 12.0, 12.0, 0.0, 5.0) == ["o1"]
        reopened.close()

    def test_explicit_cell_size_change_rebuckets(self, tmp_path):
        path = tmp_path / "rebucket.sqlite"
        backend = SQLiteBackend(path=path, cell_size=2.0)
        backend.insert_rows(
            "trajectory", [TrajectoryRecord("o1", _loc(10.0, 10.0), 0.0).as_record()]
        )
        backend.close()
        resized = SQLiteBackend(path=path, cell_size=5.0)
        assert resized.cell_size == 5.0
        assert resized.region_object_ids(0, 8.0, 8.0, 12.0, 12.0, 0.0, 5.0) == ["o1"]
        resized.close()

    def test_opening_non_database_file_raises_storage_error(self, tmp_path):
        path = tmp_path / "notadb.bin"
        path.write_text("garbage")
        with pytest.raises(StorageError):
            SQLiteBackend(path=path)

    def test_toolkit_facade_durable_without_explicit_close(self, tmp_path):
        from repro.core.toolkit import Vita

        path = tmp_path / "facade.sqlite"
        vita = Vita(seed=4, backend="sqlite", db_path=path)
        vita.use_synthetic_building("office", floors=1)
        vita.deploy_devices("wifi", count_per_floor=3)
        vita.generate_objects(count=2, duration=20)
        stored = vita.summary()["trajectory_records"]
        assert stored > 0
        del vita  # simulate the process exiting without close()/flush()

        reopened = DataWarehouse.open("sqlite", path=str(path))
        assert reopened.summary()["trajectory_records"] == stored
        reopened.close()

    def test_wal_journal_mode_on_file_databases(self, tmp_path):
        backend = SQLiteBackend(path=tmp_path / "wal.sqlite")
        assert backend.describe()["journal_mode"] == "wal"
        backend.close()

    def test_batched_writes_drain_on_read(self, tmp_path):
        backend = SQLiteBackend(path=tmp_path / "batch.sqlite", batch_size=5)
        rows = [
            TrajectoryRecord("o", _loc(float(i), 0.0), float(i)).as_record()
            for i in range(12)
        ]
        backend.insert_rows("trajectory", rows)
        # 10 rows were drained by the batch size; 2 are still buffered but
        # must be visible to reads (read-your-writes).
        assert backend.count("trajectory") == 12
        backend.close()

    def test_spatial_query_uses_grid_index(self, tmp_path):
        backend = SQLiteBackend(path=tmp_path / "plan.sqlite")
        backend.insert_rows(
            "trajectory", [TrajectoryRecord("o", _loc(1.0, 1.0), 0.0).as_record()]
        )
        backend.flush()
        plan = backend._connection.execute(
            "EXPLAIN QUERY PLAN SELECT object_id FROM trajectory "
            "WHERE floor_id = 0 AND cell_x BETWEEN 0 AND 2 AND cell_y BETWEEN 0 AND 2"
        ).fetchall()
        assert any("idx_trajectory_grid" in row[-1] for row in plan)
        backend.close()

    def test_time_range_uses_index(self, tmp_path):
        backend = SQLiteBackend(path=tmp_path / "plan2.sqlite")
        backend.insert_rows(
            "trajectory", [TrajectoryRecord("o", _loc(1.0, 1.0), 0.0).as_record()]
        )
        backend.flush()
        plan = backend._connection.execute(
            "EXPLAIN QUERY PLAN SELECT object_id FROM trajectory WHERE t BETWEEN 0 AND 1"
        ).fetchall()
        assert any("idx_trajectory" in row[-1] for row in plan)
        backend.close()


class TestBackendFactory:
    def test_registry(self):
        assert set(BACKENDS) == {"memory", "sqlite"}

    def test_by_name(self, tmp_path):
        assert isinstance(backend_by_name("memory"), MemoryBackend)
        backend = backend_by_name("SQLite", path=tmp_path / "f.sqlite", batch_size=10)
        assert isinstance(backend, SQLiteBackend)
        assert backend.batch_size == 10
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            backend_by_name("postgres")

    def test_memory_backend_rejects_sqlite_options(self):
        with pytest.raises(StorageError):
            backend_by_name("memory", path="somewhere.sqlite")
        with pytest.raises(StorageError):
            backend_by_name("memory", cell_size=2.0)
        with pytest.raises(StorageError):
            backend_by_name("memory", batch_size=10)

    def test_sqlite_validates_options(self):
        with pytest.raises(StorageError):
            SQLiteBackend(cell_size=0.0)
        with pytest.raises(StorageError):
            SQLiteBackend(batch_size=0)

    def test_raw_table_access_is_memory_only(self, tmp_path):
        sqlite_warehouse = DataWarehouse(SQLiteBackend(path=tmp_path / "t.sqlite"))
        with pytest.raises(StorageError):
            sqlite_warehouse.trajectories.table
        memory_warehouse = DataWarehouse()
        assert memory_warehouse.trajectories.table is not None
        sqlite_warehouse.close()
