"""Export → import round-trips across storage backends.

Proves that flat-file exports (CSV/JSONL) are a faithful interchange format:
a warehouse exported from either backend and imported into either backend
reproduces the exact same contents.
"""

import pytest

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.storage.export import export_warehouse, import_warehouse
from repro.storage.repositories import DataWarehouse


def _loc(x, y, floor=0, partition="hall"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


def _populate(warehouse):
    warehouse.trajectories.add_many(
        [TrajectoryRecord("a", _loc(float(t), 2.0), float(t)) for t in range(5)]
        + [TrajectoryRecord("b", _loc(9.0, 9.0, floor=1, partition="p2"), 0.5)]
    )
    warehouse.rssi.add_many(
        [RSSIRecord("a", "ap1", -61.5, 0.0), RSSIRecord("b", "ap2", -72.0, 1.0)]
    )
    warehouse.positioning.add(
        PositioningRecord("a", _loc(0.5, 2.1), 0.0, PositioningMethod.TRILATERATION)
    )
    warehouse.probabilistic.add(
        ProbabilisticPositioningRecord(
            "a", ((_loc(1.0, 1.0), 0.25), (_loc(4.0, 4.0, partition="p3"), 0.75)), 2.0
        )
    )
    warehouse.proximity.add(ProximityRecord("a", "rfid1", 0.0, 4.0))
    warehouse.devices.add(DeviceRecord("ap1", DeviceType.WIFI, _loc(0.0, 0.0), 25.0, 1.0))
    return warehouse


def _contents(warehouse):
    """Every dataset as sorted record lists, for order-insensitive equality."""
    return {
        "trajectories": sorted(
            warehouse.trajectories.to_trajectory_set().all_records(),
            key=lambda r: (r.object_id, r.t),
        ),
        "rssi": sorted(
            warehouse.rssi.all_records(), key=lambda r: (r.object_id, r.device_id, r.t)
        ),
        "positioning": sorted(
            warehouse.positioning.all_records(), key=lambda r: (r.object_id, r.t)
        ),
        "probabilistic": sorted(
            warehouse.probabilistic.all_records(), key=lambda r: (r.object_id, r.t)
        ),
        "proximity": sorted(
            warehouse.proximity.all_records(),
            key=lambda r: (r.object_id, r.device_id, r.t_start),
        ),
        "devices": sorted(warehouse.devices.all_records(), key=lambda r: r.device_id),
    }


@pytest.mark.parametrize("source_kind", ["memory", "sqlite"])
@pytest.mark.parametrize("target_kind", ["memory", "sqlite"])
def test_export_import_round_trip(tmp_path, source_kind, target_kind):
    source_backend = (
        MemoryBackend()
        if source_kind == "memory"
        else SQLiteBackend(path=tmp_path / "source.sqlite")
    )
    source = _populate(DataWarehouse(source_backend))
    written = export_warehouse(source, tmp_path / "export")
    assert set(written) == {
        "devices", "trajectories", "rssi", "positioning", "probabilistic", "proximity",
    }

    target_backend = (
        MemoryBackend()
        if target_kind == "memory"
        else SQLiteBackend(path=tmp_path / "target.sqlite")
    )
    target = import_warehouse(tmp_path / "export", DataWarehouse(target_backend))

    assert _contents(source) == _contents(target)
    assert source.summary() == target.summary()
    source.close()
    target.close()


def test_import_creates_memory_warehouse_by_default(tmp_path):
    source = _populate(DataWarehouse())
    export_warehouse(source, tmp_path / "export")
    loaded = import_warehouse(tmp_path / "export")
    assert isinstance(loaded.backend, MemoryBackend)
    assert _contents(loaded) == _contents(source)


def test_import_skips_missing_files(tmp_path):
    source = DataWarehouse()
    source.rssi.add(RSSIRecord("a", "ap1", -60.0, 0.0))
    export_warehouse(source, tmp_path / "partial")
    loaded = import_warehouse(tmp_path / "partial")
    assert loaded.summary()["rssi_records"] == 1
    assert loaded.summary()["trajectory_records"] == 0
