"""The composable query builder: grammar, planning, push-down, equivalence.

The heart of the suite is the parametrized memory-vs-SQLite equivalence
matrix: one shared workload, a catalogue of builder queries covering every
chainable verb and terminal, and the assertion that both engines return
*identical* results even though they execute completely different plans
(native SQL versus index-backed Python).  The explain tests then pin down
that the plans really are different — SQL push-down on SQLite, index use on
the memory engine — and that residual steps are reported faithfully.
"""

import pytest

from repro.core.errors import StorageError
from repro.core.types import (
    IndoorLocation,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.geometry.polygon import BoundingBox
from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.storage.plan import Filter, QueryPlan
from repro.storage.query import Query
from repro.storage.repositories import DataWarehouse


def _loc(x, y, floor=0, partition="hall"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


def _populate(warehouse: DataWarehouse) -> None:
    """Three objects on two floors plus RSSI and proximity side datasets."""
    records = []
    for t in range(12):
        records.append(TrajectoryRecord("a", _loc(float(t * 2), 5.0), float(t)))
        records.append(
            TrajectoryRecord("b", _loc(50.0, 5.0, floor=1, partition="room9"), float(t))
        )
        if t % 2 == 0:
            records.append(
                TrajectoryRecord("c", _loc(10.0 + t, 20.0, partition="shop"), float(t))
            )
    warehouse.trajectories.add_many(records)
    warehouse.rssi.add_many(
        [
            RSSIRecord("a", "ap1", -60.0, 1.0),
            RSSIRecord("a", "ap1", -64.0, 2.0),
            RSSIRecord("a", "ap2", -70.0, 2.0),
            RSSIRecord("b", "ap2", -55.0, 3.0),
        ]
    )
    warehouse.proximity.add_many(
        [
            ProximityRecord("a", "rfid1", 0.0, 3.0),
            ProximityRecord("b", "rfid1", 1.0, 2.0),
            ProximityRecord("a", "rfid2", 5.0, 6.0),
        ]
    )
    warehouse.flush()


@pytest.fixture(params=("memory", "sqlite"))
def warehouse(request, tmp_path):
    backend = (
        MemoryBackend()
        if request.param == "memory"
        else SQLiteBackend(path=tmp_path / "query.sqlite")
    )
    warehouse = DataWarehouse(backend)
    _populate(warehouse)
    yield warehouse
    warehouse.close()


@pytest.fixture()
def both_engines(tmp_path):
    """One identically loaded warehouse per engine, for equivalence checks."""
    memory = DataWarehouse(MemoryBackend())
    sqlite = DataWarehouse(SQLiteBackend(path=tmp_path / "equiv.sqlite"))
    _populate(memory)
    _populate(sqlite)
    yield memory, sqlite
    sqlite.close()


#: The equivalence catalogue: every entry must return identical results on
#: the memory and SQLite engines.
EQUIVALENCE_QUERIES = {
    "plain-scan": lambda q: q("trajectory").all(),
    "during": lambda q: q("trajectory").during(2.0, 8.0).all(),
    "during-empty": lambda q: q("trajectory").during(100.0, 200.0).all(),
    "eq-filter": lambda q: q("trajectory").where(object_id="a").all(),
    "eq-none-partition": lambda q: q("trajectory").where(partition_id="room9").all(),
    "inequality": lambda q: q("rssi").where("rssi", "<", -60.0).all(),
    "not-equal": lambda q: q("rssi").where("device_id", "!=", "ap1").all(),
    "in-list": lambda q: q("trajectory").where("object_id", "in", ("a", "c")).all(),
    "not-in-list": lambda q: q("trajectory").where("object_id", "not_in", ("a",)).all(),
    "between": lambda q: q("rssi").where("rssi", "between", (-65.0, -58.0)).all(),
    "combined": lambda q: (
        q("trajectory").during(0.0, 10.0).on_floor(0).where("x", ">=", 4.0).all()
    ),
    "region": lambda q: (
        q("trajectory").on_floor(0).within((0.0, 0.0, 12.0, 21.0)).during(0.0, 6.0).all()
    ),
    "region-boundingbox": lambda q: (
        q("trajectory").within(BoundingBox(0.0, 0.0, 30.0, 30.0)).all()
    ),
    "select": lambda q: q("trajectory").during(1.0, 4.0).select("object_id", "t").all(),
    "order-desc": lambda q: q("trajectory").order_by("-t", "object_id").limit(5).all(),
    "limit-offset": lambda q: q("trajectory").order_by("t").offset(3).limit(4).all(),
    "first": lambda q: q("trajectory").where(object_id="c").first(),
    "first-empty": lambda q: q("trajectory").where(object_id="zzz").first(),
    "first-limit-zero": lambda q: q("trajectory").limit(0).first(),
    "count": lambda q: q("trajectory").count(),
    "count-filtered": lambda q: q("trajectory").during(0.0, 5.0).on_floor(1).count(),
    "count-by": lambda q: q("trajectory").count_by("partition_id"),
    "count-by-filtered": lambda q: q("trajectory").during(0.0, 5.0).count_by("object_id"),
    "count-distinct-by": lambda q: q("trajectory").count_by("partition_id", distinct="object_id"),
    "distinct": lambda q: q("trajectory").distinct("object_id"),
    "distinct-filtered": lambda q: q("trajectory").on_floor(0).distinct("partition_id"),
    "stats": lambda q: q("rssi").stats("rssi"),
    "stats-grouped": lambda q: q("rssi").stats("rssi", by="device_id"),
    "stats-empty": lambda q: q("positioning").stats("x"),
    "python-filter": lambda q: (
        q("trajectory").filter(lambda row: int(row["t"]) % 3 == 0).order_by("t").all()
    ),
    "python-filter-limit": lambda q: (
        q("rssi").filter(lambda row: row["rssi"] < -58.0).limit(2).all()
    ),
    "python-filter-count": lambda q: (
        q("trajectory").filter(lambda row: row["x"] > 10.0).count()
    ),
    "snapshot": lambda q: q("trajectory").snapshot(5.2, tolerance=1.0),
    "knn": lambda q: q("trajectory").on_floor(0).knn(0.0, 5.0, 5.0, k=2),
    "proximity-count-by": lambda q: q("proximity").count_by("device_id"),
    "no-time-dataset": lambda q: q("device").all(),
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_QUERIES))
    def test_memory_and_sqlite_agree(self, both_engines, name):
        memory, sqlite = both_engines
        run = EQUIVALENCE_QUERIES[name]
        assert run(memory.query) == run(sqlite.query)

    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_QUERIES))
    def test_stream_api_shim_agrees_too(self, both_engines, name):
        # The Data Stream API is a shim over the same builder: its entry
        # point must hand back builder queries bound to the same backend.
        memory, sqlite = both_engines
        from repro.storage.stream import DataStreamAPI

        run = EQUIVALENCE_QUERIES[name]
        assert run(DataStreamAPI(memory).query) == run(DataStreamAPI(sqlite).query)


class TestBuilderGrammar:
    def test_builders_are_immutable(self, warehouse):
        base = warehouse.query("trajectory")
        narrowed = base.where(object_id="a")
        assert narrowed is not base
        assert len(base.all()) > len(narrowed.all())

    def test_repeated_during_intersects(self, warehouse):
        query = warehouse.query("trajectory").during(0.0, 8.0).during(5.0, 20.0)
        times = {row["t"] for row in query.all()}
        assert times and all(5.0 <= t <= 8.0 for t in times)

    def test_repeated_within_intersects(self, warehouse):
        query = (
            warehouse.query("trajectory")
            .within((0.0, 0.0, 10.0, 10.0))
            .within((4.0, 0.0, 50.0, 50.0))
        )
        for row in query.all():
            assert 4.0 <= row["x"] <= 10.0

    def test_iter_is_lazy_and_iterable(self, warehouse):
        iterator = warehouse.query("trajectory").during(0.0, 2.0).iter()
        assert next(iterator)["t"] == 0.0
        assert len(list(warehouse.query("rssi"))) == 4

    def test_records_returns_typed_records(self, warehouse):
        records = warehouse.query("trajectory").where(object_id="b").records()
        assert all(isinstance(record, TrajectoryRecord) for record in records)
        assert {record.object_id for record in records} == {"b"}

    def test_records_rejects_projection(self, warehouse):
        with pytest.raises(StorageError, match="select"):
            warehouse.query("trajectory").select("object_id").records()

    def test_unknown_column_rejected_at_build_time(self, warehouse):
        with pytest.raises(StorageError, match="no column"):
            warehouse.query("trajectory").where(speed=3)
        with pytest.raises(StorageError, match="no column"):
            warehouse.query("rssi").select("x")
        with pytest.raises(StorageError, match="no column"):
            warehouse.query("rssi").order_by("floor_id")

    def test_unknown_operator_rejected(self, warehouse):
        with pytest.raises(StorageError, match="operator"):
            warehouse.query("rssi").where("rssi", "~=", -60.0)

    def test_untypable_value_rejected_at_build_time(self, warehouse):
        # Identical failure on both engines, instead of a SQLite ValueError
        # crash versus a silent memory no-match.
        with pytest.raises(StorageError, match="not valid"):
            warehouse.query("trajectory").where(floor_id="abc")
        with pytest.raises(StorageError, match="not valid"):
            warehouse.query("rssi").where("rssi", "between", ("low", "high"))

    def test_numeric_strings_coerced_identically(self, warehouse):
        # '1' coerces to 1.0 at build time, so both engines match t == 1.0.
        rows = warehouse.query("trajectory").where("t", ">", "9").all()
        assert rows and all(row["t"] > 9.0 for row in rows)

    def test_numeric_operand_on_text_column_coerced_identically(self, warehouse):
        # SQLite compares a numeric operand on a TEXT column as text; the
        # builder applies the same affinity so memory agrees.
        warehouse.trajectories.add(
            TrajectoryRecord("x", _loc(1.0, 1.0, partition="101"), 99.0)
        )
        assert warehouse.query("trajectory").where(partition_id=101).count() == 1

    def test_count_distinct_by_ignores_none_values(self, warehouse):
        # COUNT(DISTINCT col) ignores NULLs in SQL; the fallback must too —
        # including emitting an all-NULL group with count 0.
        warehouse.positioning.backend.insert_rows(
            "positioning",
            [
                {"object_id": "a", "t": 1.0, "method": "trilateration",
                 "building_id": "b", "floor_id": 0, "partition_id": "hall",
                 "x": 1.0, "y": 1.0},
                {"object_id": None, "t": 2.0, "method": "trilateration",
                 "building_id": "b", "floor_id": 0, "partition_id": "hall",
                 "x": 1.0, "y": 1.0},
                {"object_id": None, "t": 3.0, "method": "trilateration",
                 "building_id": "b", "floor_id": 0, "partition_id": "lobby",
                 "x": 1.0, "y": 1.0},
            ],
        )
        counts = warehouse.query("positioning").count_by(
            "partition_id", distinct="object_id"
        )
        assert counts == {"hall": 1, "lobby": 0}

    def test_hand_built_incomparable_filter_matches_nothing(self, warehouse):
        # Plans built without the Query layer skip build-time coercion; both
        # engines must then treat unrepresentable values as matching nothing.
        plan = QueryPlan(
            dataset="trajectory", filters=(Filter("t", ">", "not-a-number"),)
        )
        from repro.storage.query import run_plan

        assert list(run_plan(warehouse.backend, plan)) == []

    def test_during_validates_window(self, warehouse):
        with pytest.raises(StorageError, match="precede"):
            warehouse.query("trajectory").during(5.0, 1.0)
        with pytest.raises(StorageError, match="time column"):
            warehouse.query("device").during(0.0, 1.0)

    def test_within_requires_spatial_dataset(self, warehouse):
        with pytest.raises(StorageError, match="spatial"):
            warehouse.query("rssi").within((0, 0, 1, 1))

    def test_aggregate_rejects_limit_and_select(self, warehouse):
        with pytest.raises(StorageError, match="limit"):
            warehouse.query("trajectory").limit(3).count()
        with pytest.raises(StorageError, match="select"):
            warehouse.query("trajectory").select("object_id").count_by("object_id")

    def test_snapshot_and_knn_are_bare_operators(self, warehouse):
        with pytest.raises(StorageError, match="on_floor"):
            warehouse.query("trajectory").knn(0.0, 0.0, 5.0)
        with pytest.raises(StorageError, match="native operator"):
            warehouse.query("trajectory").during(0.0, 5.0).snapshot(2.0)
        with pytest.raises(StorageError, match="trajectory query"):
            warehouse.query("rssi").snapshot(2.0)

    def test_default_order_is_time_then_insertion(self, warehouse):
        times = [row["t"] for row in warehouse.query("trajectory").all()]
        assert times == sorted(times)


class TestExplain:
    """``explain()`` reports the actual engine strategy without running it."""

    def _engine(self, warehouse):
        return warehouse.backend.name

    def test_time_range_pushdown(self, warehouse):
        report = warehouse.query("trajectory").during(0.0, 5.0).explain()
        assert report["pushdown"] == "full"
        pushed = " ".join(report["pushed"])
        if self._engine(warehouse) == "sqlite":
            assert "BETWEEN" in pushed and "sql:" not in report["residual"]
        else:
            assert "sorted t index" in pushed

    def test_region_strategy_per_engine(self, warehouse):
        report = (
            warehouse.query("trajectory")
            .during(0.0, 5.0)
            .on_floor(0)
            .within((0, 0, 10, 10))
            .explain("distinct", column="object_id")
        )
        pushed = " ".join(report["pushed"])
        if self._engine(warehouse) == "sqlite":
            assert report["pushdown"] == "full"
            assert "grid-bucket" in pushed
        else:
            # Memory answers the box (and the aggregate) in the fallback but
            # still seeks through an index first.
            assert report["pushdown"] == "partial"
            assert "index" in pushed
            assert any("region" in step for step in report["residual"])

    def test_count_by_strategy_per_engine(self, warehouse):
        report = warehouse.query("proximity").explain("count_by", by="device_id")
        assert report["pushdown"] == "full"
        pushed = " ".join(report["pushed"])
        if self._engine(warehouse) == "sqlite":
            assert "GROUP BY device_id" in pushed
        else:
            assert "hash index on device_id" in pushed

    def test_bare_count_is_constant_time_on_memory(self, warehouse):
        if self._engine(warehouse) != "memory":
            pytest.skip("memory-only assertion")
        report = warehouse.query("trajectory").explain("count")
        assert any("O(1)" in line for line in report["pushed"])

    def test_time_window_beats_low_selectivity_equality_on_memory(self, warehouse):
        if warehouse.backend.name != "memory":
            pytest.skip("memory-only access-path assertion")
        # A narrow time window must win over a categorical (floor) equality:
        # bisect into the window, filter the floor residually.
        report = warehouse.query("trajectory").during(2.0, 3.0).on_floor(0).explain()
        assert any("bisect range scan" in line for line in report["pushed"])
        assert any("floor_id" in step for step in report["residual"])
        # A per-object equality is more selective than the window and wins.
        report = (
            warehouse.query("trajectory").during(2.0, 3.0).where(object_id="a").explain()
        )
        assert any("hash index on object_id" in line for line in report["pushed"])

    def test_python_filter_is_residual_everywhere(self, warehouse):
        report = warehouse.query("rssi").filter(lambda row: row["rssi"] < -60).explain()
        assert report["pushdown"] in ("partial", "none")
        assert any("python" in step for step in report["residual"])

    def test_sqlite_reports_the_sql_text(self, warehouse):
        if self._engine(warehouse) != "sqlite":
            pytest.skip("sqlite-only assertion")
        report = (
            warehouse.query("trajectory").where(object_id="a").order_by("t").explain()
        )
        sql_lines = [line for line in report["pushed"] if line.startswith("sql:")]
        assert len(sql_lines) == 1
        assert "SELECT" in sql_lines[0] and "WHERE object_id = ?" in sql_lines[0]

    def test_explain_reads_no_data(self, warehouse):
        # explain() must not flush or scan: pending writes stay pending.
        report = warehouse.query("trajectory").explain("count")
        assert report["dataset"] == "trajectory"
        assert warehouse.query("trajectory").count() == 30


class TestPlanCompilation:
    def test_plan_is_frozen_and_reusable(self, warehouse):
        plan = warehouse.query("trajectory").during(0.0, 5.0).plan()
        assert isinstance(plan, QueryPlan)
        with pytest.raises(Exception):
            plan.dataset = "rssi"

    def test_default_order_not_applied_to_aggregates(self, warehouse):
        plan = warehouse.query("trajectory").plan("count")
        assert plan.order_by == ()
        assert plan.aggregate is not None

    def test_filter_validates_operator(self):
        with pytest.raises(StorageError):
            Filter("x", "LIKE", "%a%")

    def test_python_filter_requires_callable(self):
        with pytest.raises(StorageError):
            Filter("x", "python", "not callable")


class TestWarehouseAndFacadeEntryPoints:
    def test_warehouse_query_binds_backend(self, warehouse):
        query = warehouse.query("trajectory")
        assert isinstance(query, Query)
        assert query.count() == 30

    def test_unknown_dataset_rejected(self, warehouse):
        with pytest.raises(StorageError, match="unknown dataset"):
            warehouse.query("nope")
