"""Unit tests for the Data Stream APIs."""

import pytest

from repro.core.errors import StorageError
from repro.core.types import IndoorLocation, ProximityRecord, RSSIRecord, TrajectoryRecord
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI


def _loc(x, y, floor=0, partition="hall"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


@pytest.fixture()
def warehouse() -> DataWarehouse:
    """Two objects: 'a' walks right along y=5, 'b' stays at (50, 5) on floor 1."""
    warehouse = DataWarehouse()
    for t in range(11):
        warehouse.trajectories.add(
            TrajectoryRecord("a", _loc(float(t * 2), 5.0, partition="hall"), float(t))
        )
        warehouse.trajectories.add(
            TrajectoryRecord("b", _loc(50.0, 5.0, floor=1, partition="room9"), float(t))
        )
    warehouse.rssi.add(RSSIRecord("a", "ap1", -60.0, 1.0))
    warehouse.rssi.add(RSSIRecord("a", "ap1", -64.0, 2.0))
    warehouse.rssi.add(RSSIRecord("a", "ap2", -70.0, 2.0))
    warehouse.proximity.add(ProximityRecord("a", "rfid1", 0.0, 3.0))
    warehouse.proximity.add(ProximityRecord("b", "rfid1", 1.0, 2.0))
    warehouse.proximity.add(ProximityRecord("a", "rfid2", 5.0, 6.0))
    return warehouse


@pytest.fixture()
def api(warehouse) -> DataStreamAPI:
    return DataStreamAPI(warehouse)


class TestTemporalQueries:
    def test_trajectory_window(self, api):
        records = api.trajectory_window(2.0, 4.0)
        assert len(records) == 6  # 3 samples for each of the two objects

    def test_trajectory_window_validates_bounds(self, api):
        with pytest.raises(StorageError):
            api.trajectory_window(5.0, 1.0)

    def test_snapshot_returns_latest_position_per_object(self, api):
        snapshot = api.snapshot(5.4, tolerance=1.0)
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"].point()[0] == pytest.approx(10.0)

    def test_snapshot_outside_data_is_empty(self, api):
        assert api.snapshot(500.0, tolerance=1.0) == {}

    def test_sliding_windows_cover_all_data(self, api):
        windows = list(api.sliding_windows(window=5.0))
        assert len(windows) >= 2
        total = sum(len(records) for _, _, records in windows)
        assert total >= 22

    def test_sliding_windows_validate_length(self, api):
        with pytest.raises(StorageError):
            list(api.sliding_windows(window=0.0))

    def test_sliding_windows_empty_warehouse(self):
        api = DataStreamAPI(DataWarehouse())
        assert list(api.sliding_windows(window=5.0)) == []

    def test_sliding_windows_step_larger_than_window_skips_gaps(self, api):
        # Data spans t in [0, 10]; window 2 with step 4 gives windows at
        # t = 0, 4, 8 covering [0,2], [4,6], [8,10] and skipping the gaps.
        windows = list(api.sliding_windows(window=2.0, step=4.0))
        assert [t for t, _, _ in windows] == [0.0, 4.0, 8.0]
        for t_start, t_end, records in windows:
            assert t_end == t_start + 2.0
            assert all(t_start <= record.t <= t_end for record in records)
        # Each window holds 3 sample times x 2 objects.
        assert [len(records) for _, _, records in windows] == [6, 6, 6]

    def test_sliding_windows_window_longer_than_data_span(self, api):
        windows = list(api.sliding_windows(window=100.0))
        assert len(windows) == 1
        t_start, t_end, records = windows[0]
        assert (t_start, t_end) == (0.0, 100.0)
        assert len(records) == 22  # every sample of both objects

    def test_sliding_windows_single_instant_data(self):
        warehouse = DataWarehouse()
        warehouse.trajectories.add(TrajectoryRecord("solo", _loc(1.0, 1.0), 42.0))
        windows = list(DataStreamAPI(warehouse).sliding_windows(window=5.0))
        assert len(windows) == 1
        assert [record.object_id for record in windows[0][2]] == ["solo"]


class TestSpatialQueries:
    def test_objects_in_region(self, api):
        found = api.objects_in_region(0, BoundingBox(0, 0, 6, 10), 0.0, 10.0)
        assert found == ["a"]

    def test_objects_in_region_respects_floor(self, api):
        found = api.objects_in_region(1, BoundingBox(0, 0, 100, 100), 0.0, 10.0)
        assert found == ["b"]

    def test_objects_in_partition(self, api):
        assert api.objects_in_partition("hall", 0.0, 10.0) == ["a"]
        assert api.objects_in_partition("room9", 0.0, 10.0) == ["b"]
        assert api.objects_in_partition("hall", 100.0, 200.0) == []

    def test_knn_at(self, api):
        nearest = api.knn_at(0, Point(0.0, 5.0), t=5.0, k=3)
        assert nearest[0][0] == "a"
        assert len(nearest) == 1  # object b is on another floor

    def test_knn_zero_k(self, api):
        assert api.knn_at(0, Point(0.0, 5.0), t=5.0, k=0) == []


class TestAggregations:
    def test_partition_visit_counts(self, api):
        counts = api.partition_visit_counts()
        assert counts == {"hall": 1, "room9": 1}

    def test_device_detection_counts(self, api):
        counts = api.device_detection_counts()
        assert counts == {"rfid1": 2, "rfid2": 1}

    def test_rssi_statistics_by_device(self, api):
        statistics = api.rssi_statistics_by_device()
        assert statistics["ap1"]["count"] == 2.0
        assert statistics["ap1"]["mean"] == pytest.approx(-62.0)
        assert statistics["ap2"]["min"] == -70.0


class TestSlidingWindowsAcrossBackends:
    """The sliding-window edge cases must behave identically on both engines."""

    @pytest.fixture(params=("memory", "sqlite"))
    def make_api(self, request, tmp_path):
        def _make(records=()):
            if request.param == "memory":
                warehouse = DataWarehouse()
            else:
                warehouse = DataWarehouse.open(
                    "sqlite", path=str(tmp_path / "stream.sqlite")
                )
            warehouse.trajectories.add_many(records)
            warehouse.flush()
            return DataStreamAPI(warehouse)

        return _make

    @staticmethod
    def _two_object_records():
        records = []
        for t in range(11):
            records.append(TrajectoryRecord("a", _loc(float(t * 2), 5.0), float(t)))
            records.append(
                TrajectoryRecord("b", _loc(50.0, 5.0, floor=1, partition="room9"), float(t))
            )
        return records

    def test_empty_warehouse_yields_no_windows(self, make_api):
        assert list(make_api().sliding_windows(window=5.0)) == []

    def test_window_wider_than_data_span_is_a_single_full_window(self, make_api):
        api = make_api(self._two_object_records())
        windows = list(api.sliding_windows(window=100.0))
        assert len(windows) == 1
        t_start, t_end, records = windows[0]
        assert (t_start, t_end) == (0.0, 100.0)
        assert len(records) == 22

    def test_slide_larger_than_window_skips_the_gaps(self, make_api):
        api = make_api(self._two_object_records())
        windows = list(api.sliding_windows(window=2.0, step=4.0))
        assert [t for t, _, _ in windows] == [0.0, 4.0, 8.0]
        for t_start, t_end, records in windows:
            assert all(t_start <= record.t <= t_end for record in records)
        assert [len(records) for _, _, records in windows] == [6, 6, 6]

    def test_zero_window_rejected_before_any_scan(self, make_api):
        with pytest.raises(StorageError):
            list(make_api(self._two_object_records()).sliding_windows(window=0.0))
