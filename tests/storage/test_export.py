"""Round-trip tests for the CSV/JSON exporters."""

import pytest

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.storage.export import (
    export_devices_csv,
    export_positioning_csv,
    export_probabilistic_jsonl,
    export_proximity_csv,
    export_rssi_csv,
    export_trajectories_csv,
    import_devices_csv,
    import_positioning_csv,
    import_probabilistic_jsonl,
    import_proximity_csv,
    import_rssi_csv,
    import_trajectories_csv,
)


def _loc(x=1.5, y=2.5, floor=0, partition="p1"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


class TestTrajectoryRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            TrajectoryRecord("a", _loc(), 0.0),
            TrajectoryRecord("a", _loc(x=3.25, floor=1), 1.5),
            TrajectoryRecord("b", IndoorLocation("b", 0, partition_id="sym"), 2.0),
        ]
        path = export_trajectories_csv(records, tmp_path / "traj.csv")
        restored = import_trajectories_csv(path)
        assert restored == records

    def test_empty_export(self, tmp_path):
        path = export_trajectories_csv([], tmp_path / "empty.csv")
        assert import_trajectories_csv(path) == []

    def test_nested_directories_created(self, tmp_path):
        path = export_trajectories_csv(
            [TrajectoryRecord("a", _loc(), 0.0)], tmp_path / "deep" / "dir" / "t.csv"
        )
        assert path.exists()


class TestRSSIRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            RSSIRecord("a", "ap1", -61.25, 0.0),
            RSSIRecord("b", "ap2", -75.0, 3.5),
        ]
        path = export_rssi_csv(records, tmp_path / "rssi.csv")
        assert import_rssi_csv(path) == records


class TestPositioningRoundTrip:
    def test_deterministic_round_trip(self, tmp_path):
        records = [
            PositioningRecord("a", _loc(), 5.0, PositioningMethod.TRILATERATION),
            PositioningRecord("b", _loc(x=9.0), 10.0, PositioningMethod.FINGERPRINTING),
        ]
        path = export_positioning_csv(records, tmp_path / "pos.csv")
        assert import_positioning_csv(path) == records

    def test_probabilistic_round_trip(self, tmp_path):
        records = [
            ProbabilisticPositioningRecord(
                "a",
                ((_loc(partition="p1"), 0.25), (_loc(partition="p2", x=8.0), 0.75)),
                4.0,
            )
        ]
        path = export_probabilistic_jsonl(records, tmp_path / "prob.jsonl")
        restored = import_probabilistic_jsonl(path)
        assert len(restored) == 1
        assert restored[0].object_id == "a"
        assert restored[0].best.partition_id == "p2"
        assert restored[0].candidates[0][1] == pytest.approx(0.25)


class TestProximityAndDevices:
    def test_proximity_round_trip(self, tmp_path):
        records = [ProximityRecord("a", "rfid1", 0.0, 12.5)]
        path = export_proximity_csv(records, tmp_path / "prox.csv")
        assert import_proximity_csv(path) == records

    def test_device_round_trip(self, tmp_path):
        records = [
            DeviceRecord("ap1", DeviceType.WIFI, _loc(), 25.0, 1.0),
            DeviceRecord("r1", DeviceType.RFID, _loc(floor=1), 3.0, 0.5),
        ]
        path = export_devices_csv(records, tmp_path / "dev.csv")
        assert import_devices_csv(path) == records


class TestEndToEndExport:
    def test_generated_data_survives_round_trip(self, tmp_path, office_rssi, office_simulation):
        rssi_path = export_rssi_csv(office_rssi, tmp_path / "rssi.csv")
        assert import_rssi_csv(rssi_path) == office_rssi
        records = office_simulation.trajectories.all_records()
        trajectory_path = export_trajectories_csv(records, tmp_path / "traj.csv")
        assert import_trajectories_csv(trajectory_path) == records
