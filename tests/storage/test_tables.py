"""Unit tests for the in-memory indexed table."""

import pytest

from repro.core.errors import StorageError
from repro.storage.tables import Table, TableSchema


@pytest.fixture()
def table() -> Table:
    schema = TableSchema(
        name="events",
        columns=("object_id", "kind", "t"),
        hash_indexes=("object_id",),
        ordered_index="t",
    )
    table = Table(schema)
    table.insert_many(
        [
            {"object_id": "a", "kind": "enter", "t": 1.0},
            {"object_id": "b", "kind": "enter", "t": 2.0},
            {"object_id": "a", "kind": "leave", "t": 5.0},
            {"object_id": "c", "kind": "enter", "t": 3.0},
        ]
    )
    return table


class TestSchemaValidation:
    def test_requires_columns(self):
        with pytest.raises(StorageError):
            TableSchema(name="x", columns=())

    def test_indexes_must_reference_known_columns(self):
        with pytest.raises(StorageError):
            TableSchema(name="x", columns=("a",), hash_indexes=("b",))
        with pytest.raises(StorageError):
            TableSchema(name="x", columns=("a",), ordered_index="t")


class TestInsertAndLookup:
    def test_insert_rejects_missing_columns(self, table):
        with pytest.raises(StorageError):
            table.insert({"object_id": "d"})

    def test_insert_ignores_extra_columns(self, table):
        table.insert({"object_id": "d", "kind": "enter", "t": 9.0, "extra": 1})
        assert "extra" not in table.row(len(table) - 1)

    def test_len_and_iteration(self, table):
        assert len(table) == 4
        assert len(list(table)) == 4

    def test_hash_lookup(self, table):
        rows = table.lookup("object_id", "a")
        assert len(rows) == 2
        assert {row["kind"] for row in rows} == {"enter", "leave"}

    def test_lookup_without_index_falls_back_to_scan(self, table):
        rows = table.lookup("kind", "enter")
        assert len(rows) == 3

    def test_lookup_missing_value(self, table):
        assert table.lookup("object_id", "zzz") == []

    def test_row_accessor_bounds(self, table):
        assert table.row(0)["object_id"] == "a"
        with pytest.raises(StorageError):
            table.row(99)


class TestRangeAndAggregation:
    def test_range_query_inclusive(self, table):
        rows = table.range(2.0, 5.0)
        assert [row["t"] for row in rows] == [2.0, 3.0, 5.0]

    def test_range_query_requires_ordered_index(self):
        schema = TableSchema(name="plain", columns=("a",))
        with pytest.raises(StorageError):
            Table(schema).range(0, 1)

    def test_range_empty_window(self, table):
        assert table.range(100.0, 200.0) == []

    def test_select_predicate(self, table):
        rows = table.select(lambda row: row["t"] > 2.5)
        assert len(rows) == 2

    def test_distinct(self, table):
        assert table.distinct("object_id") == ["a", "b", "c"]
        assert table.distinct("kind") == ["enter", "leave"]

    def test_count_by(self, table):
        assert table.count_by("object_id") == {"a": 2, "b": 1, "c": 1}

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0
        assert table.lookup("object_id", "a") == []
        assert table.range(0.0, 10.0) == []

    def test_ordered_index_stays_consistent_after_interleaved_inserts(self, table):
        table.insert({"object_id": "z", "kind": "enter", "t": 0.5})
        table.insert({"object_id": "z", "kind": "leave", "t": 4.0})
        rows = table.range(0.0, 10.0)
        times = [row["t"] for row in rows]
        assert times == sorted(times)
        assert len(rows) == 6
