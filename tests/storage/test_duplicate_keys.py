"""Both engines reject duplicate natural-key rows instead of storing them.

The bulk-insert paths used to silently accept a second trajectory /
positioning / probabilistic row with the same ``(object_id, t)`` key; both
backends now raise :class:`StorageError` consistently, and a rejected batch
leaves the dataset unchanged.
"""

import pytest

from repro.core.errors import StorageError
from repro.core.types import (
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.storage.repositories import DataWarehouse


def _loc(x=1.0, y=2.0):
    return IndoorLocation("b", 0, partition_id="hall", x=x, y=y)


@pytest.fixture(params=["memory", "sqlite"])
def warehouse(request, tmp_path):
    if request.param == "memory":
        with DataWarehouse() as warehouse:
            yield warehouse
    else:
        with DataWarehouse.open("sqlite", path=str(tmp_path / "dup.sqlite")) as warehouse:
            yield warehouse


def _expect_duplicate(warehouse, action):
    """Assert *action* is rejected as a duplicate.

    The memory engine raises at insert time; SQLite buffers writes and may
    defer the check to the flush — accept either surfacing point.
    """
    with pytest.raises(StorageError):
        action()
        warehouse.flush()


class TestTrajectoryDuplicates:
    def test_duplicate_in_one_batch_is_rejected_atomically(self, warehouse):
        records = [
            TrajectoryRecord("a", _loc(), 1.0),
            TrajectoryRecord("a", _loc(x=9.0), 1.0),
        ]
        with pytest.raises(StorageError):
            warehouse.trajectories.add_many(records)
            warehouse.flush()
        # Atomic rejection: the valid first row was not inserted either.
        assert len(warehouse.trajectories) == 0

    def test_duplicate_across_batches_is_rejected(self, warehouse):
        warehouse.trajectories.add(TrajectoryRecord("a", _loc(), 1.0))
        warehouse.flush()
        _expect_duplicate(
            warehouse, lambda: warehouse.trajectories.add(TrajectoryRecord("a", _loc(x=9.0), 1.0))
        )
        assert len(warehouse.trajectories) == 1

    def test_same_timestamp_different_objects_is_fine(self, warehouse):
        warehouse.trajectories.add_many(
            [TrajectoryRecord("a", _loc(), 1.0), TrajectoryRecord("b", _loc(), 1.0)]
        )
        warehouse.flush()
        assert len(warehouse.trajectories) == 2

    def test_clear_resets_the_constraint(self, warehouse):
        warehouse.trajectories.add(TrajectoryRecord("a", _loc(), 1.0))
        warehouse.flush()
        warehouse.clear()
        warehouse.trajectories.add(TrajectoryRecord("a", _loc(), 1.0))
        warehouse.flush()
        assert len(warehouse.trajectories) == 1


class TestPositioningDuplicates:
    def test_same_object_time_and_method_is_rejected(self, warehouse):
        record = PositioningRecord("a", _loc(), 5.0, PositioningMethod.TRILATERATION)
        warehouse.positioning.add(record)
        warehouse.flush()
        _expect_duplicate(
            warehouse,
            lambda: warehouse.positioning.add(
                PositioningRecord("a", _loc(x=3.0), 5.0, PositioningMethod.TRILATERATION)
            ),
        )
        assert len(warehouse.positioning) == 1

    def test_same_object_time_different_method_is_allowed(self, warehouse):
        warehouse.positioning.add_many(
            [
                PositioningRecord("a", _loc(), 5.0, PositioningMethod.TRILATERATION),
                PositioningRecord("a", _loc(), 5.0, PositioningMethod.FINGERPRINTING),
            ]
        )
        warehouse.flush()
        assert len(warehouse.positioning) == 2

    def test_probabilistic_duplicates_are_rejected(self, warehouse):
        record = ProbabilisticPositioningRecord("a", ((_loc(), 1.0),), 5.0)
        warehouse.probabilistic.add(record)
        warehouse.flush()
        _expect_duplicate(
            warehouse,
            lambda: warehouse.probabilistic.add(
                ProbabilisticPositioningRecord("a", ((_loc(), 1.0),), 5.0)
            ),
        )
        assert len(warehouse.probabilistic) == 1


class TestRejectionScope:
    def test_rejected_batch_does_not_take_other_datasets_down(self, warehouse):
        # A duplicate in one dataset must not discard valid rows that other
        # datasets flushed in the same transaction (SQLite drains every
        # dataset on flush; the rejection is scoped to the offending batch).
        warehouse.trajectories.add(TrajectoryRecord("a", _loc(), 1.0))
        _expect_duplicate(
            warehouse,
            lambda: warehouse.probabilistic.add_many(
                [
                    ProbabilisticPositioningRecord("a", ((_loc(), 1.0),), 5.0),
                    ProbabilisticPositioningRecord("a", ((_loc(), 1.0),), 5.0),
                ]
            ),
        )
        warehouse.flush()  # the surviving work commits cleanly
        assert len(warehouse.trajectories) == 1
        assert len(warehouse.probabilistic) == 0


class TestUnconstrainedDatasets:
    def test_rssi_repeats_are_still_accepted(self, warehouse):
        # Raw RSSI has no natural (object_id, t) key: several devices (and
        # repeated survey passes) legitimately measure the same instant.
        warehouse.rssi.add_many(
            [RSSIRecord("a", "ap1", -60.0, 1.0), RSSIRecord("a", "ap1", -60.0, 1.0)]
        )
        warehouse.flush()
        assert len(warehouse.rssi) == 2
