"""Unit tests for the typed repositories and the data warehouse."""

import pytest

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)
from repro.storage.repositories import (
    DataWarehouse,
    DeviceRepository,
    PositioningRepository,
    ProbabilisticPositioningRepository,
    ProximityRepository,
    RSSIRepository,
    TrajectoryRepository,
)


def _loc(x=1.0, y=2.0, floor=0, partition="p1"):
    return IndoorLocation("b", floor, partition_id=partition, x=x, y=y)


class TestTrajectoryRepository:
    def test_add_and_query_by_object(self):
        repo = TrajectoryRepository()
        repo.add_many(
            [
                TrajectoryRecord("a", _loc(), 0.0),
                TrajectoryRecord("a", _loc(x=2.0), 1.0),
                TrajectoryRecord("b", _loc(partition="p2"), 0.5),
            ]
        )
        assert len(repo) == 3
        assert repo.object_ids() == ["a", "b"]
        assert [r.t for r in repo.records_of("a")] == [0.0, 1.0]

    def test_trajectory_reconstruction(self):
        repo = TrajectoryRepository()
        repo.add(TrajectoryRecord("a", _loc(), 1.0))
        repo.add(TrajectoryRecord("a", _loc(x=5.0), 0.0))
        trajectory = repo.trajectory_of("a")
        assert len(trajectory) == 2
        assert trajectory.records[0].t == 0.0  # rebuilt in time order

    def test_time_range_and_partition_queries(self):
        repo = TrajectoryRepository()
        repo.add_many(
            [
                TrajectoryRecord("a", _loc(partition="hall"), t)
                for t in (0.0, 5.0, 10.0, 15.0)
            ]
        )
        assert len(repo.in_time_range(4.0, 11.0)) == 2
        assert len(repo.in_partition("hall")) == 4
        assert repo.in_partition("nowhere") == []

    def test_round_trip_with_trajectory_set(self, office_simulation):
        repo = TrajectoryRepository()
        count = repo.add_trajectory_set(office_simulation.trajectories)
        assert count == office_simulation.trajectories.total_records
        rebuilt = repo.to_trajectory_set()
        assert len(rebuilt) == len(office_simulation.trajectories)
        assert rebuilt.total_records == count


class TestRSSIRepository:
    def test_queries(self):
        repo = RSSIRepository()
        repo.add_many(
            [
                RSSIRecord("a", "ap1", -60.0, 0.0),
                RSSIRecord("a", "ap2", -70.0, 0.0),
                RSSIRecord("b", "ap1", -55.0, 4.0),
            ]
        )
        assert len(repo) == 3
        assert len(repo.records_of_object("a")) == 2
        assert len(repo.records_of_device("ap1")) == 2
        assert len(repo.in_time_range(0.0, 1.0)) == 2
        assert len(repo.all_records()) == 3


class TestPositioningRepositories:
    def test_deterministic_repository(self):
        repo = PositioningRepository()
        repo.add_many(
            [
                PositioningRecord("a", _loc(), 0.0, PositioningMethod.TRILATERATION),
                PositioningRecord("a", _loc(x=3.0), 5.0, PositioningMethod.FINGERPRINTING),
            ]
        )
        assert len(repo.records_of("a")) == 2
        assert len(repo.by_method(PositioningMethod.FINGERPRINTING)) == 1
        assert len(repo.in_time_range(0.0, 1.0)) == 1

    def test_probabilistic_repository_and_best_estimates(self):
        repo = ProbabilisticPositioningRepository()
        record = ProbabilisticPositioningRecord(
            "a", ((_loc(partition="p1"), 0.2), (_loc(partition="p2", x=9.0), 0.8)), 1.0
        )
        repo.add(record)
        assert len(repo) == 1
        assert repo.records_of("a") == [record]
        best = repo.best_estimates()[0]
        assert best.location.partition_id == "p2"
        assert best.method is PositioningMethod.FINGERPRINTING

    def test_proximity_repository(self):
        repo = ProximityRepository()
        repo.add_many(
            [
                ProximityRecord("a", "d1", 0.0, 10.0),
                ProximityRecord("a", "d2", 20.0, 30.0),
                ProximityRecord("b", "d1", 5.0, 8.0),
            ]
        )
        assert len(repo.records_of("a")) == 2
        assert len(repo.records_of_device("d1")) == 2
        active = repo.active_at(6.0)
        assert {(r.object_id, r.device_id) for r in active} == {("a", "d1"), ("b", "d1")}


class TestDeviceRepository:
    def test_queries(self):
        repo = DeviceRepository()
        repo.add_many(
            [
                DeviceRecord("ap1", DeviceType.WIFI, _loc(floor=0), 25.0, 1.0),
                DeviceRecord("ap2", DeviceType.WIFI, _loc(floor=1), 25.0, 1.0),
                DeviceRecord("r1", DeviceType.RFID, _loc(floor=0), 3.0, 0.5),
            ]
        )
        assert len(repo) == 3
        assert len(repo.by_type(DeviceType.WIFI)) == 2
        assert len(repo.on_floor(0)) == 2
        assert repo.all_records()[0].device_id == "ap1"


class TestDataWarehouse:
    def test_summary_counts(self):
        warehouse = DataWarehouse()
        warehouse.trajectories.add(TrajectoryRecord("a", _loc(), 0.0))
        warehouse.rssi.add(RSSIRecord("a", "ap1", -60.0, 0.0))
        warehouse.proximity.add(ProximityRecord("a", "d", 0.0, 1.0))
        summary = warehouse.summary()
        assert summary["trajectory_records"] == 1
        assert summary["rssi_records"] == 1
        assert summary["proximity_records"] == 1
        assert summary["positioning_records"] == 0
