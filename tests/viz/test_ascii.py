"""Unit tests for the ASCII floor plan renderer."""

import pytest

from repro.viz.ascii_map import AsciiFloorRenderer, render_building, render_floor
from repro.geometry.point import Point


class TestRendering:
    def test_render_contains_walls_and_doors(self, office):
        output = render_floor(office, 0, width=80, height=20)
        assert "#" in output
        assert "+" in output
        assert "floor 0" in output

    def test_devices_marked(self, office, office_wifi):
        output = render_floor(office, 0, devices=office_wifi, width=80, height=20)
        assert "D" in output

    def test_objects_marked(self, office, office_simulation):
        snapshot = office_simulation.trajectories.snapshot(30.0)
        output = render_floor(office, 0, objects=snapshot, width=80, height=20)
        floor0_objects = [loc for loc in snapshot.values() if loc.floor_id == 0]
        if floor0_objects:
            assert "o" in output or "*" in output

    def test_render_building_covers_all_floors(self, office):
        output = render_building(office, width=60, height=15)
        assert "floor 0" in output and "floor 1" in output

    def test_dimensions_respected(self, office):
        renderer = AsciiFloorRenderer(office, 0, width=70, height=22)
        lines = renderer.render().splitlines()
        grid_lines = lines[2:]
        assert len(grid_lines) == 22
        assert all(len(line) == 70 for line in grid_lines)

    def test_to_cell_maps_extent_corners(self, office):
        renderer = AsciiFloorRenderer(office, 0, width=50, height=20)
        box = office.floor(0).bounding_box
        top_left = renderer.to_cell(Point(box.min_x, box.max_y))
        bottom_right = renderer.to_cell(Point(box.max_x, box.min_y))
        assert top_left == (0, 0)
        assert bottom_right == (19, 49)

    def test_minimum_dimensions_enforced(self, office):
        renderer = AsciiFloorRenderer(office, 0, width=5, height=3)
        assert renderer.width >= 20 and renderer.height >= 10
