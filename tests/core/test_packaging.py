"""Packaging invariants: the PEP 561 marker must ship with the package."""

from pathlib import Path

import repro


def test_py_typed_marker_is_next_to_the_package():
    assert (Path(repro.__file__).parent / "py.typed").exists()


def test_setup_declares_the_marker_as_package_data():
    setup_py = Path(repro.__file__).resolve().parents[2] / "setup.py"
    assert "py.typed" in setup_py.read_text(encoding="utf-8")
