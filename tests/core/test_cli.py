"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.ifc.extractor import DBIProcessor


@pytest.fixture()
def config_path(tmp_path):
    payload = {
        "environment": {"building": "clinic", "floors": 1},
        "devices": [{"type": "wifi", "count_per_floor": 4, "deployment": "coverage"}],
        "objects": {"count": 4, "duration": 40, "time_step": 0.5, "seed": 3},
        "rssi": {"sampling_period": 2.0},
        "positioning": {"method": "trilateration", "sampling_period": 5.0},
        "seed": 3,
    }
    path = tmp_path / "run.json"
    path.write_text(json.dumps(payload))
    return path


class TestGenerateCommand:
    def test_generate_writes_datasets_and_summary(self, config_path, tmp_path, capsys):
        output = tmp_path / "out"
        exit_code = main(["generate", "--config", str(config_path), "--output", str(output)])
        assert exit_code == 0
        assert (output / "summary.json").exists()
        assert (output / "raw_trajectories.csv").exists()
        assert (output / "raw_rssi.csv").exists()
        assert (output / "positioning.csv").exists()
        summary = json.loads((output / "summary.json").read_text())
        assert summary["records"]["trajectory_records"] > 0
        printed = capsys.readouterr().out
        assert "trajectory_records" in printed

    def test_generate_with_invalid_config_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"objects": {"unknown_key": 1}}))
        exit_code = main(["generate", "--config", str(bad), "--output", str(tmp_path / "o")])
        assert exit_code == 2

    def test_summary_reports_spatial_cache_hit_rates(self, config_path, tmp_path):
        output = tmp_path / "out"
        exit_code = main(["generate", "--config", str(config_path), "--output", str(output)])
        assert exit_code == 0
        summary = json.loads((output / "summary.json").read_text())
        caches = summary["spatial_cache"]
        assert set(caches) == {"route", "los", "locate", "table"}
        for counters in caches.values():
            assert set(counters) == {"hits", "misses", "hit_rate"}
        # The run exercised routing and point location through the service.
        assert caches["route"]["misses"] + caches["route"]["hits"] > 0
        assert caches["locate"]["hits"] > 0

    def test_no_spatial_cache_flag_disables_counters_but_not_output(
        self, config_path, tmp_path
    ):
        cached_out = tmp_path / "cached"
        plain_out = tmp_path / "plain"
        assert main(["generate", "--config", str(config_path),
                     "--output", str(cached_out)]) == 0
        assert main(["generate", "--config", str(config_path),
                     "--output", str(plain_out), "--no-spatial-cache"]) == 0
        cached = json.loads((cached_out / "summary.json").read_text())
        plain = json.loads((plain_out / "summary.json").read_text())
        # Caching changes cost, never results: the stored datasets match.
        assert plain["records"] == cached["records"]
        assert all(
            counters["hits"] == 0 and counters["misses"] == 0
            for counters in plain["spatial_cache"].values()
        )
        assert (plain_out / "raw_trajectories.csv").read_text() == (
            (cached_out / "raw_trajectories.csv").read_text()
        )

    def test_progress_lines_include_cache_hit_rates(self, config_path, tmp_path, capsys):
        exit_code = main(["generate", "--config", str(config_path),
                          "--output", str(tmp_path / "o"), "--progress"])
        assert exit_code == 0
        stderr = capsys.readouterr().err
        assert "cache[" in stderr


class TestDescribeCommand:
    def test_describe_synthetic_building(self, capsys):
        exit_code = main(["describe", "--building", "mall", "--floors", "2", "--no-map"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "partitions=" in output and "connected=True" in output

    def test_describe_with_map(self, capsys):
        exit_code = main(["describe", "--building", "office", "--floors", "1"])
        assert exit_code == 0
        assert "#" in capsys.readouterr().out

    def test_describe_ifc_file(self, tmp_path, capsys):
        ifc_path = tmp_path / "clinic.ifc"
        assert main(["export-ifc", "--building", "clinic", "--floors", "1",
                     "--output", str(ifc_path)]) == 0
        assert main(["describe", "--ifc", str(ifc_path), "--no-map"]) == 0
        output = capsys.readouterr().out
        assert "Processed DBI file" in output


class TestExportIfcCommand:
    def test_export_round_trips(self, tmp_path):
        path = tmp_path / "office.ifc"
        assert main(["export-ifc", "--building", "office", "--output", str(path)]) == 0
        building, report = DBIProcessor().process_file(str(path))
        assert report.errors == []
        assert building.partition_count > 0

    def test_export_with_injected_errors(self, tmp_path):
        path = tmp_path / "broken.ifc"
        assert main([
            "export-ifc", "--building", "office", "--output", str(path),
            "--inject-orphan-doors", "1", "--inject-degenerate-spaces", "1",
        ]) == 0
        _, report = DBIProcessor().process_file(str(path))
        assert len(report.errors) >= 2


class TestSQLiteBackendCommands:
    def test_generate_with_sqlite_backend_then_query(self, config_path, tmp_path, capsys):
        output = tmp_path / "out"
        exit_code = main(
            ["generate", "--config", str(config_path), "--output", str(output),
             "--backend", "sqlite"]
        )
        assert exit_code == 0
        db_path = output / "vita.sqlite"
        assert db_path.exists()
        summary = json.loads((output / "summary.json").read_text())
        assert summary["storage"]["backend"] == "sqlite"
        assert summary["storage"]["journal_mode"] == "wal"
        capsys.readouterr()

        # A fresh invocation (fresh process, conceptually) queries the file.
        exit_code = main(
            ["query", "--db", str(db_path), "--summary", "--snapshot", "20",
             "--window", "0", "40", "--knn", "0", "5", "5", "20", "3", "--visits"]
        )
        assert exit_code == 0
        results = json.loads(capsys.readouterr().out)
        assert results["summary"]["trajectory_records"] > 0
        assert results["window"]["records"] > 0
        assert results["snapshot"]
        assert isinstance(results["knn"], list)
        assert results["visits"]

    def test_generate_with_db_flag_overrides_location(self, config_path, tmp_path, capsys):
        output = tmp_path / "out"
        db_path = tmp_path / "elsewhere" / "run.sqlite"
        exit_code = main(
            ["generate", "--config", str(config_path), "--output", str(output),
             "--backend", "sqlite", "--db", str(db_path)]
        )
        assert exit_code == 0
        assert db_path.exists()

    def test_query_missing_database_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["query", "--db", str(tmp_path / "nope.sqlite")])
        assert exit_code == 2


class TestBuilderQueryCommand:
    @pytest.fixture()
    def db_path(self, config_path, tmp_path, capsys):
        output = tmp_path / "out"
        assert main(["generate", "--config", str(config_path), "--output", str(output),
                     "--backend", "sqlite"]) == 0
        capsys.readouterr()
        return output / "vita.sqlite"

    def test_generic_rows_query(self, db_path, capsys):
        exit_code = main([
            "query", "--db", str(db_path), "--dataset", "trajectory",
            "--where", "floor_id=0", "--during", "0", "20",
            "--select", "object_id,t", "--order-by", "t", "--limit", "5",
        ])
        assert exit_code == 0
        results = json.loads(capsys.readouterr().out)
        rows = results["query"]["rows"]
        assert 0 < len(rows) <= 5
        assert set(rows[0]) == {"object_id", "t"}
        assert [row["t"] for row in rows] == sorted(row["t"] for row in rows)

    def test_count_by_with_explain_shows_sql_pushdown(self, db_path, capsys):
        exit_code = main([
            "query", "--db", str(db_path), "--dataset", "trajectory",
            "--during", "0", "20", "--count-by", "partition_id", "--explain",
        ])
        assert exit_code == 0
        results = json.loads(capsys.readouterr().out)
        query = results["query"]
        assert query["count_by"]
        explain = query["explain"]
        assert explain["pushdown"] == "full"
        assert any("GROUP BY partition_id" in line for line in explain["pushed"])

    def test_explain_alone_skips_the_row_fetch(self, db_path, capsys):
        exit_code = main([
            "query", "--db", str(db_path), "--dataset", "rssi",
            "--where", "rssi>=-60", "--explain",
        ])
        assert exit_code == 0
        results = json.loads(capsys.readouterr().out)
        assert "rows" not in results["query"]
        assert any("rssi >= ?" in line for line in results["query"]["explain"]["pushed"])

    def test_distinct_and_stats_verbs(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--dataset", "trajectory",
                     "--distinct", "object_id"]) == 0
        distinct = json.loads(capsys.readouterr().out)["query"]["distinct"]
        assert len(distinct) == 4
        assert main(["query", "--db", str(db_path), "--dataset", "rssi",
                     "--stats", "rssi"]) == 0
        stats = json.loads(capsys.readouterr().out)["query"]["stats"]
        assert stats["count"] > 0 and stats["min"] <= stats["mean"] <= stats["max"]

    def test_builder_flags_require_dataset(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--where", "floor_id=0"]) == 2
        assert "require --dataset" in capsys.readouterr().err
        # Falsy flag values still count as builder flags.
        assert main(["query", "--db", str(db_path), "--limit", "0"]) == 2
        assert "require --dataset" in capsys.readouterr().err

    def test_bad_where_expression_fails_cleanly(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--dataset", "trajectory",
                     "--where", "no-ops-here"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_untypable_where_value_fails_cleanly(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--dataset", "trajectory",
                     "--where", "floor_id=abc"]) == 2
        assert "not valid" in capsys.readouterr().err

    def test_multiple_aggregate_verbs_rejected(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--dataset", "trajectory",
                     "--count", "--distinct", "object_id"]) == 2
        assert "at most one" in capsys.readouterr().err

    def test_unknown_dataset_fails_with_one_line_error(self, db_path, capsys):
        assert main(["query", "--db", str(db_path), "--dataset", "bogus",
                     "--count"]) == 2
        err = capsys.readouterr().err
        assert "unknown dataset" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


@pytest.fixture()
def monitored_config_path(tmp_path):
    payload = {
        "environment": {"building": "clinic", "floors": 1},
        "devices": [{"type": "wifi", "count_per_floor": 4}],
        "objects": {"count": 4, "duration": 40, "time_step": 0.5, "seed": 3},
        "monitors": [
            {"monitor": "density", "floor": 0, "window": 20, "slide": 10,
             "name": "occ"},
            {"monitor": "geofence", "floor": 0, "region": [0, 0, 12, 12],
             "name": "fence"},
        ],
        "seed": 3,
    }
    path = tmp_path / "monitored.json"
    path.write_text(json.dumps(payload))
    return path


class TestMonitorCommand:
    def test_follow_prints_alerts_and_report(self, monitored_config_path, capsys):
        exit_code = main(["monitor", "--config", str(monitored_config_path),
                          "--follow"])
        assert exit_code == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["mode"] == "follow"
        assert report["monitors"]["occ"]["windows"]
        assert all(w["value"] >= 0 for w in report["monitors"]["occ"]["windows"])
        assert "[alert] monitor=fence" in captured.err

    def test_follow_then_replay_agree(self, monitored_config_path, tmp_path, capsys):
        db = tmp_path / "run.sqlite"
        assert main(["monitor", "--config", str(monitored_config_path),
                     "--follow", "--db", str(db), "--no-alerts"]) == 0
        followed = json.loads(capsys.readouterr().out)
        assert main(["monitor", "--config", str(monitored_config_path),
                     "--replay", "--db", str(db), "--no-alerts"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["mode"] == "replay"
        for name in ("occ", "fence"):
            assert (
                [w["value"] for w in replayed["monitors"][name]["windows"]]
                == [w["value"] for w in followed["monitors"][name]["windows"]]
            )

    def test_replay_without_db_fails_cleanly(self, monitored_config_path, capsys):
        assert main(["monitor", "--config", str(monitored_config_path),
                     "--replay"]) == 2
        err = capsys.readouterr().err
        assert "needs --db" in err and "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_replay_missing_database_fails_cleanly(
        self, monitored_config_path, tmp_path, capsys
    ):
        assert main(["monitor", "--config", str(monitored_config_path),
                     "--replay", "--db", str(tmp_path / "nope.sqlite")]) == 2
        err = capsys.readouterr().err
        assert "no such database" in err and "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_config_without_monitors_fails_cleanly(self, config_path, capsys):
        assert main(["monitor", "--config", str(config_path), "--follow"]) == 2
        err = capsys.readouterr().err
        assert "no 'monitors' section" in err
        assert len(err.strip().splitlines()) == 1
