"""The example configuration files shipped in examples/configs must stay valid."""

from pathlib import Path

import pytest

from repro.core.config import config_from_json
from repro.core.types import DeviceType, PositioningMethod

CONFIG_DIR = Path(__file__).resolve().parents[2] / "examples" / "configs"


def _config_paths():
    return sorted(CONFIG_DIR.glob("*.json"))


class TestExampleConfigs:
    def test_config_directory_is_not_empty(self):
        assert _config_paths(), f"no example configs found in {CONFIG_DIR}"

    @pytest.mark.parametrize("path", _config_paths(), ids=lambda p: p.name)
    def test_config_loads_and_validates(self, path):
        config = config_from_json(path)
        assert config.devices
        assert config.objects.count > 0
        assert config.objects.duration > 0

    def test_office_fingerprinting_config_contents(self):
        config = config_from_json(CONFIG_DIR / "office_fingerprinting.json")
        assert config.environment.building == "office"
        assert config.positioning.method is PositioningMethod.FINGERPRINTING
        assert config.objects.crowd_interaction == "density-slowdown"

    def test_mall_proximity_config_contents(self):
        config = config_from_json(CONFIG_DIR / "mall_rfid_proximity.json")
        assert config.devices[0].device_type is DeviceType.RFID
        assert config.positioning.method is PositioningMethod.PROXIMITY
        assert config.devices[0].overrides()["detection_interval"] == 2.0
