"""Unit tests for the streaming, sharded generation pipeline."""

import json

import pytest

from repro.cli import main
from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    PositioningLayerConfig,
    RSSIConfig,
    StorageConfig,
    VitaConfig,
    config_from_dict,
)
from repro.core.errors import ConfigurationError
from repro.core.pipeline import VitaPipeline
from repro.core.streaming import StreamingWriter, run_shard, ShardContext, plan_shards
from repro.core.toolkit import Vita
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.storage.repositories import DataWarehouse


def small_config(**overrides):
    """A fast clinic run: one floor, six objects, forty simulated seconds."""
    defaults = dict(
        environment=EnvironmentConfig(building="clinic", floors=1),
        devices=[DeviceConfig(count_per_floor=4)],
        objects=ObjectConfig(
            count=6, duration=40.0, time_step=0.5, min_lifespan=20.0, max_lifespan=40.0
        ),
        rssi=RSSIConfig(sampling_period=2.0),
        positioning=PositioningLayerConfig(sampling_period=5.0),
        seed=11,
        shards=3,
    )
    defaults.update(overrides)
    return VitaConfig(**defaults)


# --------------------------------------------------------------------------- #
# Configuration knobs
# --------------------------------------------------------------------------- #
class TestStreamingKnobs:
    def test_knobs_parse_from_dict(self):
        config = config_from_dict(
            {"workers": 2, "shards": 3, "storage": {"flush_every": 100}}
        )
        assert config.workers == 2
        assert config.shards == 3
        assert config.storage.flush_every == 100

    def test_knob_defaults(self):
        config = VitaConfig()
        assert config.workers == 1
        assert config.shards is None
        assert config.storage.flush_every == 5000

    @pytest.mark.parametrize(
        "kwargs",
        [dict(workers=0), dict(shards=0)],
    )
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            VitaConfig(**kwargs)

    def test_invalid_flush_every_is_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(flush_every=0)

    @pytest.mark.parametrize(
        "overrides",
        [dict(workers=0), dict(shards=0), dict(flush_every=0)],
    )
    def test_run_streaming_rejects_bad_overrides(self, overrides):
        with pytest.raises(ConfigurationError):
            VitaPipeline(small_config()).run_streaming(**overrides)


# --------------------------------------------------------------------------- #
# The streaming writer
# --------------------------------------------------------------------------- #
def _trajectory_records(n, object_id="a"):
    return [
        TrajectoryRecord(object_id, IndoorLocation("b", 0, "hall", 1.0, 2.0), float(t))
        for t in range(n)
    ]


class TestStreamingWriter:
    def test_flushes_in_bounded_batches(self):
        warehouse = DataWarehouse()
        events = []
        writer = StreamingWriter(warehouse, flush_every=10, progress=events.append)
        writer.write("trajectories", _trajectory_records(35))
        assert len(warehouse.trajectories) == 35
        assert writer.max_pending == 10
        assert writer.flushes == 4  # 10 + 10 + 10 + 5
        flushes = [e for e in events if e.phase == "flush"]
        assert [e.records_written for e in flushes] == [10, 20, 30, 35]
        assert all(e.pending_records == 0 for e in flushes)

    def test_writer_requires_positive_flush_every(self):
        with pytest.raises(ConfigurationError):
            StreamingWriter(DataWarehouse(), flush_every=0)

    def test_progress_rates_are_non_negative(self):
        events = []
        writer = StreamingWriter(DataWarehouse(), flush_every=5, progress=events.append)
        writer.set_context(0, 1, 3)
        writer.write("trajectories", _trajectory_records(7))
        assert events
        for event in events:
            assert event.records_per_second >= 0.0
            assert event.objects_per_second >= 0.0
            assert event.shard_id == 0 and event.shard_count == 1


# --------------------------------------------------------------------------- #
# The streaming pipeline run
# --------------------------------------------------------------------------- #
class TestRunStreaming:
    def test_populates_the_warehouse_and_reports_counts(self):
        result = VitaPipeline(small_config()).run_streaming()
        summary = result.warehouse.summary()
        assert summary["trajectory_records"] > 0
        assert summary["rssi_records"] > 0
        assert summary["positioning_records"] > 0
        assert summary["device_records"] == 4
        assert result.report.total_records == sum(summary.values())
        assert result.report.objects >= 6
        assert result.report.shard_count == 3
        assert result.report.master_seed == 11
        assert set(result.report.timings) >= {
            "infrastructure", "moving_objects_cpu", "rssi_cpu", "positioning_cpu",
            "generation",
        }

    def test_memory_bound_pending_records_never_exceed_flush_budget(self):
        # The memory-bound regression of the streaming refactor: with a tiny
        # flush_every the pipeline must never buffer more than the flush
        # budget, observed through the progress hook.
        flush_every = 16
        config = small_config()
        events = []
        result = VitaPipeline(config).run_streaming(
            flush_every=flush_every, progress=events.append
        )
        shard_count = result.report.shard_count
        observed = max(event.pending_records for event in events)
        assert result.report.total_records > flush_every  # the bound was exercised
        assert observed <= flush_every * shard_count
        # The writer's actual invariant is stronger than the required bound.
        assert result.report.max_pending <= flush_every

    def test_progress_phases_cover_the_run(self):
        events = []
        VitaPipeline(small_config()).run_streaming(flush_every=32, progress=events.append)
        phases = {event.phase for event in events}
        assert {"devices", "shard-start", "flush", "shard-done", "done"} <= phases
        written = [event.records_written for event in events]
        assert written == sorted(written)  # monotone
        assert events[-1].phase == "done"
        assert events[-1].pending_records == 0

    def test_unseeded_runs_report_their_master_seed(self):
        config = small_config(seed=None)
        config.objects.seed = None
        config.rssi.seed = None
        result = VitaPipeline(config).run_streaming()
        assert result.report.master_seed >= 0
        # Replaying with the reported seed reproduces the dataset.
        replay = small_config(seed=result.report.master_seed)
        replayed = VitaPipeline(replay).run_streaming()
        assert replayed.report.master_seed == result.report.master_seed


# --------------------------------------------------------------------------- #
# The per-shard chain
# --------------------------------------------------------------------------- #
class TestRunShard:
    def test_shards_number_objects_globally(self):
        config = small_config()
        pipeline = VitaPipeline(config)
        building = pipeline.build_environment()
        devices = list(pipeline.deploy_devices(building).devices.values())
        context = ShardContext(config=config, building=building, devices=devices, master_seed=11)
        plan = plan_shards(config.objects.count, 3, 11)
        seen = []
        for shard in plan:
            output = run_shard(context, shard)
            ids = sorted({record.object_id for record in output.trajectory_records})
            seen.extend(ids)
        assert seen == [f"obj_{i:04d}" for i in range(1, config.objects.count + 1)]


# --------------------------------------------------------------------------- #
# Facade and CLI
# --------------------------------------------------------------------------- #
class TestVitaGenerate:
    def test_generate_fills_the_session_warehouse(self):
        with Vita(seed=11) as vita:
            result = vita.generate(small_config())
            assert vita.summary()["trajectory_records"] > 0
            assert vita.building is result.building
            assert len(vita.devices) == 4
            assert vita.query("trajectory").count() == result.report.records_written["trajectories"]

    def test_generate_replaces_previous_session_data(self):
        with Vita(seed=11) as vita:
            first = vita.generate(small_config())
            second = vita.generate(small_config())
            assert second.report.total_records == first.report.total_records
            assert vita.summary()["trajectory_records"] == (
                second.report.records_written["trajectories"]
            )


    def test_generate_refuses_persistent_config_on_a_memory_session(self):
        from repro.core.errors import VitaError

        config = small_config(storage=StorageConfig(backend="sqlite"))
        with Vita() as vita:  # memory session cannot satisfy a sqlite target
            with pytest.raises(VitaError):
                vita.generate(config)


class TestGenerateCLI:
    @pytest.fixture()
    def config_path(self, tmp_path):
        payload = {
            "environment": {"building": "clinic", "floors": 1},
            "devices": [{"type": "wifi", "count_per_floor": 4}],
            "objects": {"count": 4, "duration": 30, "time_step": 0.5},
            "seed": 3,
            "shards": 2,
        }
        path = tmp_path / "run.json"
        path.write_text(json.dumps(payload))
        return path

    def test_generate_with_streaming_flags(self, config_path, tmp_path, capsys):
        output = tmp_path / "out"
        exit_code = main(
            ["generate", "--config", str(config_path), "--output", str(output),
             "--workers", "2", "--flush-every", "64", "--progress"]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        summary = json.loads((output / "summary.json").read_text())
        generation = summary["generation"]
        assert generation["workers"] == 2
        assert generation["shards"] == 2
        assert generation["flush_every"] == 64
        assert generation["max_pending_records"] <= 64
        assert summary["records"]["trajectory_records"] > 0
        assert "rec/s" in captured.err  # --progress reports throughput
