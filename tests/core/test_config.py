"""Unit tests for repro.core.config (Configuration Loader)."""

import json

import pytest

from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    PositioningLayerConfig,
    RSSIConfig,
    VitaConfig,
    config_from_dict,
    config_from_json,
)
from repro.core.errors import ConfigurationError
from repro.core.types import DeviceType, PositioningMethod


class TestSectionValidation:
    def test_environment_rejects_zero_floors(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(floors=0)

    def test_device_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(count_per_floor=0)

    def test_device_rejects_unknown_deployment(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(deployment="random")

    def test_device_overrides(self):
        config = DeviceConfig(detection_range=5.0)
        assert config.overrides() == {"detection_range": 5.0}
        assert DeviceConfig().overrides() == {}

    def test_objects_rejects_bad_routing(self):
        with pytest.raises(ConfigurationError):
            ObjectConfig(routing="fastest")

    def test_objects_rejects_negative_arrivals(self):
        with pytest.raises(ConfigurationError):
            ObjectConfig(arrival_rate_per_minute=-1)

    def test_rssi_rejects_zero_period(self):
        with pytest.raises(ConfigurationError):
            RSSIConfig(sampling_period=0)

    def test_positioning_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            PositioningLayerConfig(algorithm="svm")

    def test_vita_config_requires_devices(self):
        with pytest.raises(ConfigurationError):
            VitaConfig(devices=[])

    def test_top_level_seed_propagates(self):
        config = VitaConfig(seed=42)
        assert config.objects.seed == 42
        assert config.rssi.seed == 43


class TestConfigFromDict:
    def test_defaults_from_empty_sections(self):
        config = config_from_dict({"devices": [{}]})
        assert config.environment.building == "office"
        assert config.devices[0].device_type is DeviceType.WIFI
        assert config.positioning.method is PositioningMethod.TRILATERATION

    def test_full_configuration(self):
        config = config_from_dict(
            {
                "environment": {"building": "mall", "floors": 3, "decompose": True},
                "devices": [
                    {"type": "wifi", "count_per_floor": 4, "deployment": "coverage"},
                    {"type": "rfid", "count_per_floor": 6, "deployment": "check-point",
                     "detection_range": 2.0},
                ],
                "objects": {"count": 25, "duration": 120, "distribution": "crowd-outliers"},
                "rssi": {"sampling_period": 1.5, "fluctuation_sigma_db": 3.0},
                "positioning": {"method": "fingerprinting", "algorithm": "bayes"},
                "seed": 9,
            }
        )
        assert config.environment.building == "mall"
        assert config.environment.floors == 3
        assert len(config.devices) == 2
        assert config.devices[1].device_type is DeviceType.RFID
        assert config.devices[1].overrides() == {"detection_range": 2.0}
        assert config.objects.count == 25
        assert config.rssi.fluctuation_sigma_db == 3.0
        assert config.positioning.method is PositioningMethod.FINGERPRINTING
        assert config.positioning.algorithm == "bayes"
        assert config.seed == 9

    def test_single_device_dict_is_accepted(self):
        config = config_from_dict({"devices": {"type": "bluetooth"}})
        assert config.devices[0].device_type is DeviceType.BLUETOOTH

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"device": [{}]})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"objects": {"num_objects": 10}})

    def test_unknown_device_type_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"devices": [{"type": "uwb"}]})

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"positioning": {"method": "dead-reckoning"}})

    def test_device_type_aliases(self):
        config = config_from_dict({"devices": [{"type": "ble"}, {"type": "wi-fi"}]})
        assert config.devices[0].device_type is DeviceType.BLUETOOTH
        assert config.devices[1].device_type is DeviceType.WIFI


class TestConfigFromJson:
    def test_round_trip_through_file(self, tmp_path):
        payload = {
            "environment": {"building": "clinic", "floors": 1},
            "devices": [{"type": "rfid", "count_per_floor": 3, "deployment": "check-point"}],
            "objects": {"count": 5, "duration": 60},
            "positioning": {"method": "proximity"},
        }
        path = tmp_path / "config.json"
        path.write_text(json.dumps(payload))
        config = config_from_json(path)
        assert config.environment.building == "clinic"
        assert config.positioning.method is PositioningMethod.PROXIMITY

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            config_from_json(path)

    def test_non_object_top_level_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            config_from_json(path)


class TestStorageConfig:
    def test_defaults_to_memory(self):
        config = config_from_dict({})
        assert config.storage.backend == "memory"
        assert config.storage.path is None

    def test_sqlite_section_parsed(self):
        config = config_from_dict(
            {
                "storage": {
                    "backend": "sqlite",
                    "path": "out/run.sqlite",
                    "grid_cell_size": 2.0,
                    "batch_size": 500,
                }
            }
        )
        assert config.storage.backend == "sqlite"
        assert config.storage.path == "out/run.sqlite"
        assert config.storage.grid_cell_size == 2.0
        assert config.storage.batch_size == 500

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"storage": {"backend": "postgres"}})

    def test_memory_backend_rejects_path(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"storage": {"backend": "memory", "path": "x.sqlite"}})

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"storage": {"grid_cell_size": 0}})
        with pytest.raises(ConfigurationError):
            config_from_dict({"storage": {"batch_size": 0}})

    def test_unknown_storage_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"storage": {"wal": True}})


class TestSpatialConfig:
    def test_defaults_enable_the_caches(self):
        config = config_from_dict({})
        assert config.spatial.enabled
        assert config.spatial.route_cache_size == 4096
        assert config.spatial.quantum == 1e-6

    def test_spatial_section_parsed(self):
        config = config_from_dict(
            {
                "spatial": {
                    "enabled": False,
                    "route_cache_size": 128,
                    "los_cache_size": 256,
                    "locate_cache_size": 64,
                    "quantum": 0.001,
                }
            }
        )
        assert not config.spatial.enabled
        assert config.spatial.route_cache_size == 128
        assert config.spatial.los_cache_size == 256
        assert config.spatial.locate_cache_size == 64
        assert config.spatial.quantum == 0.001

    def test_invalid_spatial_options_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"spatial": {"route_cache_size": -1}})
        with pytest.raises(ConfigurationError):
            config_from_dict({"spatial": {"quantum": 0}})

    def test_unknown_spatial_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"spatial": {"warmup": True}})
