"""Unit tests for repro.core.types (record formats of Section 4.2)."""

import pytest

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    METHOD_COMPATIBILITY,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
    method_applies_to,
)


class TestIndoorLocation:
    def test_requires_partition_or_point(self):
        with pytest.raises(ValueError):
            IndoorLocation(building_id="b", floor_id=0)

    def test_symbolic_location(self):
        location = IndoorLocation(building_id="b", floor_id=1, partition_id="room1")
        assert location.is_symbolic
        assert not location.has_point
        with pytest.raises(ValueError):
            location.point()

    def test_coordinate_location(self):
        location = IndoorLocation(building_id="b", floor_id=0, x=3.0, y=4.0)
        assert location.has_point
        assert location.point() == (3.0, 4.0)

    def test_distance_same_floor(self):
        a = IndoorLocation("b", 0, x=0.0, y=0.0)
        b = IndoorLocation("b", 0, x=3.0, y=4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_with_floor_penalty(self):
        a = IndoorLocation("b", 0, x=0.0, y=0.0)
        b = IndoorLocation("b", 2, x=0.0, y=0.0)
        assert a.distance_to(b, floor_penalty=10.0) == pytest.approx(20.0)

    def test_distance_requires_points(self):
        a = IndoorLocation("b", 0, partition_id="p")
        b = IndoorLocation("b", 0, x=1.0, y=1.0)
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_with_partition(self):
        location = IndoorLocation("b", 0, x=1.0, y=2.0)
        annotated = location.with_partition("hall")
        assert annotated.partition_id == "hall"
        assert annotated.point() == (1.0, 2.0)

    def test_record_round_trip(self):
        location = IndoorLocation("b", 1, partition_id="room", x=2.5, y=3.5)
        assert IndoorLocation.from_record(location.as_record()) == location

    def test_record_round_trip_symbolic(self):
        location = IndoorLocation("b", 0, partition_id="room")
        restored = IndoorLocation.from_record(location.as_record())
        assert restored.partition_id == "room"
        assert not restored.has_point


class TestRecords:
    def test_trajectory_record_as_record(self):
        record = TrajectoryRecord(
            "obj1", IndoorLocation("b", 0, partition_id="p", x=1.0, y=2.0), 3.5
        )
        row = record.as_record()
        assert row["object_id"] == "obj1"
        assert row["t"] == 3.5
        assert row["partition_id"] == "p"

    def test_rssi_record_as_record(self):
        row = RSSIRecord("obj1", "ap_1", -62.5, 10.0).as_record()
        assert row == {"object_id": "obj1", "device_id": "ap_1", "rssi": -62.5, "t": 10.0}

    def test_positioning_record_default_method(self):
        record = PositioningRecord("o", IndoorLocation("b", 0, x=0.0, y=0.0), 1.0)
        assert record.method is PositioningMethod.TRILATERATION
        assert record.as_record()["method"] == "trilateration"

    def test_probabilistic_record_best(self):
        loc_a = IndoorLocation("b", 0, partition_id="a", x=0.0, y=0.0)
        loc_b = IndoorLocation("b", 0, partition_id="b", x=5.0, y=5.0)
        record = ProbabilisticPositioningRecord("o", ((loc_a, 0.3), (loc_b, 0.7)), 2.0)
        assert record.best == loc_b
        assert record.best_probability == pytest.approx(0.7)

    def test_probabilistic_record_requires_candidates(self):
        with pytest.raises(ValueError):
            ProbabilisticPositioningRecord("o", tuple(), 0.0)

    def test_proximity_record_duration(self):
        record = ProximityRecord("o", "d", 10.0, 25.0)
        assert record.duration == pytest.approx(15.0)

    def test_proximity_record_rejects_inverted_times(self):
        with pytest.raises(ValueError):
            ProximityRecord("o", "d", 10.0, 5.0)

    def test_device_record_as_record(self):
        record = DeviceRecord(
            "ap_1", DeviceType.WIFI, IndoorLocation("b", 0, x=1.0, y=1.0), 25.0, 1.0
        )
        row = record.as_record()
        assert row["device_type"] == "wifi"
        assert row["detection_range"] == 25.0


class TestMethodCompatibility:
    def test_wifi_supports_all_methods(self):
        for method in PositioningMethod:
            assert method_applies_to(method, DeviceType.WIFI)

    def test_fingerprinting_not_for_rfid_or_bluetooth(self):
        """Section 5: fingerprinting currently does not apply to RFID and Bluetooth."""
        assert not method_applies_to(PositioningMethod.FINGERPRINTING, DeviceType.RFID)
        assert not method_applies_to(PositioningMethod.FINGERPRINTING, DeviceType.BLUETOOTH)

    def test_demo_combinations_are_supported(self):
        """Section 5 demo combinations: RFID+proximity, BLE+trilateration, Wi-Fi+fingerprinting."""
        assert method_applies_to(PositioningMethod.PROXIMITY, DeviceType.RFID)
        assert method_applies_to(PositioningMethod.TRILATERATION, DeviceType.BLUETOOTH)
        assert method_applies_to(PositioningMethod.FINGERPRINTING, DeviceType.WIFI)

    def test_compatibility_table_covers_every_device_type(self):
        assert set(METHOD_COMPATIBILITY) == set(DeviceType)
