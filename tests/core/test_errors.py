"""Unit tests for the exception hierarchy."""

import pytest

from repro.core import errors


class TestHierarchy:
    def test_all_errors_derive_from_vita_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) and issubclass(attribute, Exception):
                if attribute is not errors.VitaError:
                    assert issubclass(attribute, errors.VitaError), name

    def test_ifc_errors_are_dbi_errors(self):
        assert issubclass(errors.IFCParseError, errors.DBIError)
        assert issubclass(errors.IFCExtractionError, errors.DBIError)
        assert issubclass(errors.TopologyError, errors.DBIError)

    def test_routing_error_is_movement_error(self):
        assert issubclass(errors.RoutingError, errors.MovementError)

    def test_radio_map_error_is_positioning_error(self):
        assert issubclass(errors.RadioMapError, errors.PositioningError)


class TestIFCParseError:
    def test_line_number_included_in_message(self):
        error = errors.IFCParseError("bad token", line=17)
        assert "line 17" in str(error)
        assert error.line == 17

    def test_without_line_number(self):
        error = errors.IFCParseError("bad token")
        assert error.line is None
        assert "bad token" in str(error)

    def test_catchable_as_vita_error(self):
        with pytest.raises(errors.VitaError):
            raise errors.IFCParseError("oops", line=1)
