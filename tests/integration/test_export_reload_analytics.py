"""Integration: export a generation run, reload it, and run analytics on it.

This is the downstream-user workflow: generate data with Vita, persist it to
flat files, load it back later (possibly in another process) and evaluate an
algorithm against the preserved ground truth.
"""

import pytest

from repro.analysis.accuracy import evaluate_positioning
from repro.analysis.statistics import trajectory_statistics
from repro.core.toolkit import Vita
from repro.storage.export import (
    import_positioning_csv,
    import_rssi_csv,
    import_trajectories_csv,
)
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI


@pytest.fixture(scope="module")
def exported_run(tmp_path_factory):
    vita = Vita(seed=314)
    vita.use_synthetic_building("office", floors=2)
    vita.deploy_devices("wifi", count_per_floor=6)
    vita.generate_objects(count=8, duration=120.0, time_step=0.5)
    vita.generate_rssi(sampling_period=2.0)
    vita.generate_positioning("trilateration", sampling_period=5.0)
    directory = tmp_path_factory.mktemp("export")
    written = vita.export(directory)
    return vita, written


class TestReload:
    def test_reloaded_counts_match(self, exported_run):
        vita, written = exported_run
        trajectories = import_trajectories_csv(written["trajectories"])
        rssi = import_rssi_csv(written["rssi"])
        positioning = import_positioning_csv(written["positioning"])
        assert len(trajectories) == vita.summary()["trajectory_records"]
        assert len(rssi) == vita.summary()["rssi_records"]
        assert len(positioning) == vita.summary()["positioning_records"]

    def test_reloaded_data_supports_accuracy_evaluation(self, exported_run):
        vita, written = exported_run
        warehouse = DataWarehouse()
        warehouse.trajectories.add_many(import_trajectories_csv(written["trajectories"]))
        ground_truth = warehouse.trajectories.to_trajectory_set()
        estimates = import_positioning_csv(written["positioning"])
        report = evaluate_positioning(estimates, ground_truth)
        assert report.matched > 0
        assert report.mean_error < 20.0
        # The reloaded evaluation matches the in-memory one.
        live_report = evaluate_positioning(
            vita.positioning_output, vita.simulation.trajectories
        )
        assert report.mean_error == pytest.approx(live_report.mean_error, rel=1e-9)

    def test_reloaded_data_supports_stream_queries(self, exported_run):
        _, written = exported_run
        warehouse = DataWarehouse()
        warehouse.trajectories.add_many(import_trajectories_csv(written["trajectories"]))
        warehouse.rssi.add_many(import_rssi_csv(written["rssi"]))
        api = DataStreamAPI(warehouse)
        assert api.snapshot(60.0)
        assert api.partition_visit_counts()
        assert api.rssi_statistics_by_device()

    def test_reloaded_statistics_match_live(self, exported_run):
        vita, written = exported_run
        warehouse = DataWarehouse()
        warehouse.trajectories.add_many(import_trajectories_csv(written["trajectories"]))
        reloaded = trajectory_statistics(warehouse.trajectories.to_trajectory_set())
        live = trajectory_statistics(vita.simulation.trajectories)
        assert reloaded.object_count == live.object_count
        assert reloaded.total_samples == live.total_samples
        assert reloaded.mean_length_m == pytest.approx(live.mean_length_m, rel=1e-9)
