"""Integration tests for the Vita facade (six-step demonstration path)."""

import pytest

from repro.core.errors import VitaError
from repro.core.toolkit import Vita
from repro.core.types import PositioningMethod
from repro.geometry.polygon import Polygon


class TestStepOrderEnforcement:
    def test_steps_require_building_first(self):
        vita = Vita()
        with pytest.raises(VitaError):
            vita.deploy_devices()
        with pytest.raises(VitaError):
            vita.generate_objects()

    def test_rssi_requires_objects_and_devices(self):
        vita = Vita(seed=1)
        vita.use_synthetic_building("office")
        with pytest.raises(VitaError):
            vita.generate_rssi()
        vita.deploy_devices("wifi", count_per_floor=4)
        with pytest.raises(VitaError):
            vita.generate_rssi()

    def test_positioning_requires_rssi(self):
        vita = Vita(seed=1)
        vita.use_synthetic_building("office")
        vita.deploy_devices("wifi", count_per_floor=4)
        vita.generate_objects(count=3, duration=30, time_step=0.5)
        with pytest.raises(VitaError):
            vita.generate_positioning()


class TestSixStepPath:
    @pytest.fixture(scope="class")
    def vita(self):
        vita = Vita(seed=5)
        vita.use_synthetic_building("clinic", floors=1)                 # step 1
        vita.environment.deploy_obstacle(0, Polygon.rectangle(10, 2, 12, 4))  # step 2
        vita.deploy_devices("wifi", count_per_floor=6, deployment="coverage")   # step 3
        vita.generate_objects(count=6, duration=90, time_step=0.5)      # step 4
        vita.generate_rssi(sampling_period=2.0)                         # step 5
        vita.generate_positioning("trilateration", sampling_period=5.0)  # step 6
        return vita

    def test_every_step_produced_data(self, vita):
        summary = vita.summary()
        assert summary["device_records"] == 6
        assert summary["trajectory_records"] > 0
        assert summary["rssi_records"] > 0
        assert summary["positioning_records"] > 0

    def test_stream_api_snapshot(self, vita):
        snapshot = vita.stream_api.snapshot(45.0)
        assert len(snapshot) > 0

    def test_stream_api_is_cached(self, vita):
        assert vita.stream_api is vita.stream_api

    def test_facade_builder_query(self, vita):
        counts = vita.query("trajectory").during(0.0, 45.0).count_by("object_id")
        assert counts and all(count > 0 for count in counts.values())
        assert vita.query("device").count() == 6

    def test_export_writes_files(self, vita, tmp_path):
        written = vita.export(tmp_path)
        assert {"devices", "trajectories", "rssi", "positioning"} <= set(written)
        for path in written.values():
            assert len(open(path, encoding="utf-8").readlines()) > 1

    def test_obstacle_present(self, vita):
        assert len(vita.building.floors[0].obstacles) == 1


class TestMethodSwitching:
    def test_rerun_step6_with_different_methods(self):
        vita = Vita(seed=9)
        vita.use_synthetic_building("office")
        vita.deploy_devices("wifi", count_per_floor=6)
        vita.generate_objects(count=5, duration=60, time_step=0.5)
        vita.generate_rssi(sampling_period=2.0)
        trilateration = vita.generate_positioning("trilateration")
        fingerprinting = vita.generate_positioning(
            "fingerprinting", algorithm="knn", radio_map_spacing=6.0, radio_map_samples=4
        )
        proximity = vita.generate_positioning("proximity")
        assert trilateration and fingerprinting and proximity
        assert vita.radio_map is not None

    def test_string_and_enum_methods_equivalent(self):
        vita = Vita(seed=11)
        vita.use_synthetic_building("office")
        vita.deploy_devices("wifi", count_per_floor=5)
        vita.generate_objects(count=3, duration=30, time_step=0.5)
        vita.generate_rssi()
        by_string = vita.generate_positioning("trilateration")
        by_enum = vita.generate_positioning(PositioningMethod.TRILATERATION)
        assert len(by_string) == len(by_enum)


class TestSessionLifecycle:
    def test_vita_is_a_context_manager_closing_the_backend(self, tmp_path):
        db_path = tmp_path / "session.sqlite"
        with Vita(seed=3, backend="sqlite", db_path=db_path) as vita:
            vita.use_synthetic_building("office", floors=1)
            vita.deploy_devices("wifi", count_per_floor=3)
            assert vita.summary()["device_records"] == 3
        # The backend connection is released: further reads must fail ...
        with pytest.raises(Exception):
            vita.warehouse.summary()
        # ... and the data is durable for a fresh session over the same file.
        from repro.storage.repositories import DataWarehouse

        with DataWarehouse.open("sqlite", path=str(db_path)) as reopened:
            assert reopened.summary()["device_records"] == 3

    def test_close_is_idempotent(self):
        vita = Vita()
        vita.close()
        vita.close()


class TestDBIImportPath:
    def test_import_written_ifc_file(self, tmp_path, office):
        from repro.ifc.writer import write_ifc

        path = write_ifc(office, str(tmp_path / "office.ifc"))
        vita = Vita(seed=2)
        building = vita.import_dbi(path)
        assert building.partition_count == office.partition_count
        assert vita.extraction_report is not None
        assert vita.extraction_report.errors == []
