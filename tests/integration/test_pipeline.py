"""Integration tests: the declarative three-layer pipeline."""

import pytest

from repro.core.config import config_from_dict
from repro.core.pipeline import VitaPipeline
from repro.core.types import PositioningMethod, PositioningRecord, ProximityRecord
from repro.analysis.accuracy import evaluate_positioning


def _base_config(**overrides):
    payload = {
        "environment": {"building": "office", "floors": 2},
        "devices": [{"type": "wifi", "count_per_floor": 6, "deployment": "coverage"}],
        "objects": {"count": 8, "duration": 120, "time_step": 0.5, "seed": 13},
        "rssi": {"sampling_period": 2.0},
        "positioning": {"method": "trilateration", "sampling_period": 5.0},
        "seed": 13,
    }
    payload.update(overrides)
    return config_from_dict(payload)


@pytest.fixture(scope="module")
def trilateration_result():
    return VitaPipeline(_base_config()).run()


class TestFullRun:
    def test_all_layers_produce_data(self, trilateration_result):
        summary = trilateration_result.warehouse.summary()
        assert summary["device_records"] == 12
        assert summary["trajectory_records"] > 500
        assert summary["rssi_records"] > summary["trajectory_records"] / 4
        assert summary["positioning_records"] > 20

    def test_timings_recorded_per_layer(self, trilateration_result):
        assert set(trilateration_result.timings) == {
            "infrastructure", "moving_objects", "rssi", "positioning", "storage",
        }
        assert all(value >= 0 for value in trilateration_result.timings.values())

    def test_positioning_is_consistent_with_ground_truth(self, trilateration_result):
        report = evaluate_positioning(
            trilateration_result.positioning_output,
            trilateration_result.simulation.trajectories,
        )
        assert report.matched > 0
        assert report.mean_error < 15.0

    def test_summary_property(self, trilateration_result):
        summary = trilateration_result.summary
        assert "seconds_rssi" in summary
        assert summary["trajectory_records"] > 0


class TestMethodVariants:
    def test_fingerprinting_bayes_pipeline(self):
        config = _base_config(
            positioning={"method": "fingerprinting", "algorithm": "bayes",
                         "sampling_period": 5.0, "radio_map_spacing": 6.0,
                         "radio_map_samples": 4},
        )
        result = VitaPipeline(config).run()
        assert result.radio_map is not None and len(result.radio_map) > 0
        assert len(result.warehouse.probabilistic) > 0
        assert len(result.warehouse.positioning) == 0

    def test_proximity_pipeline_with_rfid(self):
        config = _base_config(
            devices=[{"type": "rfid", "count_per_floor": 5, "deployment": "check-point"}],
            positioning={"method": "proximity"},
        )
        result = VitaPipeline(config).run()
        assert len(result.warehouse.proximity) > 0
        assert all(isinstance(record, ProximityRecord) for record in result.positioning_output)

    def test_crowd_outliers_and_decomposition(self):
        config = _base_config(
            environment={"building": "mall", "floors": 2, "decompose": True},
            objects={"count": 10, "duration": 60, "time_step": 0.5,
                     "distribution": "crowd-outliers", "seed": 3},
        )
        result = VitaPipeline(config).run()
        assert result.building.partition_count > 26  # decomposition split the atrium
        assert result.warehouse.summary()["trajectory_records"] > 0

    def test_reproducible_runs(self):
        first = VitaPipeline(_base_config()).run()
        second = VitaPipeline(_base_config()).run()
        assert first.warehouse.summary() == {
            key: value for key, value in second.warehouse.summary().items()
        }
