"""Integration test reproducing the demonstration scenarios of Section 5.

The demo shows the six-step path on DBI files from clinics, malls and office
buildings, and exercises the device/method combinations RFID + proximity,
Bluetooth + trilateration and Wi-Fi + fingerprinting.
"""

import pytest

from repro.core.toolkit import Vita
from repro.core.types import (
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
)
from repro.ifc.writer import write_ifc
from repro.building.synthetic import building_by_name


@pytest.fixture(scope="module", params=["office", "mall", "clinic"])
def dbi_file(request, tmp_path_factory):
    """A DBI (IFC) file for each of the three demo building archetypes."""
    building = building_by_name(request.param, floors=2 if request.param != "clinic" else 1)
    path = tmp_path_factory.mktemp("dbi") / f"{request.param}.ifc"
    return str(write_ifc(building, str(path)))


class TestDemoCombinations:
    def test_rfid_proximity(self, dbi_file):
        """Demo combination 1: RFID + proximity."""
        vita = Vita(seed=21)
        vita.import_dbi(dbi_file)
        vita.deploy_devices("rfid", count_per_floor=5, deployment="check-point")
        vita.generate_objects(count=5, duration=90, time_step=0.5)
        vita.generate_rssi(sampling_period=1.0)
        output = vita.generate_positioning("proximity")
        assert output
        assert all(isinstance(record, ProximityRecord) for record in output)

    def test_bluetooth_trilateration(self, dbi_file):
        """Demo combination 2: Bluetooth + trilateration."""
        vita = Vita(seed=22)
        vita.import_dbi(dbi_file)
        vita.deploy_devices(
            "bluetooth", count_per_floor=8, deployment="coverage", detection_range=20.0
        )
        vita.generate_objects(count=5, duration=90, time_step=0.5)
        vita.generate_rssi(sampling_period=1.0)
        output = vita.generate_positioning("trilateration", sampling_period=5.0)
        assert output
        assert all(isinstance(record, PositioningRecord) for record in output)

    def test_wifi_fingerprinting(self, dbi_file):
        """Demo combination 3: Wi-Fi + fingerprinting."""
        vita = Vita(seed=23)
        vita.import_dbi(dbi_file)
        vita.deploy_devices("wifi", count_per_floor=6, deployment="coverage")
        vita.generate_objects(count=5, duration=90, time_step=0.5)
        vita.generate_rssi(sampling_period=1.0)
        output = vita.generate_positioning(
            "fingerprinting", algorithm="bayes",
            radio_map_spacing=6.0, radio_map_samples=4,
        )
        assert output
        assert all(isinstance(record, ProbabilisticPositioningRecord) for record in output)

    def test_snapshot_during_generation(self, dbi_file):
        """The demo pauses generation to extract a snapshot of the moving objects."""
        vita = Vita(seed=24)
        vita.import_dbi(dbi_file)
        vita.deploy_devices("wifi", count_per_floor=4)
        result = vita.generate_objects(
            count=6, duration=60, time_step=0.5, snapshot_times=[30.0]
        )
        assert 30.0 in result.snapshots
        assert len(result.snapshots[30.0]) == 6
