"""Parallel generation must be record-identical to serial generation.

The determinism contract of the streaming pipeline: for a fixed master seed
and shard count, ``Vita.generate(workers=N)`` stores exactly the same records
in exactly the same order as ``workers=1``, on every storage backend.  The
comparison is record-level through the composable query builder.
"""

import pytest

from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    PositioningLayerConfig,
    RSSIConfig,
    VitaConfig,
)
from repro.core.toolkit import Vita
from repro.core.types import DeviceType, PositioningMethod

DATASETS = ("trajectory", "rssi", "positioning", "probabilistic", "proximity", "device")


def _config(**overrides):
    defaults = dict(
        environment=EnvironmentConfig(building="clinic", floors=1),
        devices=[DeviceConfig(count_per_floor=4)],
        objects=ObjectConfig(
            count=6, duration=40.0, time_step=0.5, min_lifespan=20.0, max_lifespan=40.0
        ),
        rssi=RSSIConfig(sampling_period=2.0),
        positioning=PositioningLayerConfig(sampling_period=5.0),
        seed=11,
        shards=3,
    )
    defaults.update(overrides)
    return VitaConfig(**defaults)


def _generate_snapshot(backend, db_path, config, workers):
    """Run ``Vita.generate`` and snapshot every dataset via the query builder."""
    kwargs = {"backend": backend}
    if backend == "sqlite":
        kwargs["db_path"] = str(db_path)
    with Vita(**kwargs) as vita:
        report = vita.generate(config, workers=workers).report
        snapshot = {dataset: vita.query(dataset).all() for dataset in DATASETS}
    return report, snapshot


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_workers_4_matches_workers_1(self, backend, tmp_path):
        _, serial = _generate_snapshot(backend, tmp_path / "serial.sqlite", _config(), workers=1)
        _, parallel = _generate_snapshot(
            backend, tmp_path / "parallel.sqlite", _config(), workers=4
        )
        assert serial["trajectory"], "the run generated no data; the comparison is vacuous"
        assert serial["rssi"] and serial["positioning"]
        for dataset in DATASETS:
            assert serial[dataset] == parallel[dataset], (
                f"{dataset}: workers=4 diverged from workers=1 on {backend}"
            )

    def test_memory_and_sqlite_store_identical_records(self, tmp_path):
        # Cross-backend: the same parallel run lands identically on both engines.
        _, memory = _generate_snapshot("memory", None, _config(), workers=2)
        _, sqlite = _generate_snapshot("sqlite", tmp_path / "x.sqlite", _config(), workers=2)
        for dataset in DATASETS:
            assert memory[dataset] == sqlite[dataset]

    def test_workers_do_not_change_the_reported_seed_or_shards(self, tmp_path):
        serial_report, _ = _generate_snapshot("memory", None, _config(), workers=1)
        parallel_report, _ = _generate_snapshot("memory", None, _config(), workers=4)
        assert serial_report.master_seed == parallel_report.master_seed == 11
        assert serial_report.shard_count == parallel_report.shard_count == 3
        assert serial_report.total_records == parallel_report.total_records

    def test_proximity_method_is_also_worker_independent(self, tmp_path):
        config = _config(
            devices=[DeviceConfig(device_type=DeviceType.RFID, count_per_floor=3)],
            positioning=PositioningLayerConfig(
                method=PositioningMethod.PROXIMITY, sampling_period=5.0
            ),
        )
        _, serial = _generate_snapshot("memory", None, config, workers=1)
        _, parallel = _generate_snapshot("memory", None, config, workers=2)
        assert serial["proximity"] == parallel["proximity"]
        assert serial["trajectory"] == parallel["trajectory"]


class TestShardCountChangesOutputButWorkersDoNot:
    def test_different_shard_counts_are_different_datasets(self):
        # Sanity check of the contract's fine print: shard count is part of
        # the determinism key (it changes the partition and seeds)...
        _, two = _generate_snapshot("memory", None, _config(shards=2), workers=1)
        _, three = _generate_snapshot("memory", None, _config(shards=3), workers=1)
        assert two["trajectory"] != three["trajectory"]

    def test_same_shard_count_is_reproducible_across_runs(self):
        # ...while re-running the same configuration reproduces the dataset.
        _, first = _generate_snapshot("memory", None, _config(), workers=2)
        _, second = _generate_snapshot("memory", None, _config(), workers=3)
        for dataset in DATASETS:
            assert first[dataset] == second[dataset]
