"""Unit tests for the DBI processor (IFC model → building)."""

import pytest

from repro.core.errors import IFCExtractionError
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions
from repro.ifc.parser import parse_ifc_text

TWO_ROOM_FLOOR = """ISO-10303-21;
HEADER;
FILE_SCHEMA(('IFC2X3'));
ENDSEC;
DATA;
#1=IFCBUILDING('G1','demo','Demo');
#2=IFCBUILDINGSTOREY('G2','Floor 0',0.0,#1);
#10=IFCCARTESIANPOINT((0.,0.));
#11=IFCCARTESIANPOINT((10.,0.));
#12=IFCCARTESIANPOINT((10.,8.));
#13=IFCCARTESIANPOINT((0.,8.));
#14=IFCPOLYLINE((#10,#11,#12,#13));
#20=IFCSPACE('G3','room_a','Canteen A',#2,#14,'room');
#21=IFCCARTESIANPOINT((10.,0.));
#22=IFCCARTESIANPOINT((20.,0.));
#23=IFCCARTESIANPOINT((20.,8.));
#24=IFCCARTESIANPOINT((10.,8.));
#25=IFCPOLYLINE((#21,#22,#23,#24));
#26=IFCSPACE('G4','room_b','Office B',#2,#25,'office');
#30=IFCCARTESIANPOINT((10.,4.));
#31=IFCDOOR('G5','door_ab',#2,#30,1.2);
#40=IFCCARTESIANPOINT((0.,4.));
#41=IFCDOOR('G6','door_entry',#2,#40,1.5);
ENDSEC;
END-ISO-10303-21;
"""


class TestDoorConnectivityRecovery:
    """Section 4.1: connected partitions are recovered by geometry, not read from IFC."""

    def test_interior_door_connects_its_two_rooms(self):
        building, report = DBIProcessor().process_text(TWO_ROOM_FLOOR)
        door = building.floors[0].doors["door_ab"]
        assert set(door.partitions) == {"room_a", "room_b"}
        assert report.door_connectivity["door_ab"] == door.partitions

    def test_boundary_door_becomes_entrance(self):
        building, _ = DBIProcessor().process_text(TWO_ROOM_FLOOR)
        door = building.floors[0].doors["door_entry"]
        assert door.is_entrance

    def test_orphan_door_is_reported_as_error(self):
        broken = TWO_ROOM_FLOOR.replace("#40=IFCCARTESIANPOINT((0.,4.));",
                                        "#40=IFCCARTESIANPOINT((500.,400.));")
        building, report = DBIProcessor().process_text(broken)
        assert any("door_entry" in error for error in report.errors)
        assert "door_entry" not in building.floors[0].doors

    def test_strict_mode_raises_on_errors(self):
        broken = TWO_ROOM_FLOOR.replace("#40=IFCCARTESIANPOINT((0.,4.));",
                                        "#40=IFCCARTESIANPOINT((500.,400.));")
        with pytest.raises(IFCExtractionError):
            DBIProcessor(DBIProcessorOptions(strict=True)).process_text(broken)


class TestPartitionExtraction:
    def test_partitions_follow_space_footprints(self):
        building, _ = DBIProcessor().process_text(TWO_ROOM_FLOOR)
        assert building.partition_count == 2
        room_a = building.partition(0, "room_a")
        assert room_a.area == pytest.approx(80.0)

    def test_degenerate_space_reported(self):
        broken = TWO_ROOM_FLOOR.replace("#14=IFCPOLYLINE((#10,#11,#12,#13));",
                                        "#14=IFCPOLYLINE((#10,#11,#10,#11));")
        building, report = DBIProcessor().process_text(broken)
        assert any("room_a" in error for error in report.errors)
        assert "room_a" not in building.floors[0].partitions

    def test_semantic_extraction_applied_by_default(self):
        building, _ = DBIProcessor().process_text(TWO_ROOM_FLOOR)
        assert building.partition(0, "room_a").semantic_tag == "canteen"

    def test_semantic_extraction_can_be_disabled(self):
        options = DBIProcessorOptions(extract_semantics=False)
        building, _ = DBIProcessor(options).process_text(TWO_ROOM_FLOOR)
        assert building.partition(0, "room_a").semantic_tag is None

    def test_missing_storey_raises(self):
        broken = TWO_ROOM_FLOOR.replace("#2=IFCBUILDINGSTOREY('G2','Floor 0',0.0,#1);\n", "")
        with pytest.raises(Exception):
            DBIProcessor().process_text(broken)

    def test_entity_counts_in_report(self):
        _, report = DBIProcessor().process_text(TWO_ROOM_FLOOR)
        assert report.entity_counts["spaces"] == 2
        assert report.entity_counts["doors"] == 2


class TestDecompositionOption:
    def test_decomposition_summary_present_when_enabled(self):
        from repro.geometry.decompose import DecompositionConfig

        options = DBIProcessorOptions(
            decompose_partitions=True,
            decomposition=DecompositionConfig(max_area=30.0, max_aspect_ratio=2.0),
        )
        building, report = DBIProcessor(options).process_text(TWO_ROOM_FLOOR)
        assert report.decomposition_summary is not None
        assert report.decomposition_summary["partitions_split"] >= 1
        assert building.partition_count > 2
