"""Round-trip tests: building → IFC text → building.

These exercise the whole DBI path of Section 4.1 on the three synthetic
archetype buildings, including the staircase-connectivity recovery and the
error-injection facility used to test "identify and fix parse errors".
"""

import pytest

from repro.building.synthetic import clinic_building, mall_building, office_building
from repro.building.topology import AccessibilityGraph
from repro.ifc.extractor import DBIProcessor
from repro.ifc.parser import parse_ifc_text
from repro.ifc.writer import ErrorInjection, building_to_ifc, write_ifc


@pytest.fixture(scope="module", params=["office", "mall", "clinic"])
def original(request):
    if request.param == "office":
        return office_building()
    if request.param == "mall":
        return mall_building()
    return clinic_building()


@pytest.fixture(scope="module")
def round_tripped(original):
    text = building_to_ifc(original)
    building, report = DBIProcessor().process_text(text)
    return original, building, report


class TestRoundTrip:
    def test_floor_count_preserved(self, round_tripped):
        original, rebuilt, _ = round_tripped
        assert len(rebuilt.floors) == len(original.floors)

    def test_partition_count_preserved(self, round_tripped):
        original, rebuilt, _ = round_tripped
        assert rebuilt.partition_count == original.partition_count

    def test_partition_areas_preserved(self, round_tripped):
        original, rebuilt, _ = round_tripped
        for floor_id in original.floor_ids:
            for partition_id, partition in original.floors[floor_id].partitions.items():
                rebuilt_partition = rebuilt.partition(floor_id, partition_id)
                assert rebuilt_partition.area == pytest.approx(partition.area, rel=1e-4)

    def test_door_count_preserved(self, round_tripped):
        original, rebuilt, _ = round_tripped
        assert rebuilt.door_count == original.door_count

    def test_door_connectivity_recovered(self, round_tripped):
        """The writer drops door-partition links; the extractor must recover them."""
        original, rebuilt, _ = round_tripped
        for floor_id in original.floor_ids:
            for door_id, door in original.floors[floor_id].doors.items():
                rebuilt_door = rebuilt.floors[floor_id].doors[door_id]
                assert set(rebuilt_door.partitions) == set(door.partitions)

    def test_staircase_connectivity_recovered(self, round_tripped):
        """Section 4.1's two-step staircase resolution yields the original links."""
        original, rebuilt, _ = round_tripped
        assert set(rebuilt.staircases) == set(original.staircases)
        for staircase_id, staircase in original.staircases.items():
            rebuilt_staircase = rebuilt.staircases[staircase_id]
            assert rebuilt_staircase.lower_floor == staircase.lower_floor
            assert rebuilt_staircase.upper_floor == staircase.upper_floor
            assert rebuilt_staircase.lower_partition == staircase.lower_partition
            assert rebuilt_staircase.upper_partition == staircase.upper_partition

    def test_no_errors_reported_for_clean_files(self, round_tripped):
        _, _, report = round_tripped
        assert report.errors == []

    def test_rebuilt_building_is_connected(self, round_tripped):
        _, rebuilt, _ = round_tripped
        assert AccessibilityGraph(rebuilt).is_fully_connected()


class TestFileIO:
    def test_write_and_process_file(self, tmp_path):
        building = office_building()
        path = write_ifc(building, str(tmp_path / "office.ifc"))
        rebuilt, report = DBIProcessor().process_file(path)
        assert rebuilt.partition_count == building.partition_count
        assert report.errors == []

    def test_written_text_is_parseable_ifc(self):
        text = building_to_ifc(clinic_building())
        model = parse_ifc_text(text)
        assert model.building is not None
        assert len(model.spaces) > 0


class TestErrorInjection:
    def test_orphan_door_injection_produces_errors(self):
        building = office_building()
        text = building_to_ifc(building, ErrorInjection(orphan_doors=2))
        _, report = DBIProcessor().process_text(text)
        assert len(report.errors) >= 2

    def test_degenerate_space_injection_produces_errors(self):
        building = office_building()
        text = building_to_ifc(building, ErrorInjection(degenerate_spaces=1))
        rebuilt, report = DBIProcessor().process_text(text)
        assert len(report.errors) >= 1
        assert rebuilt.partition_count == building.partition_count - 1

    def test_clean_injection_is_no_op(self):
        building = office_building()
        assert building_to_ifc(building, ErrorInjection()) == building_to_ifc(building)
