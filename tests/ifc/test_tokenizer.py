"""Unit tests for the STEP (IFC-SPF) tokenizer."""

import pytest

from repro.core.errors import IFCParseError
from repro.ifc.tokenizer import EntityRef, EnumValue, WILDCARD, tokenize

MINIMAL = """ISO-10303-21;
HEADER;
FILE_DESCRIPTION(('demo'),'2;1');
FILE_SCHEMA(('IFC2X3'));
ENDSEC;
DATA;
#1=IFCBUILDING('GUID1','office','Synthetic office');
#2=IFCCARTESIANPOINT((0.,0.));
#3=IFCCARTESIANPOINT((10.,0.,3.5));
#4=IFCPOLYLINE((#2,#3));
#5=IFCBUILDINGSTOREY('GUID2','Floor 0',0.0,#1);
ENDSEC;
END-ISO-10303-21;
"""


class TestBasicParsing:
    def test_instances_are_indexed_by_id(self):
        step = tokenize(MINIMAL)
        assert len(step) == 5
        assert step.instances[1].type_name == "IFCBUILDING"

    def test_header_sections_parsed(self):
        step = tokenize(MINIMAL)
        assert "FILE_SCHEMA" in step.header
        assert step.header["FILE_SCHEMA"] == [["IFC2X3"]]

    def test_semicolon_inside_string_does_not_split(self):
        step = tokenize(MINIMAL)
        assert step.header["FILE_DESCRIPTION"] == [["demo"], "2;1"]

    def test_string_arguments(self):
        step = tokenize(MINIMAL)
        assert step.instances[1].arguments[:2] == ["GUID1", "office"]

    def test_numeric_list_arguments(self):
        step = tokenize(MINIMAL)
        assert step.instances[2].arguments == [[0.0, 0.0]]
        assert step.instances[3].arguments == [[10.0, 0.0, 3.5]]

    def test_reference_arguments(self):
        step = tokenize(MINIMAL)
        refs = step.instances[4].arguments[0]
        assert refs == [EntityRef(2), EntityRef(3)]

    def test_mixed_arguments(self):
        step = tokenize(MINIMAL)
        storey = step.instances[5]
        assert storey.arguments[2] == 0.0
        assert storey.arguments[3] == EntityRef(1)

    def test_by_type_is_sorted_and_case_insensitive(self):
        step = tokenize(MINIMAL)
        points = step.by_type("IfcCartesianPoint")
        assert [p.entity_id for p in points] == [2, 3]

    def test_resolve_reference(self):
        step = tokenize(MINIMAL)
        target = step.resolve(EntityRef(2))
        assert target is not None and target.type_name == "IFCCARTESIANPOINT"
        assert step.resolve("not a ref") is None


class TestSpecialTokens:
    def test_dollar_is_none_and_star_is_wildcard(self):
        text = MINIMAL.replace(
            "#1=IFCBUILDING('GUID1','office','Synthetic office');",
            "#1=IFCBUILDING('GUID1',$,*);",
        )
        step = tokenize(text)
        assert step.instances[1].arguments[1] is None
        assert step.instances[1].arguments[2] is WILDCARD

    def test_enum_values(self):
        text = MINIMAL.replace(
            "#5=IFCBUILDINGSTOREY('GUID2','Floor 0',0.0,#1);",
            "#5=IFCBUILDINGSTOREY('GUID2','Floor 0',0.0,#1,.ELEMENT.);",
        )
        step = tokenize(text)
        assert step.instances[5].arguments[4] == EnumValue("ELEMENT")

    def test_escaped_quote_in_string(self):
        text = MINIMAL.replace("'office'", "'John''s office'")
        step = tokenize(text)
        assert step.instances[1].arguments[1] == "John's office"

    def test_comments_are_ignored(self):
        text = MINIMAL.replace("DATA;", "DATA;\n/* a comment; with a semicolon */")
        assert len(tokenize(text)) == 5

    def test_multiline_instance(self):
        text = MINIMAL.replace(
            "#4=IFCPOLYLINE((#2,#3));",
            "#4=IFCPOLYLINE((\n  #2,\n  #3\n));",
        )
        step = tokenize(text)
        assert step.instances[4].arguments[0] == [EntityRef(2), EntityRef(3)]

    def test_negative_and_exponent_numbers(self):
        text = MINIMAL.replace("((0.,0.))", "((-1.5e1,2E-2))")
        step = tokenize(text)
        assert step.instances[2].arguments[0] == [-15.0, 0.02]

    def test_instance_arg_accessor_defaults(self):
        step = tokenize(MINIMAL)
        building = step.instances[1]
        assert building.arg(0) == "GUID1"
        assert building.arg(10, "fallback") == "fallback"


class TestErrorHandling:
    def test_missing_iso_marker(self):
        with pytest.raises(IFCParseError):
            tokenize("DATA;\n#1=IFCBUILDING('a','b','c');\nENDSEC;")

    def test_duplicate_instance_id(self):
        text = MINIMAL.replace(
            "#5=IFCBUILDINGSTOREY('GUID2','Floor 0',0.0,#1);",
            "#1=IFCBUILDINGSTOREY('GUID2','Floor 0',0.0,#1);",
        )
        with pytest.raises(IFCParseError):
            tokenize(text)

    def test_malformed_instance(self):
        text = MINIMAL.replace(
            "#2=IFCCARTESIANPOINT((0.,0.));", "#2 IFCCARTESIANPOINT((0.,0.));"
        )
        with pytest.raises(IFCParseError):
            tokenize(text)

    def test_unterminated_string(self):
        text = MINIMAL.replace("'office'", "'office")
        with pytest.raises(IFCParseError):
            tokenize(text)

    def test_error_carries_line_number(self):
        text = MINIMAL.replace(
            "#2=IFCCARTESIANPOINT((0.,0.));", "#2=IFCCARTESIANPOINT((0.,,0.));"
        )
        with pytest.raises(IFCParseError) as excinfo:
            tokenize(text)
        assert excinfo.value.line is not None
