"""Unit tests for the typed IFC parser."""

import pytest

from repro.core.errors import IFCParseError
from repro.ifc.parser import parse_ifc_text

VALID = """ISO-10303-21;
HEADER;
FILE_SCHEMA(('IFC2X3'));
ENDSEC;
DATA;
#1=IFCBUILDING('G1','demo','Demo building');
#2=IFCBUILDINGSTOREY('G2','Floor 0',0.0,#1);
#3=IFCBUILDINGSTOREY('G3','Floor 1',3.0,#1);
#10=IFCCARTESIANPOINT((0.,0.));
#11=IFCCARTESIANPOINT((10.,0.));
#12=IFCCARTESIANPOINT((10.,8.));
#13=IFCCARTESIANPOINT((0.,8.));
#14=IFCPOLYLINE((#10,#11,#12,#13));
#20=IFCSPACE('G4','room_a','Room A',#2,#14,'room');
#30=IFCCARTESIANPOINT((5.,0.));
#31=IFCDOOR('G5','door_a',#2,#30,1.2);
#40=IFCCARTESIANPOINT((2.,2.,0.));
#41=IFCCARTESIANPOINT((3.,2.,0.));
#42=IFCCARTESIANPOINT((2.,2.,3.));
#43=IFCCARTESIANPOINT((3.,2.,3.));
#44=IFCSTAIRFLIGHT('G6','stair_a',(#40,#41,#42,#43));
ENDSEC;
END-ISO-10303-21;
"""


class TestValidModel:
    def test_building_parsed(self):
        model = parse_ifc_text(VALID)
        assert model.building is not None
        assert model.building.name == "demo"

    def test_storeys_sorted_by_elevation(self):
        model = parse_ifc_text(VALID)
        storeys = model.storeys_by_elevation()
        assert [s.elevation for s in storeys] == [0.0, 3.0]
        assert storeys[0].building_ref == 1

    def test_space_boundary_resolved(self):
        model = parse_ifc_text(VALID)
        space = model.spaces[0]
        assert space.name == "room_a"
        assert space.storey_ref == 2
        assert space.boundary.xy() == [(0, 0), (10, 0), (10, 8), (0, 8)]

    def test_door_position_resolved(self):
        model = parse_ifc_text(VALID)
        door = model.doors[0]
        assert door.name == "door_a"
        assert (door.position.x, door.position.y) == (5.0, 0.0)
        assert door.width == pytest.approx(1.2)

    def test_stair_points_resolved(self):
        model = parse_ifc_text(VALID)
        stair = model.stairs[0]
        assert len(stair.points) == 4
        assert stair.z_values() == [0.0, 3.0]
        assert len(stair.points_at_z(3.0)) == 2

    def test_entity_counts(self):
        model = parse_ifc_text(VALID)
        assert model.entity_counts == {"storeys": 2, "spaces": 1, "doors": 1, "stairs": 1}

    def test_spaces_and_doors_on_storey(self):
        model = parse_ifc_text(VALID)
        assert len(model.spaces_on(2)) == 1
        assert len(model.spaces_on(3)) == 0
        assert len(model.doors_on(2)) == 1


class TestInvalidModels:
    def test_dangling_reference(self):
        broken = VALID.replace("#20=IFCSPACE('G4','room_a','Room A',#2,#14,'room');",
                               "#20=IFCSPACE('G4','room_a','Room A',#2,#99,'room');")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)

    def test_wrong_reference_type(self):
        broken = VALID.replace("#31=IFCDOOR('G5','door_a',#2,#30,1.2);",
                               "#31=IFCDOOR('G5','door_a',#14,#30,1.2);")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)

    def test_polyline_with_too_few_points(self):
        broken = VALID.replace("#14=IFCPOLYLINE((#10,#11,#12,#13));",
                               "#14=IFCPOLYLINE((#10,#11));")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)

    def test_non_numeric_elevation(self):
        broken = VALID.replace("#2=IFCBUILDINGSTOREY('G2','Floor 0',0.0,#1);",
                               "#2=IFCBUILDINGSTOREY('G2','Floor 0','zero',#1);")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)

    def test_door_with_non_positive_width(self):
        broken = VALID.replace("#31=IFCDOOR('G5','door_a',#2,#30,1.2);",
                               "#31=IFCDOOR('G5','door_a',#2,#30,0);")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)

    def test_stair_without_points(self):
        broken = VALID.replace("#44=IFCSTAIRFLIGHT('G6','stair_a',(#40,#41,#42,#43));",
                               "#44=IFCSTAIRFLIGHT('G6','stair_a',());")
        with pytest.raises(IFCParseError):
            parse_ifc_text(broken)
