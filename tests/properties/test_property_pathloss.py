"""Property-based tests for the path loss and noise models."""

import math

from hypothesis import given, strategies as st

from repro.rssi.noise import ObstacleNoiseModel
from repro.rssi.pathloss import MIN_TRANSMISSION_DISTANCE, PathLossModel

exponents = st.floats(min_value=1.5, max_value=5.0, allow_nan=False)
calibrations = st.floats(min_value=-70.0, max_value=-20.0, allow_nan=False)
distances = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


class TestPathLossProperties:
    @given(exponents, calibrations, distances, distances)
    def test_monotonically_non_increasing(self, exponent, calibration, d1, d2):
        model = PathLossModel(exponent=exponent, calibration_rssi=calibration)
        nearer, farther = sorted((d1, d2))
        assert model.rssi_at(nearer) >= model.rssi_at(farther)

    @given(exponents, calibrations, distances)
    def test_inverse_round_trip(self, exponent, calibration, distance):
        model = PathLossModel(exponent=exponent, calibration_rssi=calibration)
        clamped = max(distance, MIN_TRANSMISSION_DISTANCE)
        recovered = model.distance_from_rssi(model.rssi_at(distance))
        assert math.isclose(recovered, clamped, rel_tol=1e-6)

    @given(exponents, calibrations, distances)
    def test_rssi_is_finite(self, exponent, calibration, distance):
        model = PathLossModel(exponent=exponent, calibration_rssi=calibration)
        assert math.isfinite(model.rssi_at(distance))

    @given(exponents, calibrations)
    def test_calibration_anchor_at_one_meter(self, exponent, calibration):
        model = PathLossModel(exponent=exponent, calibration_rssi=calibration)
        assert math.isclose(model.rssi_at(1.0), calibration, abs_tol=1e-9)


class TestObstacleNoiseProperties:
    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_attenuation_never_positive_and_bounded(self, walls, obstacles, wall_db, obstacle_db):
        model = ObstacleNoiseModel(
            wall_attenuation_db=wall_db,
            obstacle_attenuation_db=obstacle_db,
            max_attenuation_db=25.0,
        )
        value = model.attenuation_from_counts(walls, obstacles)
        assert -25.0 <= value <= 0.0

    @given(st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10))
    def test_more_walls_never_increase_signal(self, fewer, extra):
        model = ObstacleNoiseModel()
        assert model.attenuation_from_counts(fewer + extra, 0) <= model.attenuation_from_counts(fewer, 0)
