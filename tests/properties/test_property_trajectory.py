"""Property-based tests for trajectories and simulated movement invariants."""

from hypothesis import given, settings, strategies as st

from repro.building.synthetic import office_building
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.mobility.behavior import ContinuousWalkBehavior
from repro.mobility.engine import EngineConfig, SimulationEngine
from repro.mobility.objects import Lifespan, MovingObject
from repro.mobility.trajectory import Trajectory
from repro.geometry.point import Point


@st.composite
def monotone_walks(draw):
    """A synthetic trajectory with strictly increasing timestamps."""
    count = draw(st.integers(min_value=2, max_value=30))
    start = draw(st.floats(min_value=0.0, max_value=100.0))
    gaps = draw(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=count - 1, max_size=count - 1)
    )
    xs = draw(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=count, max_size=count))
    trajectory = Trajectory("obj")
    t = start
    times = [t]
    for gap in gaps:
        t += gap
        times.append(t)
    for timestamp, x in zip(times, xs):
        trajectory.append(
            TrajectoryRecord("obj", IndoorLocation("b", 0, partition_id="p", x=x, y=0.0), timestamp)
        )
    return trajectory


class TestTrajectoryProperties:
    @settings(max_examples=50, deadline=None)
    @given(monotone_walks())
    def test_interpolation_stays_within_x_range(self, trajectory):
        xs = [record.location.x for record in trajectory.records]
        lo, hi = min(xs), max(xs)
        span = trajectory.end_time - trajectory.start_time
        for fraction in (0.0, 0.3, 0.7, 1.0):
            location = trajectory.location_at(trajectory.start_time + span * fraction)
            assert location is not None
            assert lo - 1e-6 <= location.x <= hi + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(monotone_walks(), st.floats(min_value=0.2, max_value=10.0))
    def test_resampling_never_extends_lifespan(self, trajectory, period):
        resampled = trajectory.resample(period)
        assert resampled.start_time >= trajectory.start_time - 1e-9
        assert resampled.end_time <= trajectory.end_time + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(monotone_walks(), st.floats(min_value=0.2, max_value=10.0))
    def test_resampling_timestamps_monotone(self, trajectory, period):
        resampled = trajectory.resample(period)
        times = [record.t for record in resampled.records]
        assert times == sorted(times)


class TestSimulationInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.6, max_value=2.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_simulated_objects_respect_speed_and_stay_indoors(self, count, max_speed, seed):
        building = office_building()
        engine = SimulationEngine(
            building,
            config=EngineConfig(duration=40.0, time_step=0.5, sampling_period=1.0, seed=seed),
            behavior=ContinuousWalkBehavior(speed_fraction=1.0),
        )
        objects = []
        for index in range(count):
            moving_object = MovingObject(
                object_id=f"o{index}",
                max_speed=max_speed,
                lifespan=Lifespan(0.0, 40.0),
            )
            moving_object.place_at(0, Point(4.0 + index * 2.0, 3.0))
            objects.append(moving_object)
        result = engine.run(objects)
        for trajectory in result.trajectories:
            records = trajectory.records
            for previous, current in zip(records, records[1:]):
                # Invariant 1: every sample lies inside a partition.
                assert current.location.partition_id is not None
                # Invariant 2: planar speed never exceeds the configured maximum.
                if previous.location.floor_id == current.location.floor_id:
                    distance = previous.location.distance_to(current.location)
                    elapsed = current.t - previous.t
                    assert distance <= max_speed * elapsed + 1e-6
