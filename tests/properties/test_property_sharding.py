"""Property-based tests for the deterministic sharding scheme.

Three invariants of the streaming pipeline:

* the shard partition covers every object index exactly once;
* per-shard seeds are a pure, stable function of ``(master_seed, shard_id,
  role)`` — independent of execution order and ``PYTHONHASHSEED``;
* streaming flush boundaries never break a trajectory's per-object ordering
  invariant (``t`` strictly increasing per object) in the stored dataset.
"""

from hypothesis import given, settings, strategies as st

from repro.core.streaming import (
    SEED_BITS,
    StreamingWriter,
    auto_shard_count,
    derive_seed,
    plan_shards,
)
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.storage.repositories import DataWarehouse

seeds = st.integers(min_value=0, max_value=2**63 - 1)


class TestShardPartition:
    @given(count=st.integers(0, 500), shards=st.integers(1, 32), seed=seeds)
    @settings(max_examples=200)
    def test_partition_covers_every_object_exactly_once(self, count, shards, seed):
        plan = plan_shards(count, shards, seed)
        assert len(plan) == shards
        covered = [index for shard in plan for index in shard.indices]
        assert covered == list(range(1, count + 1))

    @given(count=st.integers(0, 500), shards=st.integers(1, 32), seed=seeds)
    @settings(max_examples=100)
    def test_partition_is_balanced_within_one_object(self, count, shards, seed):
        sizes = [shard.object_count for shard in plan_shards(count, shards, seed)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == count

    @given(count=st.integers(1, 10_000))
    def test_auto_shard_count_is_bounded_and_deterministic(self, count):
        shards = auto_shard_count(count)
        assert 1 <= shards <= 8
        assert shards == auto_shard_count(count)


class TestSeedDerivation:
    @given(seed=seeds, shard=st.integers(0, 1000))
    @settings(max_examples=200)
    def test_seeds_are_stable_across_calls(self, seed, shard):
        assert derive_seed(seed, shard) == derive_seed(seed, shard)
        assert 0 <= derive_seed(seed, shard) < 2**SEED_BITS

    @given(seed=seeds, shard=st.integers(0, 1000))
    @settings(max_examples=100)
    def test_seeds_differ_by_shard_and_role(self, seed, shard):
        assert derive_seed(seed, shard) != derive_seed(seed, shard + 1)
        roles = {derive_seed(seed, shard, role) for role in ("objects", "engine", "rssi")}
        assert len(roles) == 3

    @given(seed=seeds, shard=st.integers(0, 1000))
    @settings(max_examples=100)
    def test_plan_embeds_the_derived_seed(self, seed, shard):
        plan = plan_shards(shard + 1, shard + 1, seed)
        assert plan[shard].seed == derive_seed(seed, shard)

    def test_golden_value_pins_the_scheme(self):
        # Changing the derivation silently would break reproducibility of
        # every previously published dataset; this value pins the scheme
        # (blake2b over "master|shard|role", top 63 bits).
        assert derive_seed(0, 0) == derive_seed(0, 0, "shard")
        assert derive_seed(42, 3, "objects") == 6675242879879538560


def _records_for(object_id, times):
    return [
        TrajectoryRecord(
            object_id=object_id,
            location=IndoorLocation("b", 0, partition_id="hall", x=1.0, y=2.0),
            t=t,
        )
        for t in times
    ]


@st.composite
def shard_streams(draw):
    """A shard-style record stream: per object, strictly increasing times,
    streamed trajectory-major (like ``TrajectorySet.all_records`` per shard)."""
    object_count = draw(st.integers(1, 5))
    stream = []
    for index in range(object_count):
        steps = draw(st.lists(st.floats(0.25, 10.0, allow_nan=False), min_size=1, max_size=20))
        times, t = [], 0.0
        for step in steps:
            t += step
            times.append(round(t, 6))
        stream.extend(_records_for(f"obj_{index:04d}", times))
    return stream


class TestFlushBoundaries:
    @given(stream=shard_streams(), flush_every=st.integers(1, 17))
    @settings(max_examples=60, deadline=None)
    def test_flush_boundaries_never_split_per_object_time_order(self, stream, flush_every):
        warehouse = DataWarehouse()
        writer = StreamingWriter(warehouse, flush_every)
        written = writer.write("trajectories", stream)
        assert written == len(stream)
        assert writer.max_pending <= flush_every

        per_object = {}
        for row in warehouse.backend.all_rows("trajectory"):  # insertion order
            per_object.setdefault(row["object_id"], []).append(row["t"])
        for object_id, times in per_object.items():
            assert all(a < b for a, b in zip(times, times[1:])), (
                f"{object_id}: stored order is not strictly increasing in t"
            )
