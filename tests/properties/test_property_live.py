"""Property-based tests for the continuous-query engine.

The replay-equivalence contract, quantified: for random buildings, seeds and
window shapes, every monitor's finalized window sequence is identical between

* the monitors attached to a streaming generation run,
* a ``replay()`` over the warehouse that run produced, and
* the equivalent offline computation over the same warehouse (builder
  ``distinct``/``count_by`` queries for density and visit counts);

and ``workers=2`` streaming emission equals serial emission.  Pipeline runs
are expensive, so the examples are few and tiny — the breadth comes from the
randomised buildings, seeds, windows and slides.
"""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import config_from_dict
from repro.core.pipeline import VitaPipeline
from repro.live import replay


@lru_cache(maxsize=None)
def _monitored_run(building, seed, window, slide):
    """One monitored streaming run (cached: hypothesis revisits examples)."""
    config = config_from_dict(
        {
            "environment": {"building": building, "floors": 1},
            "devices": [{"type": "wifi", "count_per_floor": 3}],
            "objects": {"count": 4, "duration": 40, "time_step": 0.5, "seed": seed},
            "monitors": [
                {"monitor": "density", "floor": 0, "window": window, "slide": slide,
                 "name": "occ"},
                {"monitor": "visit_counts", "top_k": 3, "window": window,
                 "slide": slide, "name": "pois"},
                {"monitor": "geofence", "floor": 0, "region": [0, 0, 14, 10],
                 "window": window, "slide": slide, "name": "fence"},
            ],
            "seed": seed,
        }
    )
    return config, VitaPipeline(config).run_streaming()


run_parameters = {
    "building": st.sampled_from(("office", "clinic")),
    "seed": st.integers(0, 10_000),
    "window": st.sampled_from((7.0, 15.0, 30.0, 60.0)),
    "slide": st.sampled_from((5.0, 10.0, 30.0)),
}

few_examples = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)


class TestReplayEquivalence:
    @given(**run_parameters)
    @few_examples
    def test_replay_matches_attached_emission(self, building, seed, window, slide):
        config, result = _monitored_run(building, seed, window, slide)
        monitors = [mc.build() for mc in config.monitors]
        replayed = replay(result.warehouse, monitors)
        for name, live_result in result.live.results.items():
            assert replayed.results[name].values() == live_result.values(), name

    @given(**run_parameters)
    @few_examples
    def test_attached_emission_matches_offline_builder_queries(
        self, building, seed, window, slide
    ):
        _, result = _monitored_run(building, seed, window, slide)
        warehouse = result.warehouse
        for w in result.live.results["occ"].windows:
            expected = len(
                warehouse.query("trajectory")
                .during(w.t_start, w.t_end)
                .on_floor(0)
                .distinct("object_id")
            )
            assert w.value == expected
        for w in result.live.results["pois"].windows:
            counts = (
                warehouse.query("trajectory")
                .during(w.t_start, w.t_end)
                .where("partition_id", "not_in", (None, ""))
                .count_by("partition_id", distinct="object_id")
            )
            expected = tuple(
                sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:3]
            )
            assert w.value == expected

    @given(**run_parameters)
    @few_examples
    def test_windows_cover_the_data_span(self, building, seed, window, slide):
        _, result = _monitored_run(building, seed, window, slide)
        bounds = result.warehouse.backend.time_bounds("trajectory")
        occ = result.live.results["occ"].windows
        if bounds is None:
            assert occ == []
            return
        _, t_max = bounds
        assert occ[0].t_start == 0.0
        assert occ[-1].t_start <= t_max
        assert occ[-1].t_start + slide > t_max
        indices = [w.index for w in occ]
        assert indices == list(range(len(occ)))


class TestWorkerEquivalence:
    @given(seed=st.integers(0, 10_000), shards=st.integers(2, 4))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=(HealthCheck.too_slow,))
    def test_workers_2_equals_serial(self, seed, shards):
        config = config_from_dict(
            {
                "environment": {"building": "clinic", "floors": 1},
                "devices": [{"type": "wifi", "count_per_floor": 3}],
                "objects": {"count": 4, "duration": 30, "time_step": 0.5, "seed": seed},
                "monitors": [
                    {"monitor": "density", "floor": 0, "window": 10, "slide": 5,
                     "name": "occ"},
                    {"monitor": "geofence", "floor": 0, "region": [0, 0, 12, 12],
                     "name": "fence"},
                ],
                "seed": seed,
            }
        )
        serial = VitaPipeline(config).run_streaming(shards=shards, workers=1)
        parallel = VitaPipeline(config).run_streaming(shards=shards, workers=2)
        for name, serial_result in serial.live.results.items():
            parallel_result = parallel.live.results[name]
            assert parallel_result.values() == serial_result.values(), name
            assert [
                (a.t, a.object_id, a.kind) for a in parallel_result.alerts
            ] == [(a.t, a.object_id, a.kind) for a in serial_result.alerts], name
