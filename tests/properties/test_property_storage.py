"""Property-based tests for storage: index consistency and export round-trips."""

from hypothesis import given, settings, strategies as st

from repro.core.types import IndoorLocation, RSSIRecord, TrajectoryRecord
from repro.storage.export import (
    export_rssi_csv,
    export_trajectories_csv,
    import_rssi_csv,
    import_trajectories_csv,
)
from repro.storage.tables import Table, TableSchema

object_ids = st.sampled_from(["a", "b", "c", "d"])
timestamps = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@st.composite
def rssi_records(draw):
    return RSSIRecord(
        object_id=draw(object_ids),
        device_id=draw(st.sampled_from(["ap1", "ap2", "ble1"])),
        rssi=draw(st.floats(min_value=-100.0, max_value=-20.0, allow_nan=False)),
        t=draw(timestamps),
    )


@st.composite
def trajectory_records(draw):
    return TrajectoryRecord(
        object_id=draw(object_ids),
        location=IndoorLocation(
            "b",
            draw(st.integers(min_value=0, max_value=3)),
            partition_id=draw(st.sampled_from(["hall", "room1", None])),
            x=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
            y=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        ),
        t=draw(timestamps),
    )


class TestTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(rssi_records(), max_size=60))
    def test_hash_index_matches_full_scan(self, records):
        table = Table(
            TableSchema(
                name="rssi",
                columns=("object_id", "device_id", "rssi", "t"),
                hash_indexes=("object_id",),
                ordered_index="t",
            )
        )
        table.insert_many(record.as_record() for record in records)
        for object_id in ("a", "b", "c", "d"):
            indexed = table.lookup("object_id", object_id)
            scanned = [row for row in table.all_rows() if row["object_id"] == object_id]
            assert sorted(indexed, key=lambda r: (r["t"], r["rssi"])) == sorted(
                scanned, key=lambda r: (r["t"], r["rssi"])
            )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(rssi_records(), max_size=60), timestamps, timestamps)
    def test_range_query_matches_full_scan(self, records, bound_a, bound_b):
        low, high = sorted((bound_a, bound_b))
        table = Table(
            TableSchema(
                name="rssi",
                columns=("object_id", "device_id", "rssi", "t"),
                ordered_index="t",
            )
        )
        table.insert_many(record.as_record() for record in records)
        by_index = table.range(low, high)
        by_scan = [row for row in table.all_rows() if low <= row["t"] <= high]
        assert len(by_index) == len(by_scan)
        assert sorted(r["t"] for r in by_index) == sorted(r["t"] for r in by_scan)


class TestExportRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(rssi_records(), max_size=40))
    def test_rssi_round_trip(self, records):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as directory:
            path = export_rssi_csv(records, Path(directory) / "rssi.csv")
            assert import_rssi_csv(path) == records

    @settings(max_examples=30, deadline=None)
    @given(st.lists(trajectory_records(), max_size=40))
    def test_trajectory_round_trip(self, records):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as directory:
            path = export_trajectories_csv(records, Path(directory) / "traj.csv")
            assert import_trajectories_csv(path) == records
