"""Property tests: cached spatial answers are identical to ground truth.

The SpatialService's determinism contract, exercised across random
buildings, random query points and random seeds:

* cached and uncached services return *identical* routes, sightline reports,
  nearest-neighbour distances and locations (the caches memoize pure
  functions — they can never change an answer);
* the service's routing agrees with the legacy temporary-node Dijkstra of
  ``RoutePlanner`` on route cost (length and travel time);
* sightline reports agree exactly with the unpruned
  ``analyze_sightline`` scan (grid buckets only skip walls that cannot
  intersect the sight line).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.building.distance import RoutePlanner
from repro.building.synthetic import building_by_name
from repro.core.config import SpatialConfig
from repro.core.errors import RoutingError
from repro.geometry.line_of_sight import analyze_sightline
from repro.geometry.point import Point
from repro.spatial import SpatialService

BUILDING_NAMES = ("office", "mall", "clinic")

#: Buildings are deterministic per (name, floors); build each once.
_BUILDINGS = {}


def _building(name, floors):
    key = (name, floors)
    if key not in _BUILDINGS:
        _BUILDINGS[key] = building_by_name(name, floors=floors)
    return _BUILDINGS[key]


def _random_points(building, seed, count):
    rng = random.Random(seed)
    points = []
    for _ in range(count):
        location = building.random_location(rng)
        points.append((location.floor_id, Point(location.x, location.y)))
    return points


@st.composite
def spatial_cases(draw):
    name = draw(st.sampled_from(BUILDING_NAMES))
    floors = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**32 - 1))
    return name, floors, seed


class TestRoutingEquivalence:
    @given(case=spatial_cases(), metric=st.sampled_from(["length", "time"]))
    @settings(max_examples=25, deadline=None)
    def test_cached_routes_identical_to_uncached(self, case, metric):
        name, floors, seed = case
        building = _building(name, floors)
        cached = SpatialService(building)
        uncached = SpatialService(building, config=SpatialConfig(enabled=False))
        points = _random_points(building, seed, 6)
        for (sf, sp), (tf, tp) in zip(points, points[1:]):
            try:
                ours = cached.shortest_route(sf, sp, tf, tp, metric=metric)
            except RoutingError:
                continue
            again = cached.shortest_route(sf, sp, tf, tp, metric=metric)
            plain = uncached.shortest_route(sf, sp, tf, tp, metric=metric)
            assert ours.waypoints == plain.waypoints == again.waypoints
            assert ours.length == plain.length == again.length
            assert ours.travel_time == plain.travel_time == again.travel_time
            assert ours.doors == plain.doors
            assert ours.staircases == plain.staircases

    @given(case=spatial_cases(), metric=st.sampled_from(["length", "time"]))
    @settings(max_examples=25, deadline=None)
    def test_route_cost_matches_legacy_planner(self, case, metric):
        name, floors, seed = case
        building = _building(name, floors)
        service = SpatialService(building)
        planner = RoutePlanner(building)
        for (sf, sp), (tf, tp) in zip(*[iter(_random_points(building, seed, 6))] * 2):
            try:
                ours = service.shortest_route(sf, sp, tf, tp, metric=metric)
            except RoutingError:
                continue
            legacy = planner.shortest_route(sf, sp, tf, tp, metric=metric)
            assert abs(ours.length - legacy.length) <= 1e-9 * max(1.0, legacy.length)
            assert abs(ours.travel_time - legacy.travel_time) <= (
                1e-9 * max(1.0, legacy.travel_time)
            )

    @given(case=spatial_cases())
    @settings(max_examples=20, deadline=None)
    def test_object_speed_only_scales_travel_time_for_length_metric(self, case):
        name, floors, seed = case
        building = _building(name, floors)
        service = SpatialService(building)
        points = _random_points(building, seed, 2)
        (sf, sp), (tf, tp) = points
        try:
            slow = service.shortest_route(sf, sp, tf, tp, walking_speed=0.9)
            fast = service.shortest_route(sf, sp, tf, tp, walking_speed=1.9)
        except RoutingError:
            return
        # Under the length metric the chosen path is speed-independent.
        assert slow.waypoints == fast.waypoints
        assert slow.length == fast.length


class TestSightlineEquivalence:
    @given(case=spatial_cases())
    @settings(max_examples=30, deadline=None)
    def test_pruned_sightline_matches_full_scan(self, case):
        name, floors, seed = case
        building = _building(name, floors)
        cached = SpatialService(building)
        uncached = SpatialService(building, config=SpatialConfig(enabled=False))
        points = _random_points(building, seed, 8)
        for (sf, sp), (tf, tp) in zip(points, points[1:]):
            if sf != tf:
                continue
            floor = building.floor(sf)
            legacy = analyze_sightline(
                sp, tp, floor.wall_segments(), floor.obstacle_polygons()
            )
            assert cached.sightline(sf, sp, tp) == legacy
            assert cached.sightline(sf, sp, tp) == legacy  # cache hit path
            assert uncached.sightline(sf, sp, tp) == legacy


class TestNearestNeighbourEquivalence:
    @given(case=spatial_cases())
    @settings(max_examples=30, deadline=None)
    def test_nearest_door_and_wall_match_brute_force(self, case):
        name, floors, seed = case
        building = _building(name, floors)
        service = SpatialService(building)
        for floor_id, point in _random_points(building, seed, 6):
            floor = building.floor(floor_id)
            doors = list(floor.doors.values())
            if doors:
                expected = min(door.position.distance_to(point) for door in doors)
                assert service.nearest_door_distance(floor_id, point) == expected
            walls = floor.wall_segments()
            if walls:
                expected = min(wall.distance_to_point(point) for wall in walls)
                assert service.nearest_wall_distance(floor_id, point) == expected

    @given(case=spatial_cases())
    @settings(max_examples=20, deadline=None)
    def test_locate_matches_building_locate(self, case):
        name, floors, seed = case
        building = _building(name, floors)
        service = SpatialService(building)
        for floor_id, point in _random_points(building, seed, 6):
            assert service.locate(floor_id, point) == building.locate(floor_id, point)
