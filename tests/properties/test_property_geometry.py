"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry.decompose import DecompositionConfig, decompose, total_area
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.segment import Segment

finite = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.5, max_value=200.0, allow_nan=False, allow_infinity=False)


@st.composite
def rectangles(draw):
    x = draw(finite)
    y = draw(finite)
    width = draw(positive)
    height = draw(positive)
    return Polygon.rectangle(x, y, x + width, y + height)


@st.composite
def points(draw):
    return Point(draw(finite), draw(finite))


class TestPointProperties:
    @given(points(), points())
    def test_distance_is_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points(), points(), st.floats(min_value=0.0, max_value=1.0))
    def test_lerp_stays_between_endpoints(self, a, b, fraction):
        interpolated = a.lerp(b, fraction)
        assert interpolated.distance_to(a) <= a.distance_to(b) + 1e-6
        assert interpolated.distance_to(b) <= a.distance_to(b) + 1e-6


class TestSegmentProperties:
    @given(points(), points(), points())
    def test_closest_point_is_on_segment_and_closest_among_samples(self, a, b, query):
        segment = Segment(a, b)
        closest = segment.closest_point_to(query)
        assert segment.distance_to_point(closest) <= 1e-6
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert query.distance_to(closest) <= query.distance_to(segment.point_at(fraction)) + 1e-6


class TestPolygonProperties:
    @given(rectangles())
    def test_rectangle_area_matches_bbox(self, rectangle):
        box = rectangle.bounding_box
        assert math.isclose(rectangle.area, box.area, rel_tol=1e-9)

    @given(rectangles(), st.randoms(use_true_random=False))
    def test_random_points_are_contained(self, rectangle, rng):
        for _ in range(5):
            assert rectangle.contains_point(rectangle.random_point(rng))

    @given(rectangles())
    def test_centroid_inside(self, rectangle):
        assert rectangle.contains_point(rectangle.centroid)

    @given(rectangles(), finite, finite)
    def test_translation_preserves_area(self, rectangle, dx, dy):
        assert math.isclose(rectangle.translated(dx, dy).area, rectangle.area, rel_tol=1e-9)


class TestDecompositionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        rectangles(),
        st.floats(min_value=10.0, max_value=500.0),
        st.floats(min_value=1.5, max_value=6.0),
    )
    def test_total_area_is_preserved(self, rectangle, max_area, max_aspect):
        config = DecompositionConfig(max_area=max_area, max_aspect_ratio=max_aspect)
        pieces = decompose(rectangle, config)
        assert math.isclose(total_area(pieces), rectangle.area, rel_tol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(rectangles(), st.floats(min_value=10.0, max_value=500.0))
    def test_pieces_stay_inside_original_bbox(self, rectangle, max_area):
        config = DecompositionConfig(max_area=max_area)
        outer = rectangle.bounding_box.expanded(1e-6)
        for piece in decompose(rectangle, config):
            box = piece.bounding_box
            assert outer.contains_point(Point(box.min_x, box.min_y))
            assert outer.contains_point(Point(box.max_x, box.max_y))
