"""Property tests for the telemetry determinism contracts.

Two invariants of the observability layer (docs/observability.md):

* **Non-interference** — enabling telemetry changes no generated record and
  no query result: instruments only *read* what the pipeline produced, and
  span ids are sequence numbers, never draws from any random stream.
* **Worker-count independence** — counter-type instruments depend only on
  what was generated, so the shard-merged registry of a ``workers=2`` run
  equals the serial run's exactly (the same delta-aggregation guarantee the
  spatial cache statistics established in PR 4).

Both are exercised end-to-end through the streaming pipeline over random
seeds — small workloads, few examples: each example is a full generation run.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    TelemetryConfig,
    VitaConfig,
)
from repro.core.pipeline import VitaPipeline

DATASETS = ("trajectory", "rssi", "positioning")

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _config(seed, *, enabled, shards=2):
    return VitaConfig(
        environment=EnvironmentConfig(building="clinic", floors=1),
        devices=[DeviceConfig(count_per_floor=3)],
        objects=ObjectConfig(
            count=4, duration=30.0, time_step=0.5, min_lifespan=15.0, max_lifespan=30.0
        ),
        telemetry=TelemetryConfig(enabled=enabled),
        seed=seed,
        shards=shards,
    )


def _run(config, workers=1):
    result = VitaPipeline(config).run_streaming(workers=workers)
    rows = {dataset: result.warehouse.query(dataset).all() for dataset in DATASETS}
    counts = {
        dataset: result.warehouse.query(dataset).count_by("object_id")
        for dataset in ("trajectory", "positioning")
    }
    report = result.report
    result.warehouse.close()
    return report, rows, counts


class TestNonInterference:
    @given(seed=seeds)
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_enabling_telemetry_changes_no_records_or_query_results(self, seed):
        _, plain_rows, plain_counts = _run(_config(seed, enabled=False))
        report, instrumented_rows, instrumented_counts = _run(
            _config(seed, enabled=True)
        )
        assert plain_rows["trajectory"], "vacuous example: no data generated"
        assert instrumented_rows == plain_rows
        assert instrumented_counts == plain_counts
        # ...and the instruments saw exactly what was stored.
        counters = report.telemetry["metrics"]["counters"]
        assert counters["generated.records.trajectory"] == len(plain_rows["trajectory"])
        assert counters["generated.records.rssi"] == len(plain_rows["rssi"])


class TestWorkerIndependence:
    @given(seed=seeds, shards=st.integers(2, 4))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_merged_counters_equal_serial_for_workers_2(self, seed, shards):
        serial, _, _ = _run(_config(seed, enabled=True, shards=shards), workers=1)
        parallel, _, _ = _run(_config(seed, enabled=True, shards=shards), workers=2)
        serial_counters = serial.telemetry["metrics"]["counters"]
        parallel_counters = parallel.telemetry["metrics"]["counters"]
        assert serial_counters == parallel_counters
        assert serial_counters["generated.shards"] == shards
        # Histogram observation counts are scheduling-independent too (the
        # observed durations differ; the number of observations cannot).
        serial_histograms = serial.telemetry["metrics"]["histograms"]
        parallel_histograms = parallel.telemetry["metrics"]["histograms"]
        assert set(serial_histograms) == set(parallel_histograms)
        for name, payload in serial_histograms.items():
            assert parallel_histograms[name]["count"] == payload["count"]
