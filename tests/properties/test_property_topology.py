"""Property-based tests for topology and routing invariants."""

from hypothesis import given, settings, strategies as st

from repro.building.distance import RoutePlanner
from repro.building.synthetic import OfficeSpec, office_building
from repro.building.topology import AccessibilityGraph
from repro.core.errors import RoutingError
from repro.geometry.point import Point

specs = st.builds(
    OfficeSpec,
    floors=st.integers(min_value=1, max_value=3),
    rooms_per_side=st.integers(min_value=2, max_value=6),
)


class TestSyntheticBuildingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(specs)
    def test_every_generated_office_is_connected_and_valid(self, spec):
        building = office_building(spec)
        assert building.validate() == []
        graph = AccessibilityGraph(building)
        assert graph.is_fully_connected()
        assert graph.isolated_partitions() == []

    @settings(max_examples=15, deadline=None)
    @given(specs)
    def test_every_partition_reachable_from_the_entrance(self, spec):
        building = office_building(spec)
        graph = AccessibilityGraph(building)
        entrance_partition = (0, "f0_hall")
        reachable = graph.reachable_set(entrance_partition)
        assert len(reachable) == building.partition_count


class TestRoutingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["length", "time"]),
    )
    def test_routes_between_random_locations_are_consistent(self, seed, metric):
        import random

        building = office_building()
        planner = RoutePlanner(building)
        rng = random.Random(seed)
        source = building.random_location(rng)
        target = building.random_location(rng)
        route = planner.shortest_route(
            source.floor_id, Point(*source.point()),
            target.floor_id, Point(*target.point()),
            metric=metric,
        )
        # Invariant 1: the route starts and ends at the query points.
        assert route.waypoints[0].point.is_close(Point(*source.point()), tolerance=1e-6)
        assert route.waypoints[-1].point.is_close(Point(*target.point()), tolerance=1e-6)
        # Invariant 2: length is at least the straight-line distance when the
        # endpoints share a floor, and always non-negative.
        if source.floor_id == target.floor_id:
            direct = Point(*source.point()).distance_to(Point(*target.point()))
            assert route.length >= direct - 1e-6
        assert route.length >= 0.0 and route.travel_time >= 0.0
        # Invariant 3: consecutive waypoints either share a floor or are the
        # two ends of a staircase.
        for previous, current in zip(route.waypoints, route.waypoints[1:]):
            if previous.floor_id != current.floor_id:
                assert route.staircases

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_minimum_time_never_slower_than_minimum_distance_route(self, seed):
        import random

        building = office_building()
        planner = RoutePlanner(building)
        rng = random.Random(seed)
        source = building.random_location(rng)
        target = building.random_location(rng)
        by_length = planner.shortest_route(
            source.floor_id, Point(*source.point()), target.floor_id, Point(*target.point()),
            metric="length",
        )
        by_time = planner.shortest_route(
            source.floor_id, Point(*source.point()), target.floor_id, Point(*target.point()),
            metric="time",
        )
        assert by_time.travel_time <= by_length.travel_time + 1e-6
        assert by_length.length <= by_time.length + 1e-6
