"""Shared fixtures for the Vita test suite.

Expensive artefacts (buildings, a small end-to-end dataset) are session-scoped
so that the many tests that only read them do not pay the construction cost
repeatedly.  Tests that mutate a building build their own copy instead of
using these fixtures.
"""

from __future__ import annotations

import pytest

from repro.building.model import Building
from repro.building.synthetic import (
    ClinicSpec,
    MallSpec,
    OfficeSpec,
    clinic_building,
    mall_building,
    office_building,
)
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CoverageDeployment
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator


@pytest.fixture(scope="session")
def office() -> Building:
    """A 2-floor synthetic office building (read-only in tests)."""
    return office_building(OfficeSpec(floors=2))


@pytest.fixture(scope="session")
def mall() -> Building:
    """A 2-floor synthetic mall (read-only in tests)."""
    return mall_building(MallSpec(floors=2))


@pytest.fixture(scope="session")
def clinic() -> Building:
    """A single-floor synthetic clinic (read-only in tests)."""
    return clinic_building(ClinicSpec(floors=1))


@pytest.fixture()
def fresh_office() -> Building:
    """A fresh office building safe to mutate within one test."""
    return office_building(OfficeSpec(floors=2))


@pytest.fixture(scope="session")
def office_wifi(office):
    """Wi-Fi access points deployed on the shared office with the coverage model."""
    controller = PositioningDeviceController(office, seed=11)
    controller.deploy(
        DeviceDeploymentRequest(
            device_type=DeviceType.WIFI,
            count_per_floor=8,
            model=CoverageDeployment(),
        )
    )
    return list(controller.devices.values())


@pytest.fixture(scope="session")
def office_simulation(office):
    """A small simulation on the shared office building (ground truth)."""
    controller = MovingObjectController(
        office,
        ObjectGenerationConfig(
            count=8, duration=120.0, time_step=0.5, sampling_period=1.0, seed=21
        ),
    )
    return controller.generate()


@pytest.fixture(scope="session")
def office_rssi(office, office_wifi, office_simulation):
    """Raw RSSI records for the shared office simulation."""
    generator = RSSIGenerator(
        office, office_wifi, RSSIGenerationConfig(sampling_period=2.0, seed=31)
    )
    return generator.generate(office_simulation.trajectories)
