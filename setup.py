"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments that lack the ``wheel`` package (legacy editable
installs do not need it).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Vita: a versatile toolkit for generating indoor mobility data for "
        "real-world buildings (reproduction of PVLDB 9(13):1453-1456)"
    ),
    author="Vita reproduction",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: ship the py.typed marker so downstream type-checkers consume
    # the package's inline annotations.
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy", "networkx"],
    extras_require={
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-timeout",
            "pytest-cov",
            "hypothesis",
        ]
    },
    entry_points={"console_scripts": ["vita-generate=repro.cli:main"]},
)
