"""LIVE MONITORS: incremental evaluation versus naive per-window re-query.

The continuous-query engine's claim: a standing monitor costs one pass over
the record stream with O(delta) updates per record, while the offline way to
answer the same question — one builder query per slide — re-scans the
warehouse once per window.  This bench evaluates an identical monitor set
both ways over the same generated workload, asserts the incremental side is
at least 2x faster, and spot-checks that both sides produce identical
per-window answers (the replay-equivalence contract, held exhaustively by
``tests/properties/test_property_live.py``).

Run with ``pytest benchmarks/test_bench_live_monitors.py -s`` to see the
table; with sliding windows (slide < window) the naive side re-reads every
record ``window/slide`` times and the gap widens well past the floor.
"""

import time

import pytest

from conftest import print_table, record_bench

from repro.live import LiveEngine, Monitor
from repro.storage.repositories import DataWarehouse

#: The acceptance floor: incremental must be at least this much faster.
MIN_SPEEDUP = 2.0

WINDOW = 30.0
SLIDE = 3.0
TOP_K = 5
#: Clones of the base simulation (distinct object ids): a bigger stream
#: stabilises the timing without paying for a bigger simulation.
CLONES = 3


@pytest.fixture(scope="module")
def live_workload(office_workload):
    """The shared office ground truth, stored once for the naive side."""
    from dataclasses import replace

    _, _, simulation, _ = office_workload
    records = []
    for clone in range(CLONES):
        for record in simulation.trajectories.all_records():
            records.append(
                replace(record, object_id=f"c{clone}_{record.object_id}")
            )
    warehouse = DataWarehouse()
    warehouse.trajectories.add_many(records)
    return records, warehouse


def _monitors():
    return [
        Monitor.density(floor=1).window(WINDOW).slide(SLIDE).named("occ"),
        Monitor.visit_counts(top_k=TOP_K).window(WINDOW).slide(SLIDE).named("pois"),
    ]


def _incremental(records):
    engine = LiveEngine(_monitors())
    engine.begin_shard(0)
    engine.feed("trajectory", records)
    engine.end_shard()
    return engine.finalize()


def _naive(warehouse, window_bounds):
    """One builder query per monitor per window: the pre-live answer."""
    density = []
    visits = []
    for t_start, t_end in window_bounds:
        density.append(
            len(
                warehouse.query("trajectory")
                .during(t_start, t_end)
                .on_floor(1)
                .distinct("object_id")
            )
        )
        counts = (
            warehouse.query("trajectory")
            .during(t_start, t_end)
            .where("partition_id", "not_in", (None, ""))
            .count_by("partition_id", distinct="object_id")
        )
        visits.append(
            tuple(sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:TOP_K])
        )
    return density, visits


def test_incremental_monitors_beat_naive_per_window_requery(live_workload):
    records, warehouse = live_workload

    start = time.perf_counter()
    report = _incremental(records)
    incremental_seconds = time.perf_counter() - start

    bounds = [(w.t_start, w.t_end) for w in report.results["occ"].windows]
    start = time.perf_counter()
    naive_density, naive_visits = _naive(warehouse, bounds)
    naive_seconds = time.perf_counter() - start

    # Identical answers first: speed without the contract is worthless.
    assert report.results["occ"].values() == naive_density
    assert report.results["pois"].values() == naive_visits

    speedup = naive_seconds / incremental_seconds if incremental_seconds else float("inf")
    print_table(
        f"Standing monitors over {len(records)} records, "
        f"{len(bounds)} windows (window={WINDOW:g}s, slide={SLIDE:g}s)",
        ["strategy", "seconds", "speedup"],
        [
            ["naive per-window re-query", f"{naive_seconds:.3f}", "1.0x"],
            ["incremental engine", f"{incremental_seconds:.3f}", f"{speedup:.1f}x"],
        ],
    )
    record_bench(
        "live_monitors",
        incremental_seconds=round(incremental_seconds, 4),
        naive_seconds=round(naive_seconds, 4),
        speedup=round(speedup, 2),
        records=len(records),
        windows=len(bounds),
        monitor_overhead_us_per_record=round(
            1e6 * incremental_seconds / max(len(records), 1), 2
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"incremental evaluation is only {speedup:.1f}x faster than naive "
        f"per-window re-querying (floor: {MIN_SPEEDUP}x)"
    )
