"""DEMO-PATH: the six-step demonstration path of Section 5, end to end.

The demo walks through: import DBI → edit environment → deploy devices →
generate objects → generate raw RSSI → generate positioning data, for the
device/method combinations RFID + proximity, Bluetooth + trilateration and
Wi-Fi + fingerprinting, on DBI files from office buildings, malls and clinics.

Each benchmark runs the full pipeline for one combination and reports the
record counts of every layer plus the positioning accuracy against the
preserved ground truth.
"""

import pytest

from conftest import print_table

from repro.analysis.accuracy import (
    evaluate_positioning,
    evaluate_probabilistic,
    evaluate_proximity,
)
from repro.building.synthetic import building_by_name
from repro.core.toolkit import Vita
from repro.ifc.writer import building_to_ifc
from repro.ifc.extractor import DBIProcessor


def _run_demo(building_name, device_type, method, seed, **positioning_options):
    """Execute the six demo steps and return (vita, positioning output)."""
    vita = Vita(seed=seed)
    # Step 1: import a DBI file (round-tripped through the IFC writer/parser).
    text = building_to_ifc(building_by_name(building_name, floors=2))
    building, _ = DBIProcessor().process_text(text)
    vita.use_building(building)
    # Step 2: the environment is used as parsed (editing is exercised in tests).
    # Step 3: configure and generate positioning devices.
    deployment = "check-point" if device_type == "rfid" else "coverage"
    overrides = {"detection_range": 20.0} if device_type == "bluetooth" else {}
    vita.deploy_devices(device_type, count_per_floor=8, deployment=deployment, **overrides)
    # Step 4: configure and generate moving objects (ground truth at 1 Hz).
    vita.generate_objects(count=15, duration=180.0, sampling_period=1.0, time_step=0.5)
    # Step 5: configure and generate raw RSSI measurements.
    vita.generate_rssi(sampling_period=1.0)
    # Step 6: choose a positioning method and generate positioning data.
    output = vita.generate_positioning(method, **positioning_options)
    return vita, output


class TestDemoCombinations:
    def test_rfid_proximity(self, benchmark):
        vita, output = benchmark.pedantic(
            lambda: _run_demo("office", "rfid", "proximity", seed=101),
            rounds=1, iterations=1,
        )
        report = evaluate_proximity(output, vita.simulation.trajectories, vita.devices)
        print_table(
            "DEMO-PATH: RFID + proximity (office DBI)",
            ["metric", "value"],
            [
                ["trajectory records", vita.summary()["trajectory_records"]],
                ["rssi records", vita.summary()["rssi_records"]],
                ["detection periods", len(output)],
                ["in-range fraction", f"{report.in_range_fraction:.2f}"],
                ["mean object-device distance (m)", f"{report.mean_distance_m:.2f}"],
            ],
        )
        assert len(output) > 0
        assert report.in_range_fraction > 0.6

    def test_bluetooth_trilateration(self, benchmark):
        vita, output = benchmark.pedantic(
            lambda: _run_demo(
                "mall", "bluetooth", "trilateration", seed=102, sampling_period=5.0
            ),
            rounds=1, iterations=1,
        )
        report = evaluate_positioning(output, vita.simulation.trajectories)
        print_table(
            "DEMO-PATH: Bluetooth + trilateration (mall DBI)",
            ["metric", "value"],
            [
                ["estimates", len(output)],
                ["mean error (m)", f"{report.mean_error:.2f}"],
                ["median error (m)", f"{report.median_error:.2f}"],
                ["floor accuracy", f"{report.floor_accuracy:.2f}"],
            ],
        )
        assert len(output) > 0
        assert report.mean_error < 20.0
        assert report.floor_accuracy > 0.85

    def test_wifi_fingerprinting(self, benchmark):
        vita, output = benchmark.pedantic(
            lambda: _run_demo(
                "clinic", "wifi", "fingerprinting", seed=103,
                sampling_period=5.0, algorithm="bayes",
                radio_map_spacing=4.0, radio_map_samples=6,
            ),
            rounds=1, iterations=1,
        )
        report = evaluate_probabilistic(output, vita.simulation.trajectories)
        print_table(
            "DEMO-PATH: Wi-Fi + fingerprinting/Bayes (clinic DBI)",
            ["metric", "value"],
            [
                ["radio map references", len(vita.radio_map)],
                ["estimates", len(output)],
                ["mean error (m)", f"{report.mean_error:.2f}"],
                ["room hit rate", f"{report.partition_hit_rate:.2f}"],
            ],
        )
        assert len(output) > 0
        assert report.mean_error < 10.0
