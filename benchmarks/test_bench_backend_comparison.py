"""STORAGE: memory vs SQLite backend on bulk inserts and Data Stream queries.

The paper persists generated data in PostgreSQL "with efficient indices";
this reproduction offers a pluggable backend instead.  This bench compares
the two engines on the write path (bulk-insert throughput with batched
``executemany`` on SQLite) and on the five Data Stream query classes
(time-range scan, snapshot, spatial range, kNN, sliding windows) plus the
visit-count aggregation, all on the shared office workload.
"""

import time

import pytest

from conftest import print_table

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI

BACKEND_KINDS = ("memory", "sqlite")


def _make_warehouse(kind, tmp_path_factory):
    if kind == "memory":
        return DataWarehouse(MemoryBackend())
    path = tmp_path_factory.mktemp("bench_backend") / "bench.sqlite"
    return DataWarehouse(SQLiteBackend(path=path))


@pytest.fixture(scope="module", params=BACKEND_KINDS)
def loaded(request, tmp_path_factory, office_workload):
    """One fully loaded warehouse per backend, shared by the query benches."""
    building, devices, simulation, rssi = office_workload
    warehouse = _make_warehouse(request.param, tmp_path_factory)
    warehouse.trajectories.add_trajectory_set(simulation.trajectories)
    warehouse.rssi.add_many(rssi)
    for device in devices:
        warehouse.devices.add(device.as_record())
    warehouse.flush()
    yield request.param, warehouse, building
    warehouse.close()


@pytest.fixture(scope="module")
def api(loaded):
    _, warehouse, _ = loaded
    return DataStreamAPI(warehouse)


class TestBulkInsertThroughput:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_bulk_insert(self, benchmark, kind, tmp_path_factory, office_workload):
        records = office_workload[2].trajectories.all_records()

        def insert():
            warehouse = _make_warehouse(kind, tmp_path_factory)
            warehouse.trajectories.add_many(records)
            warehouse.flush()
            count = len(warehouse.trajectories)
            warehouse.close()
            return count

        assert benchmark(insert) == len(records)


class TestQueryClasses:
    def test_time_range_scan(self, benchmark, api):
        assert benchmark(lambda: api.trajectory_window(60.0, 120.0))

    def test_snapshot(self, benchmark, api):
        assert benchmark(lambda: api.snapshot(120.0))

    def test_spatial_range(self, benchmark, api, loaded):
        building = loaded[2]
        box = building.floor(0).bounding_box
        region = BoundingBox(box.min_x, box.min_y, box.min_x + 20.0, box.max_y)
        result = benchmark(lambda: api.objects_in_region(0, region, 0.0, 240.0))
        assert isinstance(result, list)

    def test_knn(self, benchmark, api):
        result = benchmark(lambda: api.knn_at(0, Point(20.0, 9.0), t=120.0, k=5))
        assert isinstance(result, list)

    def test_sliding_windows(self, benchmark, api):
        windows = benchmark(lambda: list(api.sliding_windows(window=30.0, step=10.0)))
        assert windows

    def test_visit_counts(self, benchmark, api):
        assert benchmark(lambda: api.partition_visit_counts())


def test_backend_comparison_summary(office_workload, tmp_path_factory):
    """One-shot wall-clock comparison table (shown with ``pytest -s``)."""
    building, devices, simulation, rssi = office_workload
    records = simulation.trajectories.all_records()
    box = building.floor(0).bounding_box
    region = BoundingBox(box.min_x, box.min_y, box.min_x + 20.0, box.max_y)
    rows = []
    for kind in BACKEND_KINDS:
        warehouse = _make_warehouse(kind, tmp_path_factory)
        t0 = time.perf_counter()
        warehouse.trajectories.add_many(records)
        warehouse.rssi.add_many(rssi)
        warehouse.flush()
        insert_ms = (time.perf_counter() - t0) * 1000.0
        api = DataStreamAPI(warehouse)
        timed = {}
        for label, query in (
            ("range", lambda: api.trajectory_window(60.0, 120.0)),
            ("snapshot", lambda: api.snapshot(120.0)),
            ("region", lambda: api.objects_in_region(0, region, 0.0, 240.0)),
            ("knn", lambda: api.knn_at(0, Point(20.0, 9.0), t=120.0, k=5)),
            ("windows", lambda: list(api.sliding_windows(window=30.0, step=10.0))),
            ("visits", lambda: api.partition_visit_counts()),
        ):
            t0 = time.perf_counter()
            query()
            timed[label] = (time.perf_counter() - t0) * 1000.0
        rows.append(
            [kind, f"{len(records) / max(insert_ms / 1000.0, 1e-9):,.0f} rows/s"]
            + [f"{timed[label]:.2f} ms" for label in
               ("range", "snapshot", "region", "knn", "windows", "visits")]
        )
        warehouse.close()
    print_table(
        "Backend comparison (office workload)",
        ["backend", "bulk insert", "range", "snapshot", "region", "knn", "windows", "visits"],
        rows,
    )
    assert len(rows) == len(BACKEND_KINDS)
