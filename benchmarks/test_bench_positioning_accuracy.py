"""ACC-METHODS: positioning accuracy of the three methods vs ground truth.

The paper motivates Vita with the need for ground truth to run effectiveness
evaluations.  This bench does exactly such an evaluation on Vita's own output:
it generates one shared workload and measures, for each positioning method,
the error against the preserved raw trajectories, while sweeping the device
density and the fluctuation noise (the knobs a user of the toolkit would turn).

Expected shape (matching the indoor-positioning literature the paper builds
on): fingerprinting < trilateration in coordinate error; proximity provides
only symbolic collocation; more devices and less noise help every method.
"""

import statistics

import pytest

from conftest import make_building, deploy_wifi, generate_rssi, print_table, simulate

from repro.analysis.accuracy import evaluate_positioning, evaluate_proximity
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment
from repro.positioning.base import build_windows
from repro.positioning.fingerprinting import KNNFingerprinting, RadioMap
from repro.positioning.proximity import ProximityMethod
from repro.positioning.trilateration import TrilaterationMethod
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel

POSITIONING_PERIOD = 5.0


@pytest.fixture(scope="module")
def workload():
    building = make_building("office", floors=2)
    simulation = simulate(building, count=20, duration=240.0, seed=71)
    return building, simulation


def _wifi(building, per_floor, seed=7):
    return deploy_wifi(building, count_per_floor=per_floor, seed=seed)


def _rssi(building, devices, trajectories, sigma=2.0, seed=73):
    generator = RSSIGenerator(
        building,
        devices,
        RSSIGenerationConfig(
            sampling_period=2.0,
            fluctuation_noise=FluctuationNoiseModel(sigma_db=sigma),
            seed=seed,
        ),
    )
    return generator.generate(trajectories)


def _radio_map(building, devices, seed=74):
    generator = RSSIGenerator(
        building, devices, RSSIGenerationConfig(detection_probability=1.0, seed=seed)
    )
    return RadioMap.survey_grid(building, generator, spacing=4.0, samples_per_location=6)


class TestMethodComparison:
    def test_three_methods_on_the_same_workload(self, benchmark, workload):
        building, simulation = workload
        devices = _wifi(building, 8)
        rssi = _rssi(building, devices, simulation.trajectories)
        radio_map = _radio_map(building, devices)

        def run_all():
            windows = build_windows(rssi, POSITIONING_PERIOD)
            trilateration = TrilaterationMethod(building, devices).estimate(windows)
            fingerprinting = KNNFingerprinting(building, devices, radio_map, k=3).estimate(windows)
            proximity = ProximityMethod(building, devices).detect(rssi)
            return trilateration, fingerprinting, proximity

        trilateration, fingerprinting, proximity = benchmark.pedantic(
            run_all, rounds=1, iterations=1
        )
        trilateration_report = evaluate_positioning(trilateration, simulation.trajectories)
        fingerprinting_report = evaluate_positioning(fingerprinting, simulation.trajectories)
        proximity_report = evaluate_proximity(proximity, simulation.trajectories, devices)
        print_table(
            "ACC-METHODS: positioning accuracy (office, 16 Wi-Fi APs, sigma=2 dB)",
            ["method", "estimates", "mean err (m)", "median err (m)", "room hit rate",
             "floor accuracy"],
            [
                ["trilateration", trilateration_report.matched,
                 f"{trilateration_report.mean_error:.2f}",
                 f"{trilateration_report.median_error:.2f}",
                 f"{trilateration_report.partition_hit_rate:.2f}",
                 f"{trilateration_report.floor_accuracy:.2f}"],
                ["fingerprinting (kNN)", fingerprinting_report.matched,
                 f"{fingerprinting_report.mean_error:.2f}",
                 f"{fingerprinting_report.median_error:.2f}",
                 f"{fingerprinting_report.partition_hit_rate:.2f}",
                 f"{fingerprinting_report.floor_accuracy:.2f}"],
                ["proximity", proximity_report.periods, "symbolic", "symbolic",
                 f"in-range {proximity_report.in_range_fraction:.2f}", "-"],
            ],
        )
        # Expected ordering: fingerprinting beats trilateration on coordinates.
        assert fingerprinting_report.mean_error < trilateration_report.mean_error
        assert fingerprinting_report.mean_error < 6.0
        assert trilateration_report.mean_error < 15.0
        assert proximity_report.in_range_fraction > 0.6


class TestDeviceDensitySweep:
    def test_more_devices_improve_trilateration(self, benchmark, workload):
        building, simulation = workload

        def sweep():
            errors = {}
            for per_floor, seed in ((4, 11), (8, 12), (12, 13)):
                devices = _wifi(building, per_floor, seed=seed)
                rssi = _rssi(building, devices, simulation.trajectories, seed=80 + per_floor)
                estimates = TrilaterationMethod(building, devices).estimate(
                    build_windows(rssi, POSITIONING_PERIOD)
                )
                errors[per_floor] = evaluate_positioning(
                    estimates, simulation.trajectories
                ).mean_error
            return errors

        errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "ACC-METHODS: trilateration error vs device density",
            ["APs per floor", "mean error (m)"],
            [[count, f"{error:.2f}"] for count, error in sorted(errors.items())],
        )
        assert errors[12] < errors[4]


class TestNoiseSweep:
    def test_noise_degrades_fingerprinting(self, benchmark, workload):
        building, simulation = workload
        devices = _wifi(building, 8)
        radio_map = _radio_map(building, devices)

        def sweep():
            errors = {}
            for sigma in (0.5, 2.0, 6.0):
                rssi = _rssi(building, devices, simulation.trajectories, sigma=sigma, seed=91)
                estimates = KNNFingerprinting(building, devices, radio_map, k=3).estimate(
                    build_windows(rssi, POSITIONING_PERIOD)
                )
                errors[sigma] = evaluate_positioning(
                    estimates, simulation.trajectories
                ).mean_error
            return errors

        errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "ACC-METHODS: fingerprinting error vs fluctuation noise",
            ["sigma (dB)", "mean error (m)"],
            [[sigma, f"{error:.2f}"] for sigma, error in sorted(errors.items())],
        )
        assert errors[0.5] < errors[6.0]
