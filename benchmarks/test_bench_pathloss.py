"""PATHLOSS: behaviour of the RSSI generation model (Section 3.2).

Regenerates the curves behind the path loss model
``rssi = -10 n log10(dt) + A + Nob + Nf``:

* RSSI vs transmission distance for several path loss exponents;
* the wall-attenuation effect of Figure 3(a) (equal distance, different RSSI);
* the cost of generating RSSI with and without line-of-sight analysis.
"""

import statistics

import pytest

from conftest import make_building, print_table

from repro.core.types import IndoorLocation
from repro.devices.wifi import WiFiAccessPoint
from repro.geometry.line_of_sight import count_wall_crossings
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel

DISTANCES = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0)
EXPONENTS = (2.0, 2.8, 3.5)


class TestPathLossCurves:
    def test_rssi_vs_distance_curves(self, benchmark):
        def curves():
            return {
                exponent: [PathLossModel(exponent=exponent).rssi_at(d) for d in DISTANCES]
                for exponent in EXPONENTS
            }

        results = benchmark(curves)
        rows = []
        for exponent, values in sorted(results.items()):
            rows.append([exponent] + [f"{value:.1f}" for value in values])
        print_table(
            "PATHLOSS: noise-free RSSI (dBm) vs distance (m) per exponent n",
            ["n \\ d(m)"] + [str(d) for d in DISTANCES],
            rows,
        )
        for values in results.values():
            assert values == sorted(values, reverse=True)
        # Larger exponents attenuate faster at 40 m.
        assert results[3.5][-1] < results[2.0][-1]

    def test_inverse_conversion_cost(self, benchmark):
        model = PathLossModel(exponent=2.8)
        values = [model.rssi_at(d) for d in DISTANCES] * 100
        benchmark(lambda: [model.distance_from_rssi(v) for v in values])


class TestWallAttenuation:
    def test_figure3a_wall_effect(self, benchmark, office_workload):
        """Equal transmission distance; the wall-blocked pair reads a lower RSSI."""
        building, _, simulation, _ = office_workload
        floor = building.floor(0)
        walls = floor.wall_segments()
        # Both device/object pairs are exactly 5 m apart: the hallway pair has
        # a clear line of sight, the room pair is separated by the room wall.
        device_in_hall = WiFiAccessPoint(
            "hall_ap", IndoorLocation(building.building_id, 0, x=20.0, y=9.0)
        )
        device_in_room = WiFiAccessPoint(
            "room_ap", IndoorLocation(building.building_id, 0, x=18.0, y=4.0)
        )
        hall_object = Point(25.0, 9.0)
        room_pair_object = Point(18.0, 9.0)
        generator = RSSIGenerator(
            building,
            [device_in_hall, device_in_room],
            RSSIGenerationConfig(
                fluctuation_noise=FluctuationNoiseModel(0.0),
                detection_probability=1.0,
                seed=3,
            ),
        )

        def measure():
            return (
                generator.measure(device_in_hall, 0, hall_object),
                generator.measure(device_in_room, 0, room_pair_object),
            )

        same_floor_clear, through_wall = benchmark(measure)
        crossings = count_wall_crossings(
            Segment(device_in_room.position, room_pair_object), walls
        )
        print_table(
            "PATHLOSS: Figure 3(a) wall asymmetry (both pairs 5 m apart)",
            ["pair", "wall crossings", "rssi (dBm)"],
            [
                ["device in hallway -> object in hallway", 0, f"{same_floor_clear:.1f}"],
                ["device in room -> object in hallway", crossings, f"{through_wall:.1f}"],
            ],
        )
        assert crossings >= 1
        assert through_wall < same_floor_clear

    def test_wall_count_sweep(self, benchmark):
        """RSSI drop as the number of intervening walls grows."""
        noise = ObstacleNoiseModel(wall_attenuation_db=3.5)
        model = PathLossModel(exponent=2.8)

        def sweep():
            return {
                walls: model.rssi_at(10.0) + noise.attenuation_from_counts(walls, 0)
                for walls in (0, 1, 2, 4, 8)
            }

        results = benchmark(sweep)
        print_table(
            "PATHLOSS: RSSI at 10 m vs number of intervening walls",
            ["walls", "rssi (dBm)"],
            [[walls, f"{value:.1f}"] for walls, value in sorted(results.items())],
        )
        ordered = [results[w] for w in (0, 1, 2, 4, 8)]
        assert ordered == sorted(ordered, reverse=True)


class TestGenerationCost:
    def test_rssi_generation_cost_with_walls(self, benchmark, office_workload):
        building, devices, simulation, _ = office_workload
        generator = RSSIGenerator(
            building, devices, RSSIGenerationConfig(sampling_period=4.0, seed=5)
        )
        records = benchmark.pedantic(
            lambda: generator.generate(simulation.trajectories), rounds=1, iterations=1
        )
        assert len(records) > 0
