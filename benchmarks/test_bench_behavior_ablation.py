"""ABLATION: moving-pattern behaviour and crowd interaction.

Two design choices called out in DESIGN.md:

* **walk-stay vs continuous walking** — the walk-stay mechanism makes objects
  dwell at destinations, which should lengthen proximity detection periods
  and reduce the distance covered;
* **crowd interaction on/off** — the density-slowdown extension (Section 4's
  "crowd simulation model" hook) should reduce walking speed in congested
  scenarios while leaving sparse scenarios untouched.
"""

import statistics

import pytest

from conftest import deploy_wifi, make_building, print_table

from repro.analysis.statistics import trajectory_statistics
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment
from repro.mobility.behavior import ContinuousWalkBehavior, WalkStayBehavior
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.crowd import DensitySlowdownModel, NoInteraction
from repro.mobility.distributions import CrowdOutliersDistribution
from repro.positioning.proximity import ProximityMethod
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator

DURATION = 240.0


def _simulate(building, behavior=None, crowd_model=None, distribution=None,
              count=20, seed=61):
    controller = MovingObjectController(
        building,
        ObjectGenerationConfig(
            count=count, duration=DURATION, sampling_period=1.0, time_step=0.5, seed=seed
        ),
        distribution=distribution,
        behavior=behavior,
        crowd_model=crowd_model,
    )
    return controller.generate()


@pytest.fixture(scope="module")
def office():
    return make_building("office", floors=2)


@pytest.fixture(scope="module")
def rfid_readers(office):
    controller = PositioningDeviceController(office, seed=17)
    return controller.deploy(
        DeviceDeploymentRequest(
            DeviceType.RFID, 6, CheckPointDeployment(),
            overrides={"detection_range": 4.0, "detection_interval": 2.0},
        )
    )


class TestWalkStayVsContinuous:
    def test_behavior_effect_on_movement_and_detection_periods(self, benchmark, office, rfid_readers):
        def run(behavior, seed):
            simulation = _simulate(office, behavior=behavior, seed=seed)
            rssi = RSSIGenerator(
                office, rfid_readers, RSSIGenerationConfig(sampling_period=1.0, seed=seed + 1)
            ).generate(simulation.trajectories)
            periods = ProximityMethod(office, rfid_readers).detect(rssi)
            stats = trajectory_statistics(simulation.trajectories)
            durations = [p.duration for p in periods] or [0.0]
            return stats, periods, statistics.fmean(durations)

        def run_both():
            return (
                run(WalkStayBehavior(min_stay=30.0, max_stay=90.0), seed=62),
                run(ContinuousWalkBehavior(speed_fraction=0.9), seed=62),
            )

        (walk_stay_stats, walk_stay_periods, walk_stay_mean), (
            continuous_stats, continuous_periods, continuous_mean
        ) = benchmark.pedantic(run_both, rounds=1, iterations=1)
        print_table(
            "ABLATION: walk-stay vs continuous behaviour (office, 6 RFID check-points)",
            ["behaviour", "mean distance walked (m)", "mean speed (m/s)",
             "detection periods", "mean period length (s)"],
            [
                ["walk-stay", f"{walk_stay_stats.mean_length_m:.1f}",
                 f"{walk_stay_stats.mean_speed_mps:.2f}",
                 len(walk_stay_periods), f"{walk_stay_mean:.1f}"],
                ["continuous", f"{continuous_stats.mean_length_m:.1f}",
                 f"{continuous_stats.mean_speed_mps:.2f}",
                 len(continuous_periods), f"{continuous_mean:.1f}"],
            ],
        )
        # Walk-stay objects cover less ground but dwell longer near check-points.
        assert walk_stay_stats.mean_length_m < continuous_stats.mean_length_m
        assert walk_stay_mean > continuous_mean


class TestCrowdInteractionAblation:
    def test_congestion_slows_crowded_scenarios(self, benchmark, office):
        distribution = CrowdOutliersDistribution(crowd_count=1, crowd_fraction=1.0, crowd_radius=2.0)

        def run_both():
            free = _simulate(
                office, behavior=ContinuousWalkBehavior(1.0),
                crowd_model=NoInteraction(), distribution=distribution, count=25, seed=63,
            )
            congested = _simulate(
                office, behavior=ContinuousWalkBehavior(1.0),
                crowd_model=DensitySlowdownModel(personal_radius=2.0, slowdown_per_neighbor=0.2),
                distribution=distribution, count=25, seed=63,
            )
            return (
                trajectory_statistics(free.trajectories),
                trajectory_statistics(congested.trajectories),
            )

        free_stats, congested_stats = benchmark.pedantic(run_both, rounds=1, iterations=1)
        print_table(
            "ABLATION: crowd interaction (25 objects released from one crowd)",
            ["crowd model", "mean distance walked (m)", "mean speed (m/s)"],
            [
                ["none", f"{free_stats.mean_length_m:.1f}", f"{free_stats.mean_speed_mps:.2f}"],
                ["density-slowdown", f"{congested_stats.mean_length_m:.1f}",
                 f"{congested_stats.mean_speed_mps:.2f}"],
            ],
        )
        assert congested_stats.mean_length_m < free_stats.mean_length_m
        assert congested_stats.mean_speed_mps < free_stats.mean_speed_mps
