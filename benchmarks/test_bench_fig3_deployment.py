"""FIG3-A / FIG3-B: the data-generation example of Figure 3.

Figure 3 shows two real-world floor plans: the ground floor uses the
*coverage* deployment model (devices near walls, maximally separated) and the
first floor the *check-point* model (devices at room entrances / hotspots);
the moving objects are initialised with the *crowd-outliers* distribution
(crowds around hot areas plus random outliers).

These benches measure the two deployment models and the two initial
distributions on the synthetic mall and assert the qualitative relationships
the figure illustrates:

* coverage deployments hug the walls and spread devices farther apart;
* check-point deployments sit on room entrances;
* crowd-outliers snapshots are far more concentrated than uniform ones.
"""

import random

import pytest

from conftest import make_building, print_table

from repro.analysis.statistics import crowding_at, deployment_statistics
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment, CoverageDeployment
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.distributions import CrowdOutliersDistribution, UniformDistribution

DEVICES_PER_FLOOR = 8
OBJECT_COUNT = 80


def _deploy(building, model, floor_id, seed=3):
    controller = PositioningDeviceController(building, seed=seed)
    return controller.deploy(
        DeviceDeploymentRequest(DeviceType.WIFI, DEVICES_PER_FLOOR, model, floor_ids=[floor_id])
    )


@pytest.fixture(scope="module")
def mall():
    return make_building("mall", floors=2)


class TestFig3aDeploymentModels:
    def test_coverage_model_ground_floor(self, benchmark, mall):
        devices = benchmark(lambda: _deploy(mall, CoverageDeployment(), 0))
        report = deployment_statistics(mall, devices, 0)
        assert report.device_count == DEVICES_PER_FLOOR
        assert report.mean_distance_to_wall < 1.5
        assert report.covered_area_fraction > 0.6

    def test_checkpoint_model_first_floor(self, benchmark, mall):
        devices = benchmark(lambda: _deploy(mall, CheckPointDeployment(), 1))
        report = deployment_statistics(mall, devices, 1)
        assert report.device_count == DEVICES_PER_FLOOR
        assert report.mean_distance_to_nearest_door < 1.0

    def test_models_differ_as_in_figure3(self, benchmark, mall):
        def both():
            coverage = _deploy(mall, CoverageDeployment(), 0)
            checkpoint = _deploy(mall, CheckPointDeployment(), 1)
            return (
                deployment_statistics(mall, coverage, 0),
                deployment_statistics(mall, checkpoint, 1),
            )

        coverage_report, checkpoint_report = benchmark(both)
        print_table(
            "FIG3-A: deployment models (ground floor = coverage, first floor = check-point)",
            ["model", "mean wall dist (m)", "mean door dist (m)", "min separation (m)", "coverage"],
            [
                ["coverage", f"{coverage_report.mean_distance_to_wall:.2f}",
                 f"{coverage_report.mean_distance_to_nearest_door:.2f}",
                 f"{coverage_report.min_pairwise_distance:.2f}",
                 f"{coverage_report.covered_area_fraction:.2f}"],
                ["check-point", f"{checkpoint_report.mean_distance_to_wall:.2f}",
                 f"{checkpoint_report.mean_distance_to_nearest_door:.2f}",
                 f"{checkpoint_report.min_pairwise_distance:.2f}",
                 f"{checkpoint_report.covered_area_fraction:.2f}"],
            ],
        )
        # Check-point devices sit on doors; coverage devices sit on walls and
        # are spread farther apart.
        assert checkpoint_report.mean_distance_to_nearest_door < coverage_report.mean_distance_to_nearest_door
        assert coverage_report.min_pairwise_distance > checkpoint_report.min_pairwise_distance * 0.8


class TestFig3bInitialDistributions:
    def _simulate(self, mall, distribution, seed=11):
        controller = MovingObjectController(
            mall,
            ObjectGenerationConfig(
                count=OBJECT_COUNT, duration=30.0, time_step=0.5, sampling_period=1.0, seed=seed
            ),
            distribution=distribution,
        )
        return controller.generate()

    def test_crowd_outliers_distribution(self, benchmark, mall):
        distribution = CrowdOutliersDistribution(
            crowd_count=3, crowd_fraction=0.8, hot_partition_tags=("shop", "canteen")
        )
        result = benchmark.pedantic(
            lambda: self._simulate(mall, distribution), rounds=1, iterations=1
        )
        report = crowding_at(result.trajectories, 0.0)
        assert report.top3_share > 0.5  # the three crowds dominate

    def test_uniform_distribution(self, benchmark, mall):
        result = benchmark.pedantic(
            lambda: self._simulate(mall, UniformDistribution()), rounds=1, iterations=1
        )
        report = crowding_at(result.trajectories, 0.0)
        assert report.top3_share < 0.6

    def test_crowds_more_concentrated_than_uniform(self, benchmark, mall):
        def both():
            crowds = self._simulate(
                mall,
                CrowdOutliersDistribution(
                    crowd_count=3, crowd_fraction=0.8, hot_partition_tags=("shop", "canteen")
                ),
            )
            uniform = self._simulate(mall, UniformDistribution())
            return crowding_at(crowds.trajectories, 0.0), crowding_at(uniform.trajectories, 0.0)

        crowd_report, uniform_report = benchmark.pedantic(both, rounds=1, iterations=1)
        print_table(
            "FIG3-B: initial distributions (80 objects, t=0 snapshot)",
            ["distribution", "populated partitions", "max share", "top-3 share", "gini"],
            [
                ["crowd-outliers", crowd_report.populated_partitions,
                 f"{crowd_report.max_share:.2f}", f"{crowd_report.top3_share:.2f}",
                 f"{crowd_report.gini:.2f}"],
                ["uniform", uniform_report.populated_partitions,
                 f"{uniform_report.max_share:.2f}", f"{uniform_report.top3_share:.2f}",
                 f"{uniform_report.gini:.2f}"],
            ],
        )
        assert crowd_report.top3_share > uniform_report.top3_share
        assert crowd_report.gini > uniform_report.gini
        assert crowd_report.populated_partitions < uniform_report.populated_partitions
