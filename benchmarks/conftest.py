"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the experiments listed in DESIGN.md
(section "Experiment index").  The helpers here build the standard workloads
(buildings, device deployments, simulated ground truth, raw RSSI) so the
individual bench files stay focused on the experiment itself.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the per-experiment summary tables that mirror what the
paper reports qualitatively.
"""

from __future__ import annotations

import pytest

from repro.building.synthetic import building_by_name
from repro.building.semantics import SemanticExtractor
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment, CoverageDeployment
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator


def make_building(name: str = "office", floors: int = 2):
    """A semantically annotated synthetic building."""
    building = building_by_name(name, floors=floors)
    SemanticExtractor().annotate_building(building)
    return building


def deploy_wifi(building, count_per_floor=8, seed=7, deployment="coverage"):
    """Deploy Wi-Fi APs with the requested deployment model; return the devices."""
    controller = PositioningDeviceController(building, seed=seed)
    model = CoverageDeployment() if deployment == "coverage" else CheckPointDeployment()
    return controller.deploy(
        DeviceDeploymentRequest(DeviceType.WIFI, count_per_floor, model)
    )


def simulate(building, count=20, duration=240.0, sampling_period=1.0, seed=29, **kwargs):
    """Run the Moving Object Layer and return the simulation result."""
    controller = MovingObjectController(
        building,
        ObjectGenerationConfig(
            count=count,
            duration=duration,
            sampling_period=sampling_period,
            time_step=0.5,
            seed=seed,
            **kwargs,
        ),
    )
    return controller.generate()


def generate_rssi(building, devices, trajectories, sampling_period=2.0, seed=31):
    """Generate raw RSSI data for the given ground truth."""
    generator = RSSIGenerator(
        building, devices, RSSIGenerationConfig(sampling_period=sampling_period, seed=seed)
    )
    return generator.generate(trajectories)


@pytest.fixture(scope="session")
def office_workload():
    """A medium office workload shared by several benches.

    Returns (building, devices, simulation result, rssi records).
    """
    building = make_building("office", floors=2)
    devices = deploy_wifi(building, count_per_floor=8)
    simulation = simulate(building, count=20, duration=240.0)
    rssi = generate_rssi(building, devices, simulation.trajectories)
    return building, devices, simulation, rssi


def print_table(title: str, headers, rows) -> None:
    """Print a small aligned table (shown with ``pytest -s``)."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    line = " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
