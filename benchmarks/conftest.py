"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the experiments listed in DESIGN.md
(section "Experiment index").  The helpers here build the standard workloads
(buildings, device deployments, simulated ground truth, raw RSSI) so the
individual bench files stay focused on the experiment itself.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the per-experiment summary tables that mirror what the
paper reports qualitatively.

Every bench run also persists the measured perf trajectory: each bench module
(an "area": the module name minus its ``test_bench_`` prefix) gets a
``BENCH_<area>.json`` file at the repository root holding the wall-clock of
every passed test plus whatever richer numbers the module published through
:func:`record_bench` (records/sec, cache hit rates, query latencies, monitor
overhead).  The files are committed, so the repo carries a machine-readable
history of how fast it was at each PR — CI regenerates and uploads them as
workflow artifacts.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict

import pytest

from repro.building.synthetic import building_by_name
from repro.building.semantics import SemanticExtractor
from repro.core.types import DeviceType
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import CheckPointDeployment, CoverageDeployment
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator


def make_building(name: str = "office", floors: int = 2):
    """A semantically annotated synthetic building."""
    building = building_by_name(name, floors=floors)
    SemanticExtractor().annotate_building(building)
    return building


def deploy_wifi(building, count_per_floor=8, seed=7, deployment="coverage"):
    """Deploy Wi-Fi APs with the requested deployment model; return the devices."""
    controller = PositioningDeviceController(building, seed=seed)
    model = CoverageDeployment() if deployment == "coverage" else CheckPointDeployment()
    return controller.deploy(
        DeviceDeploymentRequest(DeviceType.WIFI, count_per_floor, model)
    )


def simulate(building, count=20, duration=240.0, sampling_period=1.0, seed=29, **kwargs):
    """Run the Moving Object Layer and return the simulation result."""
    controller = MovingObjectController(
        building,
        ObjectGenerationConfig(
            count=count,
            duration=duration,
            sampling_period=sampling_period,
            time_step=0.5,
            seed=seed,
            **kwargs,
        ),
    )
    return controller.generate()


def generate_rssi(building, devices, trajectories, sampling_period=2.0, seed=31):
    """Generate raw RSSI data for the given ground truth."""
    generator = RSSIGenerator(
        building, devices, RSSIGenerationConfig(sampling_period=sampling_period, seed=seed)
    )
    return generator.generate(trajectories)


@pytest.fixture(scope="session")
def office_workload():
    """A medium office workload shared by several benches.

    Returns (building, devices, simulation result, rssi records).
    """
    building = make_building("office", floors=2)
    devices = deploy_wifi(building, count_per_floor=8)
    simulation = simulate(building, count=20, duration=240.0)
    rssi = generate_rssi(building, devices, simulation.trajectories)
    return building, devices, simulation, rssi


# --------------------------------------------------------------------------- #
# Persisted perf trajectory (BENCH_<area>.json at the repository root)
# --------------------------------------------------------------------------- #
_REPO_ROOT = Path(__file__).resolve().parent.parent

#: area -> {"tests": {test name -> seconds}, "metrics": {name -> value}}.
_BENCH_RESULTS: Dict[str, Dict[str, dict]] = {}


def _area_of(module_path) -> str:
    """``benchmarks/test_bench_query_planner.py`` -> ``query_planner``."""
    stem = Path(str(module_path)).stem
    prefix = "test_bench_"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


def _area_entry(area: str) -> Dict[str, dict]:
    return _BENCH_RESULTS.setdefault(area, {"tests": {}, "metrics": {}})


def record_bench(area: str, **metrics) -> None:
    """Publish rich numbers (records/sec, hit rates, latencies) for *area*.

    Bench tests call this with whatever they measured beyond wall clock;
    the values land in the area's ``BENCH_<area>.json`` under ``metrics``.
    Later calls with the same key overwrite — record final numbers.
    """
    _area_entry(area)["metrics"].update(metrics)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    # Directory-scoped conftest: only benchmarks/ tests reach this hook, so a
    # full-repo pytest run never mixes unit-test timings into the bench files.
    if report.when == "call" and report.passed:
        _area_entry(_area_of(item.fspath))["tests"][item.name] = round(
            report.duration, 6
        )


def pytest_sessionfinish(session, exitstatus):
    for area, entry in sorted(_BENCH_RESULTS.items()):
        if not entry["tests"] and not entry["metrics"]:
            continue
        payload = {
            "schema": 1,
            "area": area,
            "python": platform.python_version(),
            "tests_seconds": dict(sorted(entry["tests"].items())),
            "metrics": dict(sorted(entry["metrics"].items())),
        }
        path = _REPO_ROOT / f"BENCH_{area}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


def print_table(title: str, headers, rows) -> None:
    """Print a small aligned table (shown with ``pytest -s``)."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    line = " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
