"""QUERY PLANNER: pushed-down versus Python-fallback execution.

The composable builder compiles to a logical plan that each engine pushes
down as far as it can; a callable (``python``) predicate forces the planner's
streaming fallback.  This bench runs semantically identical queries both ways
on both engines — the pushed form phrases the predicate declaratively
(``where``/``during``), the fallback form hides the very same predicate in a
Python lambda — quantifying exactly what the push-down machinery buys.
"""

import time

import pytest

from conftest import print_table, record_bench

from repro.storage.backends import MemoryBackend, SQLiteBackend
from repro.storage.repositories import DataWarehouse

BACKEND_KINDS = ("memory", "sqlite")


def _make_warehouse(kind, tmp_path_factory):
    if kind == "memory":
        return DataWarehouse(MemoryBackend())
    path = tmp_path_factory.mktemp("bench_planner") / "bench.sqlite"
    return DataWarehouse(SQLiteBackend(path=path))


@pytest.fixture(scope="module", params=BACKEND_KINDS)
def loaded(request, tmp_path_factory, office_workload):
    _, devices, simulation, rssi = office_workload
    warehouse = _make_warehouse(request.param, tmp_path_factory)
    warehouse.trajectories.add_trajectory_set(simulation.trajectories)
    warehouse.rssi.add_many(rssi)
    for device in devices:
        warehouse.devices.add(device.as_record())
    warehouse.flush()
    yield request.param, warehouse
    warehouse.close()


#: (label, pushed-down query, equivalent Python-fallback query).
QUERY_PAIRS = (
    (
        "time-window",
        lambda q: q("trajectory").during(60.0, 120.0).count(),
        lambda q: q("trajectory").filter(lambda row: 60.0 <= row["t"] <= 120.0).count(),
    ),
    (
        "object-filter",
        lambda q: q("trajectory").where(object_id="obj_0001").count(),
        lambda q: q("trajectory").filter(lambda row: row["object_id"] == "obj_0001").count(),
    ),
    (
        "count-by-device",
        lambda q: q("rssi").count_by("device_id"),
        lambda q: q("rssi").filter(lambda row: True).count_by("device_id"),
    ),
    (
        "floor-window-limit",
        lambda q: q("trajectory").during(0.0, 120.0).on_floor(0).limit(50).all(),
        lambda q: (
            q("trajectory")
            .filter(lambda row: row["floor_id"] == 0 and 0.0 <= row["t"] <= 120.0)
            .limit(50)
            .all()
        ),
    ),
)


class TestPushdownVersusFallback:
    @pytest.mark.parametrize("label", [pair[0] for pair in QUERY_PAIRS])
    def test_pushed(self, benchmark, loaded, label):
        _, warehouse = loaded
        pushed = next(pair[1] for pair in QUERY_PAIRS if pair[0] == label)
        assert benchmark(lambda: pushed(warehouse.query)) is not None

    @pytest.mark.parametrize("label", [pair[0] for pair in QUERY_PAIRS])
    def test_fallback(self, benchmark, loaded, label):
        _, warehouse = loaded
        fallback = next(pair[2] for pair in QUERY_PAIRS if pair[0] == label)
        assert benchmark(lambda: fallback(warehouse.query)) is not None

    @pytest.mark.parametrize("label", [pair[0] for pair in QUERY_PAIRS])
    def test_both_forms_agree(self, loaded, label):
        _, warehouse = loaded
        _, pushed, fallback = next(pair for pair in QUERY_PAIRS if pair[0] == label)
        assert pushed(warehouse.query) == fallback(warehouse.query)


def test_planner_comparison_summary(office_workload, tmp_path_factory):
    """One-shot pushed-vs-fallback table per engine (shown with ``pytest -s``)."""
    _, devices, simulation, rssi = office_workload
    rows = []
    for kind in BACKEND_KINDS:
        warehouse = _make_warehouse(kind, tmp_path_factory)
        warehouse.trajectories.add_trajectory_set(simulation.trajectories)
        warehouse.rssi.add_many(rssi)
        warehouse.flush()
        for label, pushed, fallback in QUERY_PAIRS:
            timings = {}
            for form, query in (("pushed", pushed), ("fallback", fallback)):
                t0 = time.perf_counter()
                for _ in range(5):
                    query(warehouse.query)
                timings[form] = (time.perf_counter() - t0) * 1000.0 / 5.0
            key = f"{kind}_{label}".replace("-", "_")
            record_bench(
                "query_planner",
                **{
                    f"{key}_pushed_ms": round(timings["pushed"], 3),
                    f"{key}_fallback_ms": round(timings["fallback"], 3),
                },
            )
            explain = warehouse.query("trajectory").during(60.0, 120.0).explain()
            rows.append(
                (
                    kind,
                    label,
                    f"{timings['pushed']:.2f}",
                    f"{timings['fallback']:.2f}",
                    f"{timings['fallback'] / max(timings['pushed'], 1e-9):.1f}x",
                    explain["pushdown"],
                )
            )
        warehouse.close()
    print_table(
        "query planner: pushed-down vs Python fallback (ms per query)",
        ("backend", "query", "pushed", "fallback", "speedup", "time-window pushdown"),
        rows,
    )
    assert rows
