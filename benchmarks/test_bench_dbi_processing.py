"""DBI-PROC: Section 4.1 DBI processing as building size grows.

Measures the cost and the output of the full DBI path — serialise a building
to IFC-SPF, tokenise + parse it back, recover door and staircase connectivity,
decompose irregular partitions and build the topology — for office buildings
of increasing size, plus an ablation over the decomposition thresholds.
"""

import pytest

from conftest import print_table

from repro.building.editor import IndoorEnvironmentController
from repro.building.synthetic import OfficeSpec, office_building
from repro.building.topology import AccessibilityGraph
from repro.geometry.decompose import DecompositionConfig
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions
from repro.ifc.writer import building_to_ifc


def _ifc_text(floors, rooms_per_side=6):
    return building_to_ifc(office_building(OfficeSpec(floors=floors, rooms_per_side=rooms_per_side)))


class TestParsingScalability:
    @pytest.mark.parametrize("floors", [1, 3, 6])
    def test_process_ifc_file(self, benchmark, floors):
        text = _ifc_text(floors)
        building, report = benchmark(lambda: DBIProcessor().process_text(text))
        assert report.errors == []
        assert len(building.floors) == floors
        assert len(report.staircase_connectivity) == floors - 1

    def test_entity_counts_grow_with_building_size(self, benchmark):
        def sweep():
            rows = []
            for floors in (1, 3, 6):
                text = _ifc_text(floors)
                building, report = DBIProcessor().process_text(text)
                graph = AccessibilityGraph(building)
                rows.append(
                    (floors, len(text), building.partition_count, building.door_count,
                     len(building.staircases), graph.edge_count)
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "DBI-PROC: processed entities vs building size",
            ["floors", "IFC chars", "partitions", "doors", "staircases", "topology edges"],
            rows,
        )
        partitions = [row[2] for row in rows]
        assert partitions == sorted(partitions)


class TestDecompositionAblation:
    """Ablation called out in DESIGN.md: decomposition granularity."""

    @pytest.mark.parametrize("max_area", [40.0, 120.0, 100000.0])
    def test_decomposition_granularity(self, benchmark, max_area):
        def run():
            building = office_building(OfficeSpec(floors=2, rooms_per_side=6))
            controller = IndoorEnvironmentController(building)
            report = controller.decompose_irregular_partitions(
                DecompositionConfig(max_area=max_area, max_aspect_ratio=3.0)
            )
            return building, report

        building, report = benchmark(run)
        graph = AccessibilityGraph(building)
        assert graph.is_fully_connected()

    def test_granularity_vs_topology_size(self, benchmark):
        def sweep():
            rows = []
            for max_area in (40.0, 120.0, 100000.0):
                building = office_building(OfficeSpec(floors=2, rooms_per_side=6))
                controller = IndoorEnvironmentController(building)
                report = controller.decompose_irregular_partitions(
                    DecompositionConfig(max_area=max_area, max_aspect_ratio=3.0)
                )
                graph = AccessibilityGraph(building)
                rows.append(
                    (max_area, report.partitions_split, building.partition_count,
                     building.door_count, graph.edge_count)
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "DBI-PROC ablation: decomposition max_area vs topology size",
            ["max_area (m^2)", "partitions split", "partitions", "doors", "topology edges"],
            rows,
        )
        partition_counts = [row[2] for row in rows]
        # Finer decomposition produces more partitions.
        assert partition_counts[0] > partition_counts[-1]


class TestStaircaseRecovery:
    def test_staircase_connectivity_recovered_for_all_floors(self, benchmark):
        text = _ifc_text(6)

        def run():
            _, report = DBIProcessor().process_text(text)
            return report

        report = benchmark(run)
        assert len(report.staircase_connectivity) == 5
        for staircase_id, links in report.staircase_connectivity.items():
            assert int(links["upper_floor"]) == int(links["lower_floor"]) + 1
