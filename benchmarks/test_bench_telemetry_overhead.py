"""TELEMETRY OVERHEAD: disabled instrumentation must be free.

The observability layer's contract (docs/observability.md): with
``telemetry.enabled = False`` — the default, and therefore what every tier-1
test and the seed baseline measured — every instrument call hits a shared
no-op singleton, so the instrumented pipeline must run at the seed's speed.
This bench holds that line relatively: the same workload is generated with
telemetry off and on, the outputs must be byte-identical (instrumentation
never changes data), the disabled run must not be slower than the enabled
one beyond timing noise, and even the enabled run must stay within a small
multiple (tracing + counters are increments and appends, not work).
"""

import time

from conftest import record_bench

from repro.core.config import (
    DeviceConfig,
    EnvironmentConfig,
    ObjectConfig,
    TelemetryConfig,
    VitaConfig,
)
from repro.core.pipeline import VitaPipeline

#: Enabled telemetry may cost at most this multiple of the disabled run.
MAX_ENABLED_RATIO = 1.5
#: Absolute slack absorbing scheduler noise on a ~seconds-long workload.
NOISE_SECONDS = 0.75
ROUNDS = 3


def _config(enabled: bool) -> VitaConfig:
    return VitaConfig(
        environment=EnvironmentConfig(building="office", floors=1),
        devices=[DeviceConfig(count_per_floor=6)],
        objects=ObjectConfig(count=10, duration=90.0, time_step=0.5),
        telemetry=TelemetryConfig(enabled=enabled),
        seed=7,
        shards=4,
    )


def _run_once(enabled: bool):
    start = time.perf_counter()
    result = VitaPipeline(_config(enabled)).run_streaming(workers=1)
    seconds = time.perf_counter() - start
    counts = dict(result.report.records_written)
    result.warehouse.close()
    return seconds, counts


def test_disabled_telemetry_is_within_noise_of_enabled():
    # Interleave the rounds (off, on, off, on, ...) so cache warm-up and
    # machine drift hit both variants equally; compare the best of each.
    disabled_seconds = enabled_seconds = float("inf")
    disabled_counts = enabled_counts = None
    for _ in range(ROUNDS):
        seconds, disabled_counts = _run_once(enabled=False)
        disabled_seconds = min(disabled_seconds, seconds)
        seconds, enabled_counts = _run_once(enabled=True)
        enabled_seconds = min(enabled_seconds, seconds)

    # Instrumentation never changes the generated data.
    assert disabled_counts == enabled_counts

    ratio = enabled_seconds / max(disabled_seconds, 1e-9)
    record_bench(
        "telemetry_overhead",
        disabled_seconds=round(disabled_seconds, 4),
        enabled_seconds=round(enabled_seconds, 4),
        enabled_over_disabled_ratio=round(ratio, 3),
    )

    # The guard proper: the default (disabled) path — the one tier-1 and the
    # seed baseline time — must not have grown a telemetry tax.
    assert disabled_seconds <= enabled_seconds + NOISE_SECONDS, (
        f"disabled telemetry ({disabled_seconds:.2f}s) is slower than enabled "
        f"({enabled_seconds:.2f}s) beyond noise: the no-op path is doing work"
    )
    assert enabled_seconds <= disabled_seconds * MAX_ENABLED_RATIO + NOISE_SECONDS, (
        f"enabled telemetry costs {ratio:.2f}x (floor {MAX_ENABLED_RATIO}x): "
        "instrumentation is on a hot path it should not be on"
    )
