"""STORAGE: Data Stream API query performance and spatial-index ablation.

The paper stores generated data in PostgreSQL with "efficient indices" and
wraps "commonly used functions and query processing algorithms" behind the
Data Stream APIs.  This bench measures the in-memory equivalents on a
generated dataset (time-range scans, snapshots, spatial range and kNN
queries), and runs the grid-vs-R-tree ablation called out in DESIGN.md.
"""

import random

import pytest

from conftest import print_table

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.spatial_index import GridIndex, RTreeIndex
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI


@pytest.fixture(scope="module")
def warehouse(office_workload):
    building, devices, simulation, rssi = office_workload
    warehouse = DataWarehouse()
    warehouse.trajectories.add_trajectory_set(simulation.trajectories)
    warehouse.rssi.add_many(rssi)
    for device in devices:
        warehouse.devices.add(device.as_record())
    return warehouse


@pytest.fixture(scope="module")
def api(warehouse):
    return DataStreamAPI(warehouse)


class TestDataStreamQueries:
    def test_time_range_scan(self, benchmark, api):
        records = benchmark(lambda: api.trajectory_window(60.0, 120.0))
        assert records

    def test_snapshot_query(self, benchmark, api):
        snapshot = benchmark(lambda: api.snapshot(120.0))
        assert snapshot

    def test_spatial_range_query(self, benchmark, api, office_workload):
        building = office_workload[0]
        box = building.floor(0).bounding_box
        region = BoundingBox(box.min_x, box.min_y, box.min_x + 20.0, box.max_y)
        objects = benchmark(lambda: api.objects_in_region(0, region, 0.0, 240.0))
        assert isinstance(objects, list)

    def test_knn_query(self, benchmark, api):
        result = benchmark(lambda: api.knn_at(0, Point(20.0, 9.0), t=120.0, k=5))
        assert isinstance(result, list)

    def test_partition_visit_counts(self, benchmark, api):
        counts = benchmark(lambda: api.partition_visit_counts())
        assert counts

    def test_rssi_statistics(self, benchmark, api):
        statistics_by_device = benchmark(lambda: api.rssi_statistics_by_device())
        assert statistics_by_device


class TestSpatialIndexAblation:
    """Grid vs STR R-tree on point-location queries (DESIGN.md ablation)."""

    @pytest.fixture(scope="class")
    def cells(self):
        rng = random.Random(9)
        cells = []
        for _ in range(2000):
            x, y = rng.uniform(0, 400), rng.uniform(0, 400)
            cells.append(Polygon.rectangle(x, y, x + rng.uniform(2, 8), y + rng.uniform(2, 8)))
        return cells

    @pytest.fixture(scope="class")
    def query_points(self):
        rng = random.Random(11)
        return [Point(rng.uniform(0, 400), rng.uniform(0, 400)) for _ in range(500)]

    def test_grid_index_point_queries(self, benchmark, cells, query_points):
        index = GridIndex(cells, lambda p: p.bounding_box)
        benchmark(lambda: [index.query_point(point) for point in query_points])

    def test_rtree_index_point_queries(self, benchmark, cells, query_points):
        index = RTreeIndex(cells, lambda p: p.bounding_box)
        benchmark(lambda: [index.query_point(point) for point in query_points])

    def test_grid_index_build(self, benchmark, cells):
        benchmark(lambda: GridIndex(cells, lambda p: p.bounding_box))

    def test_rtree_index_build(self, benchmark, cells):
        benchmark(lambda: RTreeIndex(cells, lambda p: p.bounding_box))

    def test_both_indexes_agree(self, benchmark, cells, query_points):
        grid = GridIndex(cells, lambda p: p.bounding_box)
        rtree = RTreeIndex(cells, lambda p: p.bounding_box)

        def compare():
            mismatches = 0
            for point in query_points:
                if {id(c) for c in grid.query_point(point)} != {id(c) for c in rtree.query_point(point)}:
                    mismatches += 1
            return mismatches

        assert benchmark(compare) == 0
