"""CMP-TOOLS: comparison against MWGen, IndoorSTG and the RFID test-data tool.

Section 1 compares Vita qualitatively against the three existing generators:
which data types they produce, whether real buildings can be imported, and how
rich the moving patterns / ground truth are.  This bench issues an equivalent
workload (same building scale, same object count, same duration) to Vita and
to each baseline re-implementation and measures:

* feature coverage (trajectories? raw RSSI? positioning data? real DBI?);
* ground-truth granularity (records per object-minute);
* generation throughput.
"""

import pytest

from conftest import make_building, deploy_wifi, generate_rssi, print_table, simulate

from repro.baselines.indoorstg import IndoorSTGConfig, IndoorSTGGenerator
from repro.baselines.mwgen import ManualFloorPlan, MWGenConfig, MWGenGenerator
from repro.baselines.rfid_tool import RFIDToolConfig, RFIDToolGenerator

OBJECTS = 20
DURATION = 240.0


def _vita_run():
    building = make_building("office", floors=2)
    devices = deploy_wifi(building, count_per_floor=6)
    simulation = simulate(building, count=OBJECTS, duration=DURATION, sampling_period=1.0)
    rssi = generate_rssi(building, devices, simulation.trajectories)
    return building, simulation, rssi


def _mwgen_run(building):
    plan = ManualFloorPlan.extract_from(building, floor_id=0)
    generator = MWGenGenerator(
        plan, MWGenConfig(object_count=OBJECTS, duration=DURATION, num_floors=2, seed=5)
    )
    return generator.generate()


def _indoorstg_run():
    return IndoorSTGGenerator(
        IndoorSTGConfig(object_count=OBJECTS, duration=DURATION, seed=5)
    ).generate()


def _rfid_tool_run():
    return RFIDToolGenerator(RFIDToolConfig(tag_count=OBJECTS * 5, seed=5)).generate()


class TestGeneratorComparison:
    def test_vita_full_pipeline(self, benchmark):
        building, simulation, rssi = benchmark.pedantic(_vita_run, rounds=1, iterations=1)
        assert simulation.trajectories.total_records > OBJECTS * DURATION * 0.5
        assert len(rssi) > 0

    def test_mwgen_baseline(self, benchmark):
        building = make_building("office", floors=2)
        output = benchmark.pedantic(lambda: _mwgen_run(building), rounds=1, iterations=1)
        assert output.trajectory_count == OBJECTS
        assert not output.produces_positioning_data

    def test_indoorstg_baseline(self, benchmark):
        output = benchmark.pedantic(_indoorstg_run, rounds=1, iterations=1)
        assert output.total_visits > 0
        assert output.supported_positioning_methods == ("proximity",)

    def test_rfid_tool_baseline(self, benchmark):
        output = benchmark.pedantic(_rfid_tool_run, rounds=1, iterations=1)
        assert output.reading_count > 0
        assert not output.produces_trajectory_data

    def test_feature_and_granularity_comparison(self, benchmark):
        def run_all():
            building, simulation, rssi = _vita_run()
            return (
                simulation,
                rssi,
                _mwgen_run(building),
                _indoorstg_run(),
                _rfid_tool_run(),
            )

        simulation, rssi, mwgen, indoorstg, rfid_tool = benchmark.pedantic(
            run_all, rounds=1, iterations=1
        )
        object_minutes = OBJECTS * DURATION / 60.0
        vita_granularity = simulation.trajectories.total_records / object_minutes
        mwgen_granularity = mwgen.total_records / object_minutes
        stg_granularity = indoorstg.total_visits / object_minutes
        print_table(
            "CMP-TOOLS: feature coverage and ground-truth granularity",
            ["generator", "real DBI", "raw trajectories", "raw RSSI", "positioning data",
             "records / object-minute"],
            [
                ["Vita (this work)", "yes", "yes (configurable Hz)", "yes",
                 "trilat/fingerprint/proximity", f"{vita_granularity:.1f}"],
                ["MWGen", "no (manual extraction)", "waypoint-level", "no", "none",
                 f"{mwgen_granularity:.1f}"],
                ["IndoorSTG", "no (artificial)", "semantic visits", "no", "proximity only",
                 f"{stg_granularity:.1f}"],
                ["RFID tool", "no (conveyor belts)", "no", "no (reader events)", "none",
                 f"{rfid_tool.reading_count} readings"],
            ],
        )
        # The shape the paper claims: Vita preserves ground truth at a much
        # finer granularity than any of the baselines.
        assert vita_granularity > 10 * mwgen_granularity
        assert vita_granularity > 10 * stg_granularity
        # And it is the only generator producing both trajectories and RSSI.
        assert len(rssi) > 0
        assert not mwgen.produces_rssi_data
        assert not indoorstg.produces_rssi_data
        assert not rfid_tool.produces_trajectory_data
