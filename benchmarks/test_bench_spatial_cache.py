"""SPATIAL CACHE: cached versus uncached routing / line-of-sight cost.

PR "unified cached SpatialService" claim: with the streaming pipeline
bounding memory, spatial recomputation dominates generation CPU, and the
shared per-building cache layer removes most of it.  This bench runs the
same routing- and LOS-heavy office workloads through a cached and an
uncached :class:`~repro.spatial.SpatialService` and asserts the cached side
is at least 2x faster, while spot-checking that both sides return identical
answers (the cache's determinism contract).

Run with ``pytest benchmarks/test_bench_spatial_cache.py -s`` to see the
speedup table; the equivalence/property suites in ``tests/`` hold the
correctness line exhaustively.
"""

import random
import time

import pytest

from conftest import deploy_wifi, make_building, print_table, record_bench

from repro.core.config import SpatialConfig
from repro.core.errors import RoutingError
from repro.geometry.point import Point
from repro.spatial import SpatialService

#: The acceptance floor of the PR: cached must be at least this much faster.
MIN_SPEEDUP = 2.0

ROUTE_QUERIES = 150
LOS_POINTS = 40
LOS_REPEATS = 8  # RSSI sampling revisits stationary points many times


@pytest.fixture(scope="module")
def office():
    return make_building("office", floors=2)


@pytest.fixture(scope="module")
def office_devices(office):
    return deploy_wifi(office, count_per_floor=8)


def _route_workload(building, seed=71, queries=ROUTE_QUERIES):
    """Engine-shaped routing queries: (source, target) pairs across floors."""
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < queries:
        a = building.random_location(rng)
        b = building.random_location(rng)
        pairs.append(((a.floor_id, Point(a.x, a.y)), (b.floor_id, Point(b.x, b.y))))
    return pairs


def _run_routes(service, pairs):
    routed = []
    for (sf, sp), (tf, tp) in pairs:
        try:
            routed.append(service.shortest_route(sf, sp, tf, tp).length)
        except RoutingError:
            routed.append(None)
    return routed


def _los_workload(building, devices, seed=83, points=LOS_POINTS):
    """RSSI-shaped sight lines: every device against revisited object points."""
    rng = random.Random(seed)
    queries = []
    anchors = []
    while len(anchors) < points:
        location = building.random_location(rng)
        anchors.append((location.floor_id, Point(location.x, location.y)))
    for _ in range(LOS_REPEATS):  # stationary objects re-sample the same spots
        for floor_id, point in anchors:
            for device in devices:
                if device.floor_id == floor_id:
                    queries.append((floor_id, device.position, point))
    return queries


def _run_sightlines(service, queries):
    return [
        service.sightline(floor_id, origin, target).total_crossings
        for floor_id, origin, target in queries
    ]


def _timed(function, *args):
    start = time.perf_counter()
    result = function(*args)
    return result, time.perf_counter() - start


class TestSpatialCacheSpeedup:
    def test_cached_routing_is_at_least_2x_faster(self, office):
        pairs = _route_workload(office)
        uncached = SpatialService(office, config=SpatialConfig(enabled=False))
        cached = SpatialService(office)
        plain_result, plain_seconds = _timed(_run_routes, uncached, pairs)
        cached_result, cached_seconds = _timed(_run_routes, cached, pairs)
        assert cached_result == plain_result, "caching changed a route"
        speedup = plain_seconds / max(cached_seconds, 1e-9)
        print_table(
            "routing: cached vs uncached SpatialService (office, 2 floors)",
            ("variant", "seconds", "queries/s"),
            [
                ("uncached", f"{plain_seconds:.3f}", f"{len(pairs) / plain_seconds:,.0f}"),
                ("cached", f"{cached_seconds:.3f}", f"{len(pairs) / cached_seconds:,.0f}"),
                ("speedup", f"{speedup:.1f}x", ""),
            ],
        )
        record_bench(
            "spatial_cache",
            routing_speedup=round(speedup, 2),
            routing_cached_queries_per_second=round(len(pairs) / max(cached_seconds, 1e-9), 1),
        )
        assert speedup >= MIN_SPEEDUP, (
            f"cached routing is only {speedup:.2f}x faster (floor {MIN_SPEEDUP}x)"
        )

    def test_cached_sightlines_are_at_least_2x_faster(self, office, office_devices):
        queries = _los_workload(office, office_devices)
        uncached = SpatialService(office, config=SpatialConfig(enabled=False))
        cached = SpatialService(office)
        plain_result, plain_seconds = _timed(_run_sightlines, uncached, queries)
        cached_result, cached_seconds = _timed(_run_sightlines, cached, queries)
        assert cached_result == plain_result, "caching changed a sightline report"
        speedup = plain_seconds / max(cached_seconds, 1e-9)
        stats = cached.cache_stats()
        print_table(
            "line of sight: cached vs uncached SpatialService",
            ("variant", "seconds", "sightlines/s"),
            [
                ("uncached", f"{plain_seconds:.3f}", f"{len(queries) / plain_seconds:,.0f}"),
                ("cached", f"{cached_seconds:.3f}", f"{len(queries) / cached_seconds:,.0f}"),
                ("speedup", f"{speedup:.1f}x",
                 f"los hit rate {stats['los_hits'] / max(1, stats['los_hits'] + stats['los_misses']):.0%}"),
            ],
        )
        lookups = max(1, stats["los_hits"] + stats["los_misses"])
        record_bench(
            "spatial_cache",
            los_speedup=round(speedup, 2),
            los_cache_hit_rate=round(stats["los_hits"] / lookups, 3),
        )
        assert speedup >= MIN_SPEEDUP, (
            f"cached LOS is only {speedup:.2f}x faster (floor {MIN_SPEEDUP}x)"
        )

    def test_generation_chain_benefits_end_to_end(self, benchmark, office):
        """Context number: a routing-heavy simulation through the cached service."""
        from conftest import simulate

        result = benchmark.pedantic(
            lambda: simulate(office, count=15, duration=90.0, seed=7),
            rounds=1, iterations=1,
        )
        assert result.object_count == 15
