"""THROUGHPUT: generator scalability.

A data generator is only useful if it can produce datasets much faster than
real time.  This bench measures the wall-clock cost of each pipeline layer as
the number of moving objects grows, and reports the trajectory-point and RSSI
throughput (records generated per second of wall-clock time).

Expected shape: cost grows roughly linearly with the object count, and the
generator stays one to two orders of magnitude faster than real time for
laptop-scale workloads.
"""

import time

import pytest

from conftest import (
    deploy_wifi,
    generate_rssi,
    make_building,
    print_table,
    record_bench,
    simulate,
)

DURATION = 120.0


@pytest.fixture(scope="module")
def office():
    return make_building("office", floors=2)


@pytest.fixture(scope="module")
def office_devices(office):
    return deploy_wifi(office, count_per_floor=6)


class TestMovingObjectThroughput:
    @pytest.mark.parametrize("count", [10, 50, 150])
    def test_trajectory_generation_scales_with_objects(self, benchmark, office, count):
        result = benchmark.pedantic(
            lambda: simulate(office, count=count, duration=DURATION, seed=count),
            rounds=1, iterations=1,
        )
        assert result.object_count == count
        assert result.total_samples >= count * DURATION * 0.8


class TestRSSIThroughput:
    @pytest.mark.parametrize("count", [10, 50])
    def test_rssi_generation_scales_with_objects(self, benchmark, office, office_devices, count):
        simulation = simulate(office, count=count, duration=DURATION, seed=200 + count)
        records = benchmark.pedantic(
            lambda: generate_rssi(office, office_devices, simulation.trajectories),
            rounds=1, iterations=1,
        )
        assert len(records) > 0


class TestEndToEndThroughput:
    def test_throughput_summary(self, benchmark, office, office_devices):
        def run(count):
            start = time.perf_counter()
            simulation = simulate(office, count=count, duration=DURATION, seed=300 + count)
            trajectory_seconds = time.perf_counter() - start
            start = time.perf_counter()
            rssi = generate_rssi(office, office_devices, simulation.trajectories)
            rssi_seconds = time.perf_counter() - start
            return {
                "count": count,
                "trajectory_records": simulation.total_samples,
                "trajectory_seconds": trajectory_seconds,
                "rssi_records": len(rssi),
                "rssi_seconds": rssi_seconds,
            }

        def sweep():
            return [run(count) for count in (10, 50, 150)]

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "THROUGHPUT: generation cost vs object count (120 s simulated)",
            ["objects", "trajectory records", "traj records/s", "rssi records", "rssi records/s",
             "speed-up vs real time"],
            [
                [
                    row["count"],
                    row["trajectory_records"],
                    f"{row['trajectory_records'] / max(row['trajectory_seconds'], 1e-9):,.0f}",
                    row["rssi_records"],
                    f"{row['rssi_records'] / max(row['rssi_seconds'], 1e-9):,.0f}",
                    f"{DURATION / max(row['trajectory_seconds'] + row['rssi_seconds'], 1e-9):.1f}x",
                ]
                for row in rows
            ],
        )
        largest = rows[-1]
        record_bench(
            "throughput",
            trajectory_records_per_second=round(
                largest["trajectory_records"] / max(largest["trajectory_seconds"], 1e-9), 1
            ),
            rssi_records_per_second=round(
                largest["rssi_records"] / max(largest["rssi_seconds"], 1e-9), 1
            ),
            objects=largest["count"],
            simulated_duration_seconds=DURATION,
        )
        # Roughly linear scaling: 15x the objects should cost far less than 60x the time.
        small, large = rows[0], rows[-1]
        small_total = small["trajectory_seconds"] + small["rssi_seconds"]
        large_total = large["trajectory_seconds"] + large["rssi_seconds"]
        assert large_total < small_total * 60
        # Faster than real time even at 150 objects.
        assert large_total < DURATION


class TestStreamingThroughput:
    """Streaming mode: datasets larger than the flush buffer, O(flush) pending.

    The streaming pipeline must generate a dataset larger than the configured
    flush buffer while never buffering more than that flush budget — the
    memory contract that makes dataset size independent of RAM.
    """

    def test_streaming_generates_beyond_the_flush_buffer(self, benchmark, tmp_path):
        from repro.core.config import (
            DeviceConfig,
            EnvironmentConfig,
            ObjectConfig,
            StorageConfig,
            VitaConfig,
        )
        from repro.core.pipeline import VitaPipeline

        flush_every = 256
        config = VitaConfig(
            environment=EnvironmentConfig(building="office", floors=2),
            devices=[DeviceConfig(count_per_floor=6)],
            objects=ObjectConfig(count=30, duration=DURATION, time_step=0.5),
            storage=StorageConfig(
                backend="sqlite", path=str(tmp_path / "stream.sqlite"),
                flush_every=flush_every,
            ),
            seed=7,
            shards=4,
        )
        events = []
        result = benchmark.pedantic(
            lambda: VitaPipeline(config).run_streaming(progress=events.append),
            rounds=1, iterations=1,
        )
        report = result.report
        result.warehouse.close()
        print_table(
            "THROUGHPUT: streaming generation (flush buffer vs dataset size)",
            ["records", "flush buffer", "max pending", "flushes", "records/s", "workers"],
            [[
                report.total_records,
                report.flush_every,
                report.max_pending,
                report.flushes,
                f"{report.records_per_second:,.0f}",
                report.workers,
            ]],
        )
        record_bench(
            "throughput",
            streaming_records_per_second=round(report.records_per_second, 1),
            streaming_total_records=report.total_records,
            streaming_max_pending=report.max_pending,
        )
        # The dataset outgrew the flush buffer many times over...
        assert report.total_records > flush_every * 4
        # ...yet the pipeline never held more than the flush budget pending.
        assert report.max_pending <= flush_every
        assert max(event.pending_records for event in events) <= flush_every
