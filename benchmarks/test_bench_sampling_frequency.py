"""GT-SAMPLING: ground-truth preservation vs sampling frequency.

Section 1: real indoor positioning data has a low sampling frequency and/or
low accuracy, so an object's whereabouts are unknown between two consecutive
reports — which is exactly why Vita preserves the raw trajectory at a finer,
user-tunable granularity.  This bench quantifies that: the same movement is
exported at several trajectory sampling periods and the reconstruction error
against the finest ("true") trajectory is measured, together with the data
volume each period produces.

Expected shape: error grows with the sampling period while the record count
shrinks — the classic granularity/volume trade-off the toolkit exposes.
"""

import statistics

import pytest

from conftest import make_building, print_table, simulate

from repro.core.types import PositioningRecord
from repro.analysis.accuracy import evaluate_positioning

SAMPLING_PERIODS = (1.0, 2.0, 5.0, 10.0, 30.0)


@pytest.fixture(scope="module")
def fine_ground_truth():
    """The reference movement, sampled at 0.5 s (the simulation step)."""
    building = make_building("office", floors=2)
    simulation = simulate(
        building, count=12, duration=240.0, sampling_period=0.5, seed=55
    )
    return building, simulation


def _reconstruction_error(fine, coarse_period):
    """Mean error of reconstructing the fine trajectory from a coarse resampling."""
    coarse = fine.resample(coarse_period)
    errors = []
    for trajectory in fine:
        coarse_trajectory = coarse.get(trajectory.object_id)
        if coarse_trajectory is None:
            continue
        for record in trajectory.records:
            estimate = coarse_trajectory.location_at(record.t)
            if (
                estimate is not None
                and estimate.has_point
                and record.location.has_point
                and estimate.floor_id == record.location.floor_id
            ):
                errors.append(estimate.distance_to(record.location))
    return statistics.fmean(errors) if errors else float("nan")


class TestSamplingFrequencySweep:
    def test_granularity_vs_fidelity_tradeoff(self, benchmark, fine_ground_truth):
        _, simulation = fine_ground_truth
        fine = simulation.trajectories

        def sweep():
            rows = []
            for period in SAMPLING_PERIODS:
                coarse = fine.resample(period)
                rows.append(
                    (period, coarse.total_records, _reconstruction_error(fine, period))
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "GT-SAMPLING: trajectory sampling period vs volume and fidelity",
            ["sampling period (s)", "records", "mean reconstruction error (m)"],
            [[period, count, f"{error:.2f}"] for period, count, error in rows],
        )
        periods = [row[0] for row in rows]
        counts = [row[1] for row in rows]
        errors = [row[2] for row in rows]
        # Volume decreases monotonically with the sampling period ...
        assert counts == sorted(counts, reverse=True)
        # ... while the reconstruction error grows (strictly from 1 s to 30 s).
        assert errors[-1] > errors[0]
        assert errors[0] < 0.5

    def test_resampling_cost(self, benchmark, fine_ground_truth):
        _, simulation = fine_ground_truth
        benchmark(lambda: simulation.trajectories.resample(5.0))

    def test_positioning_coverage_shrinks_with_period(self, benchmark, fine_ground_truth):
        """Positioning data at a low frequency leaves gaps in the object's whereabouts."""
        from repro.analysis.accuracy import ground_truth_coverage

        _, simulation = fine_ground_truth
        fine = simulation.trajectories

        def coverage_for(period):
            coarse = fine.resample(period)
            report_times = [record.t for record in coarse.all_records()]
            return ground_truth_coverage(report_times, fine)

        def sweep():
            return {period: coverage_for(period) for period in (1.0, 10.0, 30.0)}

        coverage = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table(
            "GT-SAMPLING: time coverage of positioning reports",
            ["sampling period (s)", "covered fraction of the timeline"],
            [[period, f"{value:.2f}"] for period, value in sorted(coverage.items())],
        )
        assert coverage[1.0] > coverage[10.0] > coverage[30.0]
