#!/usr/bin/env python3
"""Quickstart: the six-step demonstration path of the paper (Section 5).

Generates indoor mobility data for a synthetic two-floor office building:

1. load the host indoor environment (here: the built-in synthetic office;
   ``Vita.import_dbi()`` accepts IFC files instead),
2. view/modify the environment (we deploy one obstacle),
3. configure and generate positioning devices (Wi-Fi, coverage model),
4. configure and generate moving objects and their raw trajectories,
5. configure and generate raw RSSI measurements,
6. choose a positioning method and generate the positioning data.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Vita
from repro.analysis.accuracy import evaluate_positioning
from repro.geometry.polygon import Polygon
from repro.viz import render_floor


def main() -> None:
    vita = Vita(seed=2016)

    # Step 1 — host indoor environment.
    building = vita.use_synthetic_building("office", floors=2)
    print(f"Loaded {building}")

    # Step 2 — modify the environment: a metal cabinet in the hallway.
    vita.environment.deploy_obstacle(0, Polygon.rectangle(22.0, 7.5, 24.0, 9.0),
                                     attenuation_db=6.0)

    # Step 3 — positioning devices.
    devices = vita.deploy_devices("wifi", count_per_floor=6, deployment="coverage")
    print(f"Deployed {len(devices)} Wi-Fi access points")

    # Step 4 — moving objects and ground-truth trajectories (1 Hz sampling).
    result = vita.generate_objects(
        count=30,
        duration=600.0,
        sampling_period=1.0,
        distribution="uniform",
        behavior="walk-stay",
        routing="length",
    )
    print(f"Simulated {result.object_count} objects, "
          f"{result.total_samples} ground-truth samples")

    # Step 5 — raw RSSI measurements (their own, coarser sampling frequency).
    rssi = vita.generate_rssi(sampling_period=2.0, fluctuation_sigma_db=2.0)
    print(f"Generated {len(rssi)} raw RSSI measurements")

    # Step 6 — positioning data (Wi-Fi + fingerprinting, deterministic kNN).
    estimates = vita.generate_positioning(
        "fingerprinting", algorithm="knn", sampling_period=5.0, radio_map_spacing=4.0
    )
    print(f"Generated {len(estimates)} positioning estimates")

    # Because the raw trajectories are preserved, we can evaluate the
    # positioning data against its own ground truth.
    report = evaluate_positioning(estimates, vita.simulation.trajectories)
    print(f"Positioning error vs ground truth: mean {report.mean_error:.2f} m, "
          f"median {report.median_error:.2f} m, room hit rate {report.partition_hit_rate:.0%}")

    # A text rendering of the ground floor with devices and a snapshot.
    snapshot = vita.stream_api.snapshot(300.0)
    print()
    print(render_floor(building, 0, devices=devices, objects=snapshot, width=100, height=24))

    # Export everything as CSV/JSONL for downstream analytics.
    written = vita.export("output/quickstart")
    print("\nExported datasets:")
    for name, path in sorted(written.items()):
        print(f"  {name:>14}: {path}")


if __name__ == "__main__":
    main()
