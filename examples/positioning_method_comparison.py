#!/usr/bin/env python3
"""Compare the three positioning methods on the same ground truth.

One office workload is generated once; the raw RSSI data is then processed by
trilateration, deterministic fingerprinting (kNN), probabilistic
fingerprinting (Naive Bayes) and proximity, and every output is evaluated
against the preserved raw trajectories — the effectiveness-evaluation workflow
the paper says synthetic ground truth enables (Section 1).

Run with::

    python examples/positioning_method_comparison.py
"""

from __future__ import annotations

from repro import Vita
from repro.analysis.accuracy import (
    evaluate_positioning,
    evaluate_probabilistic,
    evaluate_proximity,
)


def main() -> None:
    vita = Vita(seed=99)
    vita.use_synthetic_building("office", floors=2)
    vita.deploy_devices("wifi", count_per_floor=8, deployment="coverage")
    vita.generate_objects(count=40, duration=600.0, sampling_period=1.0)
    vita.generate_rssi(sampling_period=2.0, fluctuation_sigma_db=2.0)
    ground_truth = vita.simulation.trajectories

    rows = []

    estimates = vita.generate_positioning("trilateration", sampling_period=5.0)
    report = evaluate_positioning(estimates, ground_truth)
    rows.append(("trilateration", len(estimates), f"{report.mean_error:.2f}",
                 f"{report.median_error:.2f}", f"{report.partition_hit_rate:.0%}"))

    estimates = vita.generate_positioning(
        "fingerprinting", algorithm="knn", sampling_period=5.0, radio_map_spacing=4.0
    )
    report = evaluate_positioning(estimates, ground_truth)
    rows.append(("fingerprinting / kNN", len(estimates), f"{report.mean_error:.2f}",
                 f"{report.median_error:.2f}", f"{report.partition_hit_rate:.0%}"))

    estimates = vita.generate_positioning(
        "fingerprinting", algorithm="bayes", sampling_period=5.0, radio_map_spacing=4.0
    )
    report = evaluate_probabilistic(estimates, ground_truth)
    rows.append(("fingerprinting / Bayes", len(estimates), f"{report.mean_error:.2f}",
                 f"{report.median_error:.2f}", f"{report.partition_hit_rate:.0%}"))

    detections = vita.generate_positioning("proximity")
    proximity_report = evaluate_proximity(detections, ground_truth, vita.devices)
    rows.append(("proximity", len(detections), "symbolic", "symbolic",
                 f"in-range {proximity_report.in_range_fraction:.0%}"))

    print("\nPositioning data vs preserved ground truth (office, 16 Wi-Fi APs):")
    header = f"{'method':>24} | {'records':>8} | {'mean err (m)':>12} | {'median (m)':>10} | {'room-level':>14}"
    print(header)
    print("-" * len(header))
    for method, count, mean_error, median_error, room in rows:
        print(f"{method:>24} | {count:>8} | {mean_error:>12} | {median_error:>10} | {room:>14}")

    print("\nExpected shape: fingerprinting < trilateration in coordinate error; "
          "proximity gives only symbolic collocation.")


if __name__ == "__main__":
    main()
