#!/usr/bin/env python3
"""Mall scenario: crowd-outliers shoppers, RFID check-points, POI analytics.

This mirrors the motivation of the paper's introduction: businesses such as
customer engagement and space-use analysis need indoor mobility data.  We
generate a shopping-mall workload where most customers crowd around shops
(the crowd-outliers distribution of Section 3.1 / Figure 3(b)), deploy RFID
readers at shop entrances with the check-point model, derive proximity
positioning data, and then answer a typical analytics question — which shops
are visited most — both from the symbolic proximity data and from the ground
truth, to show how close the two rankings are.

Run with::

    python examples/mall_crowd_analytics.py
"""

from __future__ import annotations

from collections import Counter

from repro import Vita
from repro.analysis.statistics import crowding_at, trajectory_statistics


def main() -> None:
    vita = Vita(seed=77)
    building = vita.use_synthetic_building("mall", floors=2)
    print(f"Loaded {building}")

    # RFID readers guarding shop entrances and atrium hotspots.  The detection
    # interval is set to 2 s so that it is no shorter than the RSSI sampling
    # period below: a detection period only ends once a whole detection
    # operation passes without any measurement (Section 3.3).
    readers = vita.deploy_devices(
        "rfid", count_per_floor=10, deployment="check-point",
        detection_range=4.0, detection_interval=2.0,
    )
    print(f"Deployed {len(readers)} RFID readers at check-points")

    # Shoppers: 120 objects, 80% of them crowding around shops/food court.
    result = vita.generate_objects(
        count=120,
        duration=900.0,
        sampling_period=1.0,
        distribution="crowd-outliers",
        intention="destination",
        behavior="walk-stay",
        arrival_rate_per_minute=4.0,          # new shoppers keep arriving
    )
    statistics = trajectory_statistics(result.trajectories)
    crowding = crowding_at(result.trajectories, 0.0)
    print(f"Simulated {result.object_count} shoppers "
          f"({statistics.total_samples} ground-truth samples)")
    print(f"Initial crowding: top-3 partitions hold {crowding.top3_share:.0%} of the shoppers "
          f"(gini {crowding.gini:.2f})")

    # Raw RSSI at 1 Hz, then proximity positioning data (o_id, d_id, ts, te).
    vita.generate_rssi(sampling_period=1.0)
    detections = vita.generate_positioning("proximity")
    print(f"Generated {len(detections)} proximity detection periods")

    # Analytics question: which shops are the most visited?
    reader_partition = {
        device.device_id: device.location.partition_id for device in readers
    }
    visits_by_partition = Counter()
    for record in detections:
        partition = reader_partition.get(record.device_id)
        if partition and record.duration >= 10.0:
            visits_by_partition[partition] += 1

    # Ground truth restricted to the partitions that actually have a reader,
    # so the two rankings are computed over the same candidate POIs.
    monitored = set(reader_partition.values())
    truth_counts = Counter()
    for trajectory in result.trajectories:
        for partition in set(trajectory.partitions_visited()):
            if partition in monitored:
                truth_counts[partition] += 1

    print("\nTop monitored POIs by proximity detections (>=10 s dwell) vs ground-truth visitors:")
    print(f"{'partition':>18} | {'detections':>10} | {'true visitors':>13}")
    for partition, count in visits_by_partition.most_common(8):
        print(f"{partition:>18} | {count:>10} | {truth_counts.get(partition, 0):>13}")

    top_detected = {p for p, _ in visits_by_partition.most_common(5)}
    top_true = {p for p, _ in truth_counts.most_common(5)}
    overlap = top_detected & top_true
    print(f"\n{len(overlap)}/5 of the top POIs ranked from symbolic proximity data match the "
          "ground-truth top-5 — and the preserved raw trajectories are what makes "
          "this effectiveness check possible.")

    written = vita.export("output/mall_crowd")
    print("\nExported datasets:")
    for name, path in sorted(written.items()):
        print(f"  {name:>14}: {path}")


if __name__ == "__main__":
    main()
