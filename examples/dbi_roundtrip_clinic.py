#!/usr/bin/env python3
"""DBI processing walk-through: write, corrupt, parse and fix an IFC file.

Demonstrates the Infrastructure Layer of Section 4.1 end to end:

* a clinic building is serialised to an IFC-SPF (DBI) file — with two
  deliberate data errors injected (an orphan door and a degenerate space);
* the DBI processor parses it back, reports the errors, recovers door and
  staircase connectivity, decomposes the long corridor into balanced
  partitions and runs semantic extraction;
* the resulting host environment is validated, rendered, and used for a quick
  Bluetooth + trilateration generation run (one of the demo combinations).

Run with::

    python examples/dbi_roundtrip_clinic.py
"""

from __future__ import annotations

import os

from repro import Vita
from repro.building.synthetic import ClinicSpec, clinic_building
from repro.building.topology import AccessibilityGraph
from repro.geometry.decompose import DecompositionConfig
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions
from repro.ifc.writer import ErrorInjection, write_ifc
from repro.viz import render_floor


def main() -> None:
    os.makedirs("output/dbi", exist_ok=True)

    # A two-storey clinic, exported to an IFC file with injected data errors.
    original = clinic_building(ClinicSpec(floors=2, rooms_per_side=5))
    path = write_ifc(
        original,
        "output/dbi/clinic.ifc",
        injection=ErrorInjection(orphan_doors=1, degenerate_spaces=1),
    )
    print(f"Wrote DBI file {path} ({os.path.getsize(path)} bytes) "
          "with 2 injected data errors")

    # DBI processing: parse, detect errors, decompose, extract semantics.
    options = DBIProcessorOptions(
        decompose_partitions=True,
        decomposition=DecompositionConfig(max_area=60.0, max_aspect_ratio=3.0),
        extract_semantics=True,
    )
    building, report = DBIProcessor(options).process_file(path)
    print(f"\nParsed entities: {report.entity_counts}")
    print(f"Errors identified through geometry calculations ({len(report.errors)}):")
    for error in report.errors:
        print(f"  - {error}")
    print(f"Decomposition: {report.decomposition_summary}")
    print(f"Recovered staircase connectivity: {report.staircase_connectivity}")

    graph = AccessibilityGraph(building)
    print(f"\nHost environment: {building}")
    print(f"Topology: {graph.node_count} partitions, {graph.edge_count} directed crossings, "
          f"fully connected: {graph.is_fully_connected()}")
    semantic_tags = sorted({p.semantic_tag for p in building.all_partitions() if p.semantic_tag})
    print(f"Semantic tags extracted: {', '.join(semantic_tags)}")

    print()
    print(render_floor(building, 0, width=90, height=20))

    # Use the processed environment for a Bluetooth + trilateration run.
    vita = Vita(seed=5)
    vita.use_building(building)
    vita.deploy_devices("bluetooth", count_per_floor=10, deployment="coverage",
                        detection_range=18.0)
    vita.generate_objects(count=20, duration=300.0, sampling_period=1.0)
    vita.generate_rssi(sampling_period=1.0)
    estimates = vita.generate_positioning("trilateration", sampling_period=5.0)
    print(f"\nBluetooth + trilateration on the imported building: "
          f"{len(estimates)} estimates, summary {vita.summary()}")


if __name__ == "__main__":
    main()
