"""Indoor Environment Controller.

The Infrastructure Layer lets the user "configure door directionality and
deploy obstacles to further customize the host indoor environment"
(Section 2) and to "decompose the irregular partitions, identify and fix
parse errors" (Section 5, step 2).  This module provides that controller for
an in-memory :class:`~repro.building.model.Building`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.building.model import (
    Building,
    Door,
    Obstacle,
    OUTDOOR,
    Partition,
    PartitionKind,
)
from repro.core.errors import TopologyError
from repro.core.types import FloorId, PartitionId
from repro.geometry.decompose import DecompositionConfig, decompose, is_balanced
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@dataclass
class DecompositionReport:
    """Summary of a partition-decomposition pass."""

    decomposed_partitions: List[str] = field(default_factory=list)
    created_partitions: List[str] = field(default_factory=list)
    created_virtual_doors: List[str] = field(default_factory=list)

    @property
    def partitions_split(self) -> int:
        return len(self.decomposed_partitions)


class IndoorEnvironmentController:
    """Edits the host indoor environment produced by the DBI processor."""

    def __init__(self, building: Building) -> None:
        self.building = building
        self._obstacle_counter = itertools.count(1)
        self._virtual_door_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Door directionality
    # ------------------------------------------------------------------ #
    def set_door_one_way(
        self, door_id: str, from_partition: PartitionId, to_partition: PartitionId
    ) -> Door:
        """Make *door_id* traversable only from *from_partition* to *to_partition*."""
        door = self._find_door(door_id)
        door.set_one_way(from_partition, to_partition)
        return door

    def set_door_bidirectional(self, door_id: str) -> Door:
        """Restore two-way traversal on *door_id*."""
        door = self._find_door(door_id)
        door.set_bidirectional()
        return door

    def _find_door(self, door_id: str) -> Door:
        for floor in self.building.floors.values():
            if door_id in floor.doors:
                return floor.doors[door_id]
        raise TopologyError(f"building {self.building.building_id} has no door {door_id}")

    # ------------------------------------------------------------------ #
    # Obstacles
    # ------------------------------------------------------------------ #
    def deploy_obstacle(
        self,
        floor_id: FloorId,
        polygon: Polygon,
        attenuation_db: float = 4.0,
        blocks_movement: bool = False,
        obstacle_id: Optional[str] = None,
    ) -> Obstacle:
        """Place an obstacle polygon on *floor_id*."""
        floor = self.building.floor(floor_id)
        obstacle_id = obstacle_id or f"obstacle_{next(self._obstacle_counter)}"
        obstacle = Obstacle(
            obstacle_id=obstacle_id,
            floor_id=floor_id,
            polygon=polygon,
            attenuation_db=attenuation_db,
            blocks_movement=blocks_movement,
        )
        return floor.add_obstacle(obstacle)

    def remove_obstacle(self, floor_id: FloorId, obstacle_id: str) -> None:
        """Remove a previously deployed obstacle."""
        floor = self.building.floor(floor_id)
        if obstacle_id not in floor.obstacles:
            raise TopologyError(f"floor {floor_id} has no obstacle {obstacle_id}")
        del floor.obstacles[obstacle_id]
        floor._invalidate_caches()

    # ------------------------------------------------------------------ #
    # Parse-error fixing
    # ------------------------------------------------------------------ #
    def fix_parse_errors(self) -> List[str]:
        """Remove doors that reference missing partitions; return a change log."""
        log: List[str] = []
        for floor in self.building.floors.values():
            orphan_doors = [
                door.door_id
                for door in floor.doors.values()
                if any(
                    pid != OUTDOOR and pid not in floor.partitions
                    for pid in door.partitions
                )
            ]
            for door_id in orphan_doors:
                del floor.doors[door_id]
                log.append(f"removed orphan door {door_id} on floor {floor.floor_id}")
            if orphan_doors:
                floor._invalidate_caches()
        return log

    # ------------------------------------------------------------------ #
    # Partition decomposition
    # ------------------------------------------------------------------ #
    def decompose_irregular_partitions(
        self,
        config: Optional[DecompositionConfig] = None,
        kinds: Optional[Tuple[PartitionKind, ...]] = None,
    ) -> DecompositionReport:
        """Decompose every unbalanced partition into balanced sub-partitions.

        Doors attached to a decomposed partition are re-attached to the
        sub-partition nearest the door position, and *virtual doors* are added
        between adjacent sub-partitions so that the decomposition never breaks
        connectivity.

        Args:
            config: decomposition thresholds.
            kinds: when given, restrict decomposition to these partition kinds
                (e.g. only hallways and public areas).
        """
        config = config or DecompositionConfig()
        report = DecompositionReport()
        for floor_id in self.building.floor_ids:
            floor = self.building.floors[floor_id]
            targets = [
                p for p in list(floor.partitions.values())
                if not is_balanced(p.polygon, config)
                and (kinds is None or p.kind in kinds)
            ]
            for partition in targets:
                pieces = decompose(partition.polygon, config)
                if len(pieces) <= 1:
                    continue
                self._replace_partition(floor_id, partition, pieces, report)
        return report

    def _replace_partition(
        self,
        floor_id: FloorId,
        partition: Partition,
        pieces: List[Polygon],
        report: DecompositionReport,
    ) -> None:
        floor = self.building.floors[floor_id]
        report.decomposed_partitions.append(partition.partition_id)
        # Create the sub-partitions.
        children: List[Partition] = []
        for index, piece in enumerate(pieces):
            child = Partition(
                partition_id=f"{partition.partition_id}#{index}",
                floor_id=floor_id,
                polygon=piece,
                kind=partition.kind,
                name=partition.name,
                semantic_tag=partition.semantic_tag,
            )
            children.append(child)
            report.created_partitions.append(child.partition_id)
        # Remember doors that touched the original partition before removal.
        affected_doors = list(floor.doors_of(partition.partition_id))
        affected_staircases = [
            s for s in self.building.staircases.values()
            if (s.lower_floor == floor_id and s.lower_partition == partition.partition_id)
            or (s.upper_floor == floor_id and s.upper_partition == partition.partition_id)
        ]
        # Remove the original partition (and with it, its doors).
        floor.remove_partition(partition.partition_id)
        for child in children:
            floor.add_partition(child)
        # Re-attach the doors to the nearest child.
        for door in affected_doors:
            other = door.other_side(partition.partition_id)
            nearest = self._nearest_child(children, door.position)
            new_pair = (nearest.partition_id, other)
            one_way_from = door.one_way_from
            one_way_to = door.one_way_to
            if one_way_from == partition.partition_id:
                one_way_from = nearest.partition_id
            if one_way_to == partition.partition_id:
                one_way_to = nearest.partition_id
            floor.add_door(
                Door(
                    door_id=door.door_id,
                    floor_id=floor_id,
                    position=door.position,
                    partitions=new_pair,
                    width=door.width,
                    one_way_from=one_way_from,
                    one_way_to=one_way_to,
                )
            )
        # Re-attach staircase endpoints.
        for staircase in affected_staircases:
            if staircase.lower_floor == floor_id and staircase.lower_partition == partition.partition_id:
                staircase.lower_partition = self._nearest_child(
                    children, staircase.lower_point
                ).partition_id
            if staircase.upper_floor == floor_id and staircase.upper_partition == partition.partition_id:
                staircase.upper_partition = self._nearest_child(
                    children, staircase.upper_point
                ).partition_id
        # Add virtual doors between adjacent children to keep them connected.
        for first, second in itertools.combinations(children, 2):
            opening = _shared_opening(first.polygon, second.polygon)
            if opening is None:
                continue
            position, width = opening
            door_id = f"vdoor_{partition.partition_id}_{next(self._virtual_door_counter)}"
            floor.add_door(
                Door(
                    door_id=door_id,
                    floor_id=floor_id,
                    position=position,
                    partitions=(first.partition_id, second.partition_id),
                    width=min(width, 4.0),
                )
            )
            report.created_virtual_doors.append(door_id)

    @staticmethod
    def _nearest_child(children: List[Partition], point: Point) -> Partition:
        containing = [c for c in children if c.contains_point(point)]
        if containing:
            return containing[0]
        return min(
            children,
            key=lambda child: min(
                edge.distance_to_point(point) for edge in child.polygon.edges()
            ),
        )


def _shared_opening(first: Polygon, second: Polygon, min_overlap: float = 0.5):
    """Detect a shared boundary stretch between two polygons.

    Returns ``(midpoint, overlap_length)`` of the longest collinear overlap
    between an edge of *first* and an edge of *second*, or ``None`` when the
    polygons do not share a boundary of at least *min_overlap* metres.
    """
    best: Optional[Tuple[Point, float]] = None
    for edge_a in first.edges():
        for edge_b in second.edges():
            overlap = _collinear_overlap(edge_a, edge_b)
            if overlap is None:
                continue
            midpoint, length = overlap
            if length < min_overlap:
                continue
            if best is None or length > best[1]:
                best = (midpoint, length)
    return best


def _collinear_overlap(edge_a: Segment, edge_b: Segment, tolerance: float = 1e-3):
    """Overlap of two (nearly) collinear segments as ``(midpoint, length)``."""
    direction = (edge_a.end - edge_a.start)
    length_a = direction.norm()
    if length_a <= tolerance:
        return None
    unit = direction / length_a
    # Both endpoints of edge_b must be close to the supporting line of edge_a.
    for endpoint in (edge_b.start, edge_b.end):
        offset = endpoint - edge_a.start
        perpendicular = abs(offset.cross(unit))
        if perpendicular > 0.05:
            return None
    t0 = (edge_b.start - edge_a.start).dot(unit)
    t1 = (edge_b.end - edge_a.start).dot(unit)
    lo, hi = max(0.0, min(t0, t1)), min(length_a, max(t0, t1))
    if hi - lo <= tolerance:
        return None
    mid = edge_a.start + unit * ((lo + hi) / 2.0)
    return mid, hi - lo


__all__ = ["IndoorEnvironmentController", "DecompositionReport"]
