"""Indoor topology: the accessibility graph over partitions.

The accessibility graph has one node per partition and a directed edge for
every permitted door crossing (door directionality is honoured) plus an edge
pair for every staircase connecting two floors.  It supports connectivity
queries, neighbourhood expansion and is the coarse structure on which the
door-to-door routing graph of :mod:`repro.building.distance` is built.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.building.model import Building, Door, OUTDOOR, Partition, Staircase
from repro.core.errors import TopologyError
from repro.core.types import FloorId, PartitionId

#: A partition is globally identified by (floor_id, partition_id).
PartitionKey = Tuple[FloorId, PartitionId]


class AccessibilityGraph:
    """Directed partition-level connectivity of a building."""

    def __init__(self, building: Building) -> None:
        self.building = building
        self.graph = nx.DiGraph()
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        for floor_id in self.building.floor_ids:
            floor = self.building.floors[floor_id]
            for partition in floor.partitions.values():
                self.graph.add_node(
                    (floor_id, partition.partition_id),
                    kind=partition.kind,
                    area=partition.area,
                )
            for door in floor.doors.values():
                self._add_door_edges(floor_id, door)
        for staircase in self.building.staircases.values():
            self._add_staircase_edges(staircase)

    def _add_door_edges(self, floor_id: FloorId, door: Door) -> None:
        first, second = door.partitions
        for source, target in ((first, second), (second, first)):
            if OUTDOOR in (source, target):
                continue
            if door.allows(source, target):
                self.graph.add_edge(
                    (floor_id, source),
                    (floor_id, target),
                    door_id=door.door_id,
                    connector="door",
                )

    def _add_staircase_edges(self, staircase: Staircase) -> None:
        lower = (staircase.lower_floor, staircase.lower_partition)
        upper = (staircase.upper_floor, staircase.upper_partition)
        for source, target in ((lower, upper), (upper, lower)):
            self.graph.add_edge(
                source,
                target,
                staircase_id=staircase.staircase_id,
                connector="staircase",
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of partitions in the graph."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of directed crossings in the graph."""
        return self.graph.number_of_edges()

    def has_partition(self, floor_id: FloorId, partition_id: PartitionId) -> bool:
        """Whether the graph knows the given partition."""
        return (floor_id, partition_id) in self.graph

    def neighbors(self, floor_id: FloorId, partition_id: PartitionId) -> List[PartitionKey]:
        """Partitions directly reachable from the given partition."""
        key = (floor_id, partition_id)
        if key not in self.graph:
            raise TopologyError(f"unknown partition {partition_id} on floor {floor_id}")
        return list(self.graph.successors(key))

    def is_reachable(self, source: PartitionKey, target: PartitionKey) -> bool:
        """Whether *target* can be reached from *source* respecting directionality."""
        if source not in self.graph or target not in self.graph:
            return False
        return nx.has_path(self.graph, source, target)

    def partition_hop_path(
        self, source: PartitionKey, target: PartitionKey
    ) -> Optional[List[PartitionKey]]:
        """Fewest-door path between two partitions, or ``None`` if unreachable."""
        if source not in self.graph or target not in self.graph:
            return None
        try:
            return nx.shortest_path(self.graph, source, target)
        except nx.NetworkXNoPath:
            return None

    def reachable_set(self, source: PartitionKey) -> Set[PartitionKey]:
        """Every partition reachable from *source* (including itself)."""
        if source not in self.graph:
            return set()
        return set(nx.descendants(self.graph, source)) | {source}

    def connected_components(self) -> List[Set[PartitionKey]]:
        """Weakly connected components of the accessibility graph."""
        return [set(component) for component in nx.weakly_connected_components(self.graph)]

    def is_fully_connected(self) -> bool:
        """Whether every partition can reach every other one (ignoring direction)."""
        if self.graph.number_of_nodes() <= 1:
            return True
        return nx.is_weakly_connected(self.graph)

    def isolated_partitions(self) -> List[PartitionKey]:
        """Partitions with no incident door or staircase edge."""
        return [node for node in self.graph.nodes if self.graph.degree(node) == 0]

    def door_between(
        self, source: PartitionKey, target: PartitionKey
    ) -> Optional[str]:
        """Door (or staircase) id used to cross directly from *source* to *target*."""
        data = self.graph.get_edge_data(source, target)
        if not data:
            return None
        return data.get("door_id") or data.get("staircase_id")

    def degree_of(self, floor_id: FloorId, partition_id: PartitionId) -> int:
        """Number of distinct connectors (doors/staircases) incident to a partition."""
        key = (floor_id, partition_id)
        if key not in self.graph:
            return 0
        connectors = set()
        for _, _, data in self.graph.in_edges(key, data=True):
            connectors.add(data.get("door_id") or data.get("staircase_id"))
        for _, _, data in self.graph.out_edges(key, data=True):
            connectors.add(data.get("door_id") or data.get("staircase_id"))
        return len(connectors)

    def partitions_by_degree(self, minimum_degree: int = 1) -> List[PartitionKey]:
        """Partitions with at least *minimum_degree* connectors, most-connected first."""
        scored = [
            (self.degree_of(floor_id, partition_id), (floor_id, partition_id))
            for floor_id, partition_id in self.graph.nodes
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [key for degree, key in scored if degree >= minimum_degree]


def build_accessibility_graph(building: Building) -> AccessibilityGraph:
    """Convenience wrapper constructing the accessibility graph of *building*."""
    return AccessibilityGraph(building)


__all__ = ["PartitionKey", "AccessibilityGraph", "build_accessibility_graph"]
