"""Host indoor environment: building model, topology, routing, semantics."""

from repro.building.model import (
    OUTDOOR,
    Building,
    Door,
    Floor,
    Obstacle,
    Partition,
    PartitionKind,
    Staircase,
    Wall,
)
from repro.building.topology import AccessibilityGraph, build_accessibility_graph
from repro.building.distance import (
    DEFAULT_WALKING_SPEED,
    Route,
    RouteLeg,
    RoutePlanner,
    RouteWaypoint,
)
from repro.building.semantics import SemanticExtractor, SemanticRule, default_rules
from repro.building.editor import DecompositionReport, IndoorEnvironmentController
from repro.building.synthetic import (
    ClinicSpec,
    MallSpec,
    OfficeSpec,
    building_by_name,
    clinic_building,
    mall_building,
    office_building,
)

__all__ = [
    "OUTDOOR",
    "Building",
    "Door",
    "Floor",
    "Obstacle",
    "Partition",
    "PartitionKind",
    "Staircase",
    "Wall",
    "AccessibilityGraph",
    "build_accessibility_graph",
    "DEFAULT_WALKING_SPEED",
    "Route",
    "RouteLeg",
    "RoutePlanner",
    "RouteWaypoint",
    "SemanticExtractor",
    "SemanticRule",
    "default_rules",
    "DecompositionReport",
    "IndoorEnvironmentController",
    "ClinicSpec",
    "MallSpec",
    "OfficeSpec",
    "building_by_name",
    "clinic_building",
    "mall_building",
    "office_building",
]
