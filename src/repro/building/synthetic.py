"""Synthetic real-world-style buildings.

The paper demonstrates Vita on DBI files "from clinics, malls and office
buildings" (Section 5).  Those proprietary IFC exports are not available, so
this module generates multi-floor buildings of the three archetypes with
realistic structure — rooms along hallways, elongated hallways (which the
decomposition step will split), a stairwell per floor connected by staircases,
entrance doors on the ground floor, and named rooms that exercise the
semantic-extraction rules (canteens, shops, consultation rooms, ...).

Each generator returns an in-memory :class:`~repro.building.model.Building`.
:mod:`repro.ifc.writer` can serialise these buildings to IFC-like SPF text so
the full DBI-processing path (parse → extract → decompose → topology) is
exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.building.model import (
    Building,
    Door,
    Floor,
    OUTDOOR,
    Partition,
    PartitionKind,
    Staircase,
)
from repro.core.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


@dataclass(frozen=True)
class OfficeSpec:
    """Parameters of the synthetic office building."""

    floors: int = 2
    rooms_per_side: int = 5
    room_width: float = 8.0
    room_depth: float = 7.0
    hallway_width: float = 4.0

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ConfigurationError("an office building needs at least one floor")
        if self.rooms_per_side < 2:
            raise ConfigurationError("rooms_per_side must be at least 2")


@dataclass(frozen=True)
class MallSpec:
    """Parameters of the synthetic shopping mall."""

    floors: int = 2
    shops_per_side: int = 6
    shop_width: float = 10.0
    shop_depth: float = 12.0
    atrium_width: float = 14.0

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ConfigurationError("a mall needs at least one floor")
        if self.shops_per_side < 2:
            raise ConfigurationError("shops_per_side must be at least 2")


@dataclass(frozen=True)
class ClinicSpec:
    """Parameters of the synthetic clinic."""

    floors: int = 1
    rooms_per_side: int = 4
    room_width: float = 6.0
    room_depth: float = 5.0
    hallway_width: float = 3.0

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ConfigurationError("a clinic needs at least one floor")
        if self.rooms_per_side < 2:
            raise ConfigurationError("rooms_per_side must be at least 2")


# --------------------------------------------------------------------------- #
# Office
# --------------------------------------------------------------------------- #
def office_building(spec: Optional[OfficeSpec] = None, building_id: str = "office") -> Building:
    """A multi-floor office: rooms on both sides of a central hallway.

    Per floor: ``rooms_per_side`` rooms below and above a central hallway, a
    stairwell at the right end of the upper row, a canteen in the lower-left
    corner of the ground floor, and an entrance on the ground floor hallway.
    """
    spec = spec or OfficeSpec()
    building = Building(building_id, name="Synthetic office building")
    width = spec.rooms_per_side * spec.room_width
    hallway_y0 = spec.room_depth
    hallway_y1 = spec.room_depth + spec.hallway_width
    for floor_id in range(spec.floors):
        floor = building.new_floor(floor_id)
        hallway = Partition(
            partition_id=f"f{floor_id}_hall",
            floor_id=floor_id,
            polygon=Polygon.rectangle(0.0, hallway_y0, width, hallway_y1),
            kind=PartitionKind.HALLWAY,
            name=f"Hallway {floor_id}",
        )
        floor.add_partition(hallway)
        # Lower row of rooms (doors open onto the hallway's lower edge).
        for index in range(spec.rooms_per_side):
            x0 = index * spec.room_width
            x1 = x0 + spec.room_width
            room_id = f"f{floor_id}_room_s{index}"
            name = f"Office S{index}"
            kind = PartitionKind.OFFICE
            if floor_id == 0 and index == 0:
                name = "Canteen"
                kind = PartitionKind.CANTEEN
            room = Partition(
                partition_id=room_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, 0.0, x1, spec.room_depth),
                kind=kind,
                name=name,
            )
            floor.add_partition(room)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_door_s{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, spec.room_depth),
                    partitions=(room_id, hallway.partition_id),
                    width=1.2,
                )
            )
        # Upper row of rooms; the rightmost one is the stairwell.
        for index in range(spec.rooms_per_side):
            x0 = index * spec.room_width
            x1 = x0 + spec.room_width
            is_stairwell = index == spec.rooms_per_side - 1
            room_id = f"f{floor_id}_stair" if is_stairwell else f"f{floor_id}_room_n{index}"
            room = Partition(
                partition_id=room_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, hallway_y1, x1, hallway_y1 + spec.room_depth),
                kind=PartitionKind.STAIRWELL if is_stairwell else PartitionKind.OFFICE,
                name="Stairwell" if is_stairwell else f"Office N{index}",
            )
            floor.add_partition(room)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_door_n{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, hallway_y1),
                    partitions=(room_id, hallway.partition_id),
                    width=1.2,
                )
            )
        # Ground-floor entrance to the outdoors at the left end of the hallway.
        if floor_id == 0:
            floor.add_door(
                Door(
                    door_id="f0_entrance",
                    floor_id=0,
                    position=Point(0.0, (hallway_y0 + hallway_y1) / 2.0),
                    partitions=(hallway.partition_id, OUTDOOR),
                    width=2.0,
                )
            )
    _connect_stairwells(building, spec.floors, lambda f: f"f{f}_stair")
    return building


# --------------------------------------------------------------------------- #
# Mall
# --------------------------------------------------------------------------- #
def mall_building(spec: Optional[MallSpec] = None, building_id: str = "mall") -> Building:
    """A multi-floor shopping mall: shops around a central atrium.

    Per floor: ``shops_per_side`` shops below and above a wide central atrium
    (a public area), a food court replacing the first upper shop, and a
    stairwell replacing the last upper shop.  The ground floor has two
    entrances at the atrium ends.
    """
    spec = spec or MallSpec()
    building = Building(building_id, name="Synthetic shopping mall")
    width = spec.shops_per_side * spec.shop_width
    atrium_y0 = spec.shop_depth
    atrium_y1 = spec.shop_depth + spec.atrium_width
    for floor_id in range(spec.floors):
        floor = building.new_floor(floor_id, height=4.5)
        atrium = Partition(
            partition_id=f"f{floor_id}_atrium",
            floor_id=floor_id,
            polygon=Polygon.rectangle(0.0, atrium_y0, width, atrium_y1),
            kind=PartitionKind.PUBLIC_AREA,
            name=f"Atrium {floor_id}",
        )
        floor.add_partition(atrium)
        for index in range(spec.shops_per_side):
            x0 = index * spec.shop_width
            x1 = x0 + spec.shop_width
            shop_id = f"f{floor_id}_shop_s{index}"
            shop = Partition(
                partition_id=shop_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, 0.0, x1, spec.shop_depth),
                kind=PartitionKind.SHOP,
                name=f"Shop S{floor_id}-{index}",
            )
            floor.add_partition(shop)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_sdoor_s{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, spec.shop_depth),
                    partitions=(shop_id, atrium.partition_id),
                    width=2.5,
                )
            )
        for index in range(spec.shops_per_side):
            x0 = index * spec.shop_width
            x1 = x0 + spec.shop_width
            if index == 0:
                shop_id = f"f{floor_id}_foodcourt"
                name = "Food court"
                kind = PartitionKind.CANTEEN
            elif index == spec.shops_per_side - 1:
                shop_id = f"f{floor_id}_stair"
                name = "Stairwell"
                kind = PartitionKind.STAIRWELL
            else:
                shop_id = f"f{floor_id}_shop_n{index}"
                name = f"Shop N{floor_id}-{index}"
                kind = PartitionKind.SHOP
            shop = Partition(
                partition_id=shop_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, atrium_y1, x1, atrium_y1 + spec.shop_depth),
                kind=kind,
                name=name,
            )
            floor.add_partition(shop)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_sdoor_n{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, atrium_y1),
                    partitions=(shop_id, atrium.partition_id),
                    width=2.5,
                )
            )
        if floor_id == 0:
            mid_y = (atrium_y0 + atrium_y1) / 2.0
            floor.add_door(
                Door(
                    door_id="f0_entrance_west",
                    floor_id=0,
                    position=Point(0.0, mid_y),
                    partitions=(atrium.partition_id, OUTDOOR),
                    width=3.0,
                )
            )
            floor.add_door(
                Door(
                    door_id="f0_entrance_east",
                    floor_id=0,
                    position=Point(width, mid_y),
                    partitions=(atrium.partition_id, OUTDOOR),
                    width=3.0,
                )
            )
    _connect_stairwells(building, spec.floors, lambda f: f"f{f}_stair", stair_length=8.0)
    return building


# --------------------------------------------------------------------------- #
# Clinic
# --------------------------------------------------------------------------- #
def clinic_building(spec: Optional[ClinicSpec] = None, building_id: str = "clinic") -> Building:
    """A clinic: consultation rooms and wards around a hallway plus a waiting room."""
    spec = spec or ClinicSpec()
    building = Building(building_id, name="Synthetic clinic")
    width = spec.rooms_per_side * spec.room_width
    hallway_y0 = spec.room_depth
    hallway_y1 = spec.room_depth + spec.hallway_width
    for floor_id in range(spec.floors):
        floor = building.new_floor(floor_id)
        hallway = Partition(
            partition_id=f"f{floor_id}_hall",
            floor_id=floor_id,
            polygon=Polygon.rectangle(0.0, hallway_y0, width, hallway_y1),
            kind=PartitionKind.HALLWAY,
            name=f"Corridor {floor_id}",
        )
        floor.add_partition(hallway)
        lower_names = ["Waiting room", "Consultation room", "Examination room", "Treatment room"]
        for index in range(spec.rooms_per_side):
            x0 = index * spec.room_width
            x1 = x0 + spec.room_width
            room_id = f"f{floor_id}_room_s{index}"
            name = lower_names[index % len(lower_names)]
            kind = PartitionKind.LOBBY if index == 0 else PartitionKind.CLINIC_ROOM
            room = Partition(
                partition_id=room_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, 0.0, x1, spec.room_depth),
                kind=kind,
                name=f"{name} {floor_id}-{index}",
            )
            floor.add_partition(room)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_door_s{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, spec.room_depth),
                    partitions=(room_id, hallway.partition_id),
                    width=1.1,
                )
            )
        for index in range(spec.rooms_per_side):
            x0 = index * spec.room_width
            x1 = x0 + spec.room_width
            is_stairwell = spec.floors > 1 and index == spec.rooms_per_side - 1
            room_id = f"f{floor_id}_stair" if is_stairwell else f"f{floor_id}_ward_{index}"
            room = Partition(
                partition_id=room_id,
                floor_id=floor_id,
                polygon=Polygon.rectangle(x0, hallway_y1, x1, hallway_y1 + spec.room_depth),
                kind=PartitionKind.STAIRWELL if is_stairwell else PartitionKind.CLINIC_ROOM,
                name="Stairwell" if is_stairwell else f"Ward {floor_id}-{index}",
            )
            floor.add_partition(room)
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_door_n{index}",
                    floor_id=floor_id,
                    position=Point((x0 + x1) / 2.0, hallway_y1),
                    partitions=(room_id, hallway.partition_id),
                    width=1.1,
                )
            )
        if floor_id == 0:
            floor.add_door(
                Door(
                    door_id="f0_entrance",
                    floor_id=0,
                    position=Point(0.0, (hallway_y0 + hallway_y1) / 2.0),
                    partitions=(hallway.partition_id, OUTDOOR),
                    width=1.8,
                )
            )
    if spec.floors > 1:
        _connect_stairwells(building, spec.floors, lambda f: f"f{f}_stair")
    return building


def building_by_name(name: str, floors: int = 2) -> Building:
    """Factory used by the configuration loader: "office", "mall" or "clinic"."""
    name = name.lower()
    if name == "office":
        return office_building(OfficeSpec(floors=floors))
    if name == "mall":
        return mall_building(MallSpec(floors=floors))
    if name == "clinic":
        return clinic_building(ClinicSpec(floors=max(1, floors)))
    raise ConfigurationError(
        f"unknown synthetic building {name!r}; expected office, mall or clinic"
    )


def _connect_stairwells(
    building: Building,
    floors: int,
    stairwell_id_of,
    stair_length: float = 6.0,
) -> None:
    """Add a staircase between the stairwells of every pair of adjacent floors."""
    for lower in range(floors - 1):
        upper = lower + 1
        lower_partition = building.partition(lower, stairwell_id_of(lower))
        upper_partition = building.partition(upper, stairwell_id_of(upper))
        building.add_staircase(
            Staircase(
                staircase_id=f"stair_{lower}_{upper}",
                lower_floor=lower,
                upper_floor=upper,
                lower_partition=lower_partition.partition_id,
                lower_point=lower_partition.centroid,
                upper_partition=upper_partition.partition_id,
                upper_point=upper_partition.centroid,
                length=stair_length,
            )
        )


__all__ = [
    "OfficeSpec",
    "MallSpec",
    "ClinicSpec",
    "office_building",
    "mall_building",
    "clinic_building",
    "building_by_name",
]
