"""Indoor distance computation and routing.

Section 3.1 of the paper lists two routing schemata for the *routing* aspect
of a moving pattern:

* **minimum indoor walking distance** (Yang et al., EDBT 2010) — the shortest
  walkable path length through doors and staircases;
* **minimum walking time** (MWGen) — the fastest path when different
  partition types support different walking speeds (hallways are fast,
  staircases slow).

Both are computed on a *door-to-door graph*: doors (and staircase endpoints)
are graph nodes; two doors are connected when a partition exists that one door
allows you to enter and the other allows you to leave, weighted by the
intra-partition Euclidean distance between the two door positions.  A query
adds temporary source/target nodes connected to the doors of their respective
partitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.building.model import Building, Door, OUTDOOR, Partition, Staircase
from repro.core.errors import RoutingError
from repro.core.types import FloorId, PartitionId
from repro.geometry.point import Point

#: Default walking speed (metres/second) used to convert distances to times
#: when the caller does not supply an object-specific speed.
DEFAULT_WALKING_SPEED = 1.4


@dataclass(frozen=True)
class RouteLeg:
    """A straight-line walk within a single partition."""

    floor_id: FloorId
    partition_id: PartitionId
    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Length of the leg in metres."""
        return self.start.distance_to(self.end)


@dataclass(frozen=True)
class RouteWaypoint:
    """A point along the route (door positions, staircase endpoints, endpoints)."""

    floor_id: FloorId
    partition_id: PartitionId
    point: Point
    connector_id: Optional[str] = None


@dataclass
class Route:
    """A walkable route between two indoor points."""

    waypoints: List[RouteWaypoint]
    length: float
    travel_time: float
    doors: List[str] = field(default_factory=list)
    staircases: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return len(self.waypoints) < 2

    @property
    def floors_visited(self) -> List[FloorId]:
        """Distinct floors visited, in visit order."""
        seen: List[FloorId] = []
        for waypoint in self.waypoints:
            if not seen or seen[-1] != waypoint.floor_id:
                seen.append(waypoint.floor_id)
        return seen

    def legs(self) -> List[RouteLeg]:
        """Straight-line legs between consecutive same-floor waypoints."""
        legs: List[RouteLeg] = []
        for previous, current in zip(self.waypoints, self.waypoints[1:]):
            if previous.floor_id != current.floor_id:
                continue
            legs.append(
                RouteLeg(
                    floor_id=previous.floor_id,
                    partition_id=current.partition_id,
                    start=previous.point,
                    end=current.point,
                )
            )
        return legs


class RoutePlanner:
    """Builds the door-to-door graph once and answers routing queries."""

    #: Node ids for doors are ("door", door_id); staircase endpoints use
    #: ("stair", staircase_id, "lower"/"upper"); query endpoints use
    #: ("query", tag).
    def __init__(self, building: Building, walking_speed: float = DEFAULT_WALKING_SPEED) -> None:
        if walking_speed <= 0:
            raise RoutingError("walking_speed must be positive")
        self.building = building
        self.walking_speed = walking_speed
        self.graph = nx.DiGraph()
        #: door/staircase-endpoint nodes grouped by the partition they touch,
        #: split into nodes that allow *entering* the partition and nodes that
        #: allow *leaving* it (directionality support).
        self._entry_nodes: Dict[Tuple[FloorId, PartitionId], List[Tuple]] = {}
        self._exit_nodes: Dict[Tuple[FloorId, PartitionId], List[Tuple]] = {}
        self._node_points: Dict[Tuple, Tuple[FloorId, Point]] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        for floor_id in self.building.floor_ids:
            floor = self.building.floors[floor_id]
            for door in floor.doors.values():
                node = ("door", door.door_id)
                self.graph.add_node(node, kind="door")
                self._node_points[node] = (floor_id, door.position)
                for partition_id in door.partitions:
                    if partition_id == OUTDOOR:
                        continue
                    other = door.other_side(partition_id)
                    key = (floor_id, partition_id)
                    # The door lets an object *leave* partition_id when it
                    # allows partition_id -> other.
                    if door.allows(partition_id, other):
                        self._exit_nodes.setdefault(key, []).append(node)
                    # It lets an object *enter* partition_id when it allows
                    # other -> partition_id.
                    if door.allows(other, partition_id):
                        self._entry_nodes.setdefault(key, []).append(node)
        for staircase in self.building.staircases.values():
            lower_node = ("stair", staircase.staircase_id, "lower")
            upper_node = ("stair", staircase.staircase_id, "upper")
            self.graph.add_node(lower_node, kind="staircase")
            self.graph.add_node(upper_node, kind="staircase")
            self._node_points[lower_node] = (staircase.lower_floor, staircase.lower_point)
            self._node_points[upper_node] = (staircase.upper_floor, staircase.upper_point)
            lower_key = (staircase.lower_floor, staircase.lower_partition)
            upper_key = (staircase.upper_floor, staircase.upper_partition)
            # A staircase endpoint acts both as an entry to and an exit from
            # the partition that hosts it.
            for key, node in ((lower_key, lower_node), (upper_key, upper_node)):
                self._entry_nodes.setdefault(key, []).append(node)
                self._exit_nodes.setdefault(key, []).append(node)
            stair_time = staircase.length / (self.walking_speed * 0.5)
            self.graph.add_edge(
                lower_node, upper_node, length=staircase.length, time=stair_time,
                partition=None, staircase_id=staircase.staircase_id,
            )
            self.graph.add_edge(
                upper_node, lower_node, length=staircase.length, time=stair_time,
                partition=None, staircase_id=staircase.staircase_id,
            )
        # Intra-partition edges: from every node that can enter a partition to
        # every node that can leave it.
        for key, entries in self._entry_nodes.items():
            exits = self._exit_nodes.get(key, [])
            floor_id, partition_id = key
            partition = self.building.partition(floor_id, partition_id)
            for entry_node, exit_node in itertools.product(entries, exits):
                if entry_node == exit_node:
                    continue
                start = self._node_points[entry_node][1]
                end = self._node_points[exit_node][1]
                length = start.distance_to(end)
                time = length / (self.walking_speed * partition.speed_factor)
                self.graph.add_edge(
                    entry_node,
                    exit_node,
                    length=length,
                    time=time,
                    partition=key,
                )

    # ------------------------------------------------------------------ #
    # Graph introspection (read-only; used by repro.spatial.SpatialService)
    # ------------------------------------------------------------------ #
    def exit_nodes_of(self, floor_id: FloorId, partition_id: PartitionId) -> Sequence[Tuple]:
        """Graph nodes through which an object can *leave* the partition.

        Returns the planner's internal list — treat it as read-only.
        """
        return self._exit_nodes.get((floor_id, partition_id), ())

    def entry_nodes_of(self, floor_id: FloorId, partition_id: PartitionId) -> Sequence[Tuple]:
        """Graph nodes through which an object can *enter* the partition.

        Returns the planner's internal list — treat it as read-only.
        """
        return self._entry_nodes.get((floor_id, partition_id), ())

    def node_location(self, node: Tuple) -> Tuple[FloorId, Point]:
        """The ``(floor_id, point)`` of a door/staircase graph node."""
        return self._node_points[node]

    def node_partition(self, node: Tuple) -> PartitionId:
        """Best-effort partition annotation for a door/staircase graph node."""
        floor_id, point = self._node_points[node]
        return self._partition_of_node(node, floor_id, point)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def shortest_route(
        self,
        source_floor: FloorId,
        source_point: Point,
        target_floor: FloorId,
        target_point: Point,
        metric: str = "length",
        walking_speed: Optional[float] = None,
    ) -> Route:
        """Compute the optimal route between two indoor points.

        Args:
            metric: ``"length"`` for minimum indoor walking distance or
                ``"time"`` for minimum walking time.
            walking_speed: overrides the planner-level walking speed when the
                travel time of the resulting route is computed.

        Raises:
            RoutingError: when either endpoint is outside every partition or
                no walkable path exists.
        """
        if metric not in ("length", "time"):
            raise RoutingError(f"unknown routing metric {metric!r}")
        speed = walking_speed or self.walking_speed
        source_partition = self.building.floor(source_floor).partition_at(source_point)
        target_partition = self.building.floor(target_floor).partition_at(target_point)
        if source_partition is None:
            raise RoutingError(
                f"source point {source_point} is not inside any partition of floor {source_floor}"
            )
        if target_partition is None:
            raise RoutingError(
                f"target point {target_point} is not inside any partition of floor {target_floor}"
            )
        # Same partition: walk straight.
        if (source_floor, source_partition.partition_id) == (
            target_floor,
            target_partition.partition_id,
        ):
            length = source_point.distance_to(target_point)
            time = length / (speed * source_partition.speed_factor)
            waypoints = [
                RouteWaypoint(source_floor, source_partition.partition_id, source_point),
                RouteWaypoint(target_floor, target_partition.partition_id, target_point),
            ]
            return Route(waypoints=waypoints, length=length, travel_time=time)
        return self._route_through_doors(
            source_floor, source_point, source_partition,
            target_floor, target_point, target_partition,
            metric, speed,
        )

    def shortest_distance(
        self,
        source_floor: FloorId,
        source_point: Point,
        target_floor: FloorId,
        target_point: Point,
    ) -> float:
        """Minimum indoor walking distance between two points."""
        return self.shortest_route(
            source_floor, source_point, target_floor, target_point, metric="length"
        ).length

    def _route_through_doors(
        self,
        source_floor: FloorId,
        source_point: Point,
        source_partition: Partition,
        target_floor: FloorId,
        target_point: Point,
        target_partition: Partition,
        metric: str,
        speed: float,
    ) -> Route:
        source_key = (source_floor, source_partition.partition_id)
        target_key = (target_floor, target_partition.partition_id)
        exit_nodes = self._exit_nodes.get(source_key, [])
        entry_nodes = self._entry_nodes.get(target_key, [])
        if not exit_nodes:
            raise RoutingError(
                f"partition {source_partition.partition_id} has no traversable door"
            )
        if not entry_nodes:
            raise RoutingError(
                f"partition {target_partition.partition_id} has no traversable door"
            )
        source_node = ("query", "source")
        target_node = ("query", "target")
        graph = self.graph
        added_edges: List[Tuple] = []
        graph.add_node(source_node)
        graph.add_node(target_node)
        try:
            for node in exit_nodes:
                door_point = self._node_points[node][1]
                length = source_point.distance_to(door_point)
                time = length / (speed * source_partition.speed_factor)
                graph.add_edge(source_node, node, length=length, time=time,
                               partition=source_key)
                added_edges.append((source_node, node))
            for node in entry_nodes:
                door_point = self._node_points[node][1]
                length = door_point.distance_to(target_point)
                time = length / (speed * target_partition.speed_factor)
                graph.add_edge(node, target_node, length=length, time=time,
                               partition=target_key)
                added_edges.append((node, target_node))
            try:
                node_path = nx.shortest_path(graph, source_node, target_node, weight=metric)
            except nx.NetworkXNoPath:
                raise RoutingError(
                    f"no walkable path from {source_partition.partition_id} "
                    f"(floor {source_floor}) to {target_partition.partition_id} "
                    f"(floor {target_floor})"
                )
            return self._assemble_route(
                node_path, source_floor, source_point, source_partition,
                target_floor, target_point, target_partition, speed,
            )
        finally:
            graph.remove_node(source_node)
            graph.remove_node(target_node)

    def _assemble_route(
        self,
        node_path: Sequence,
        source_floor: FloorId,
        source_point: Point,
        source_partition: Partition,
        target_floor: FloorId,
        target_point: Point,
        target_partition: Partition,
        speed: float,
    ) -> Route:
        waypoints: List[RouteWaypoint] = [
            RouteWaypoint(source_floor, source_partition.partition_id, source_point)
        ]
        doors: List[str] = []
        staircases: List[str] = []
        total_length = 0.0
        total_time = 0.0
        previous_node = node_path[0]
        for node in node_path[1:]:
            edge = self.graph.get_edge_data(previous_node, node)
            if edge is None:
                # Temporary edges were removed already; recompute from points.
                edge = {}
            if node == ("query", "target"):
                floor_id, partition_id, point = (
                    target_floor, target_partition.partition_id, target_point,
                )
                connector = None
            else:
                floor_id, point = self._node_points[node]
                partition_id = self._partition_of_node(node, floor_id, point)
                connector = node[1]
                if node[0] == "door":
                    doors.append(node[1])
                elif node[0] == "stair" and node[1] not in staircases:
                    staircases.append(node[1])
            waypoints.append(RouteWaypoint(floor_id, partition_id, point, connector))
            leg_length = edge.get("length")
            if leg_length is None:
                leg_length = waypoints[-2].point.distance_to(point)
            leg_time = edge.get("time")
            if leg_time is None:
                leg_time = leg_length / speed
            total_length += leg_length
            total_time += leg_time
            previous_node = node
        return Route(
            waypoints=waypoints,
            length=total_length,
            travel_time=total_time,
            doors=doors,
            staircases=staircases,
        )

    def _partition_of_node(self, node: Tuple, floor_id: FloorId, point: Point) -> PartitionId:
        """Best-effort partition annotation for a door/staircase waypoint."""
        partition = self.building.floor(floor_id).partition_at(point)
        if partition is not None:
            return partition.partition_id
        if node[0] == "door":
            door = self._find_door(node[1])
            if door is not None:
                candidates = [p for p in door.partitions if p != OUTDOOR]
                if candidates:
                    return candidates[0]
        if node[0] == "stair":
            staircase = self.building.staircases.get(node[1])
            if staircase is not None:
                partition_id, _ = staircase.endpoint_on(floor_id)
                return partition_id
        return "unknown"

    def _find_door(self, door_id: str) -> Optional[Door]:
        for floor in self.building.floors.values():
            door = floor.doors.get(door_id)
            if door is not None:
                return door
        return None


__all__ = [
    "DEFAULT_WALKING_SPEED",
    "RouteLeg",
    "RouteWaypoint",
    "Route",
    "RoutePlanner",
]
