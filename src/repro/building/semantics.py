"""Semantic extraction for indoor partitions.

Section 4.1: "Vita also supports semantic extraction by defining empirical
rules.  For example, a canteen will be identified if its entity name contains
the word 'canteen' or 'dining room', a public area will be recognized in the
terms of its door connectivity and floorage."

The rule engine below works on partition names, geometry (floorage, aspect
ratio) and door connectivity and assigns a semantic tag and, optionally, a
refined :class:`~repro.building.model.PartitionKind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.building.model import Building, Partition, PartitionKind
from repro.building.topology import AccessibilityGraph


@dataclass
class RuleContext:
    """Everything a semantic rule may look at when classifying a partition."""

    partition: Partition
    door_degree: int
    floor_area: float

    @property
    def name(self) -> str:
        return (self.partition.name or self.partition.partition_id).lower()

    @property
    def area(self) -> float:
        return self.partition.area

    @property
    def aspect_ratio(self) -> float:
        return self.partition.polygon.aspect_ratio

    @property
    def area_share(self) -> float:
        """Fraction of the floor's total area occupied by this partition."""
        if self.floor_area <= 0:
            return 0.0
        return self.partition.area / self.floor_area


@dataclass
class SemanticRule:
    """A single empirical rule: predicate plus the tag/kind to assign."""

    name: str
    predicate: Callable[[RuleContext], bool]
    tag: str
    kind: Optional[PartitionKind] = None
    priority: int = 0

    def matches(self, context: RuleContext) -> bool:
        """Whether this rule applies to the partition described by *context*."""
        return self.predicate(context)


def _name_contains(*keywords: str) -> Callable[[RuleContext], bool]:
    keywords = tuple(k.lower() for k in keywords)
    return lambda context: any(keyword in context.name for keyword in keywords)


def default_rules() -> List[SemanticRule]:
    """The empirical rules shipped with the toolkit.

    Users can extend or replace these via :class:`SemanticExtractor`.
    """
    return [
        SemanticRule(
            name="canteen-by-name",
            predicate=_name_contains("canteen", "dining room", "food court", "cafeteria"),
            tag="canteen",
            kind=PartitionKind.CANTEEN,
            priority=100,
        ),
        SemanticRule(
            name="shop-by-name",
            predicate=_name_contains("shop", "store", "boutique"),
            tag="shop",
            kind=PartitionKind.SHOP,
            priority=90,
        ),
        SemanticRule(
            name="clinic-room-by-name",
            predicate=_name_contains("consult", "exam", "ward", "treatment"),
            tag="clinic_room",
            kind=PartitionKind.CLINIC_ROOM,
            priority=90,
        ),
        SemanticRule(
            name="office-by-name",
            predicate=_name_contains("office"),
            tag="office",
            kind=PartitionKind.OFFICE,
            priority=80,
        ),
        SemanticRule(
            name="lobby-by-name",
            predicate=_name_contains("lobby", "reception", "waiting"),
            tag="lobby",
            kind=PartitionKind.LOBBY,
            priority=80,
        ),
        SemanticRule(
            name="stairwell-by-name",
            predicate=_name_contains("stair"),
            tag="stairwell",
            kind=PartitionKind.STAIRWELL,
            priority=80,
        ),
        SemanticRule(
            name="hallway-by-shape",
            predicate=lambda c: c.aspect_ratio >= 3.0 and c.door_degree >= 3,
            tag="hallway",
            kind=PartitionKind.HALLWAY,
            priority=40,
        ),
        SemanticRule(
            name="public-area-by-connectivity-and-floorage",
            predicate=lambda c: c.door_degree >= 3 and (c.area >= 60.0 or c.area_share >= 0.25),
            tag="public_area",
            kind=PartitionKind.PUBLIC_AREA,
            priority=30,
        ),
        SemanticRule(
            name="room-fallback",
            predicate=lambda c: True,
            tag="room",
            kind=None,
            priority=0,
        ),
    ]


class SemanticExtractor:
    """Applies empirical rules to every partition of a building."""

    def __init__(self, rules: Optional[Sequence[SemanticRule]] = None) -> None:
        self.rules: List[SemanticRule] = sorted(
            rules if rules is not None else default_rules(),
            key=lambda rule: -rule.priority,
        )

    def add_rule(self, rule: SemanticRule) -> None:
        """Register an extra rule (kept sorted by priority)."""
        self.rules.append(rule)
        self.rules.sort(key=lambda r: -r.priority)

    def classify_partition(self, context: RuleContext) -> Tuple[str, Optional[PartitionKind]]:
        """Return (tag, kind) of the highest-priority matching rule."""
        for rule in self.rules:
            if rule.matches(context):
                return rule.tag, rule.kind
        return "room", None

    def annotate_building(
        self,
        building: Building,
        graph: Optional[AccessibilityGraph] = None,
        overwrite_kind: bool = True,
    ) -> Dict[str, str]:
        """Assign a ``semantic_tag`` to every partition of *building*.

        Args:
            graph: a pre-built accessibility graph (built on demand otherwise).
            overwrite_kind: also update ``Partition.kind`` when a rule supplies
                a more specific kind and the current kind is the generic ROOM.

        Returns:
            Mapping from ``"floor:partition"`` key to the assigned tag.
        """
        graph = graph or AccessibilityGraph(building)
        assignments: Dict[str, str] = {}
        for floor_id in building.floor_ids:
            floor = building.floors[floor_id]
            floor_area = floor.total_area
            for partition in floor.partitions.values():
                context = RuleContext(
                    partition=partition,
                    door_degree=graph.degree_of(floor_id, partition.partition_id),
                    floor_area=floor_area,
                )
                tag, kind = self.classify_partition(context)
                partition.semantic_tag = tag
                if overwrite_kind and kind is not None and partition.kind == PartitionKind.ROOM:
                    partition.kind = kind
                assignments[f"{floor_id}:{partition.partition_id}"] = tag
        return assignments

    def partitions_with_tag(self, building: Building, tag: str) -> List[Partition]:
        """All partitions currently carrying *tag* (annotate first)."""
        return [p for p in building.all_partitions() if p.semantic_tag == tag]


__all__ = [
    "RuleContext",
    "SemanticRule",
    "SemanticExtractor",
    "default_rules",
]
