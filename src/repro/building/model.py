"""The host indoor environment: buildings, floors, partitions, doors, staircases.

This is the output of the Infrastructure Layer's DBI processing and the input
to everything downstream (topology, routing, device deployment, movement
simulation, RSSI generation).  The model follows the entities the paper
manipulates:

* **partitions** — rooms, hallways and other walkable units (Section 4.1
  decomposes irregular rooms/hallways into balanced partitions);
* **doors** — connect exactly two partitions (or a partition and the outside)
  and may be directional (Section 2, Indoor Environment Controller);
* **staircases** — connect an upper and a lower partition on adjacent floors
  (Section 4.1 describes how their connectivity is recovered);
* **obstacles** — user-deployed polygons that attenuate radio signals;
* **walls** — derived from partition boundaries with gaps cut at doors; used
  for line-of-sight analysis by the path loss model.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import TopologyError
from repro.core.types import BuildingId, FloorId, IndoorLocation, PartitionId
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.segment import Segment
from repro.geometry.spatial_index import GridIndex

#: Outside of the building; used as the second side of entrance doors.
OUTDOOR: PartitionId = "__outdoor__"


class PartitionKind(enum.Enum):
    """Functional classification of a partition."""

    ROOM = "room"
    HALLWAY = "hallway"
    STAIRWELL = "stairwell"
    ELEVATOR = "elevator"
    PUBLIC_AREA = "public_area"
    CANTEEN = "canteen"
    SHOP = "shop"
    OFFICE = "office"
    CLINIC_ROOM = "clinic_room"
    LOBBY = "lobby"

    @property
    def is_walkable(self) -> bool:
        """All current kinds are walkable; kept for future extension."""
        return True


#: Typical walking-speed multipliers per partition kind relative to an object's
#: nominal speed.  Used by the minimum-walking-time routing schema.
SPEED_FACTORS: Dict[PartitionKind, float] = {
    PartitionKind.ROOM: 0.85,
    PartitionKind.OFFICE: 0.85,
    PartitionKind.CLINIC_ROOM: 0.85,
    PartitionKind.SHOP: 0.75,
    PartitionKind.CANTEEN: 0.7,
    PartitionKind.HALLWAY: 1.0,
    PartitionKind.LOBBY: 0.95,
    PartitionKind.PUBLIC_AREA: 0.9,
    PartitionKind.STAIRWELL: 0.5,
    PartitionKind.ELEVATOR: 0.4,
}


@dataclass
class Partition:
    """A walkable indoor unit (room, hallway, decomposed cell, ...)."""

    partition_id: PartitionId
    floor_id: FloorId
    polygon: Polygon
    kind: PartitionKind = PartitionKind.ROOM
    name: str = ""
    semantic_tag: Optional[str] = None

    @property
    def area(self) -> float:
        """Floor area of the partition in square metres."""
        return self.polygon.area

    @property
    def centroid(self) -> Point:
        """Area centroid of the partition."""
        return self.polygon.centroid

    @property
    def speed_factor(self) -> float:
        """Walking-speed multiplier inside this partition."""
        return SPEED_FACTORS.get(self.kind, 0.85)

    def contains_point(self, point: Point) -> bool:
        """Whether *point* lies inside the partition."""
        return self.polygon.contains_point(point)

    def random_point(self, rng: Optional[random.Random] = None) -> Point:
        """Sample a uniformly random point inside the partition."""
        return self.polygon.random_point(rng)

    def location(self, building_id: BuildingId, point: Optional[Point] = None) -> IndoorLocation:
        """Build an :class:`IndoorLocation` inside this partition."""
        point = point if point is not None else self.centroid
        return IndoorLocation(
            building_id=building_id,
            floor_id=self.floor_id,
            partition_id=self.partition_id,
            x=point.x,
            y=point.y,
        )


@dataclass
class Door:
    """A door connecting two partitions on the same floor.

    ``partitions`` holds the two partition ids the door joins; entrance doors
    use :data:`OUTDOOR` as one side.  A door is bidirectional by default;
    setting ``one_way_from``/``one_way_to`` makes it traversable only in that
    direction (door directionality, Section 2).
    """

    door_id: str
    floor_id: FloorId
    position: Point
    partitions: Tuple[PartitionId, PartitionId]
    width: float = 1.0
    one_way_from: Optional[PartitionId] = None
    one_way_to: Optional[PartitionId] = None

    def __post_init__(self) -> None:
        if self.partitions[0] == self.partitions[1]:
            raise TopologyError(
                f"door {self.door_id} must connect two distinct partitions"
            )
        if (self.one_way_from is None) != (self.one_way_to is None):
            raise TopologyError(
                f"door {self.door_id}: one_way_from and one_way_to must be set together"
            )
        if self.one_way_from is not None:
            pair = set(self.partitions)
            if {self.one_way_from, self.one_way_to} != pair:
                raise TopologyError(
                    f"door {self.door_id}: one-way direction must use its own partitions"
                )

    @property
    def is_bidirectional(self) -> bool:
        """Whether the door can be traversed both ways."""
        return self.one_way_from is None

    @property
    def is_entrance(self) -> bool:
        """Whether this door leads outdoors."""
        return OUTDOOR in self.partitions

    def connects(self, partition_id: PartitionId) -> bool:
        """Whether the door touches *partition_id*."""
        return partition_id in self.partitions

    def other_side(self, partition_id: PartitionId) -> PartitionId:
        """The partition on the opposite side of *partition_id*."""
        first, second = self.partitions
        if partition_id == first:
            return second
        if partition_id == second:
            return first
        raise TopologyError(
            f"door {self.door_id} does not touch partition {partition_id}"
        )

    def allows(self, from_partition: PartitionId, to_partition: PartitionId) -> bool:
        """Whether the door may be crossed from *from_partition* into *to_partition*."""
        if set((from_partition, to_partition)) != set(self.partitions):
            return False
        if self.is_bidirectional:
            return True
        return from_partition == self.one_way_from and to_partition == self.one_way_to

    def set_one_way(self, from_partition: PartitionId, to_partition: PartitionId) -> None:
        """Restrict the door to one-way traversal."""
        if set((from_partition, to_partition)) != set(self.partitions):
            raise TopologyError(
                f"door {self.door_id} does not connect {from_partition} and {to_partition}"
            )
        self.one_way_from = from_partition
        self.one_way_to = to_partition

    def set_bidirectional(self) -> None:
        """Restore two-way traversal."""
        self.one_way_from = None
        self.one_way_to = None


@dataclass
class Staircase:
    """A staircase connecting a lower-floor partition to an upper-floor partition.

    Section 4.1: IFC models a staircase as a set of disjoint 3D points; Vita
    recovers its upper and lower connected floors and partitions.  Here the
    resolved connectivity is stored explicitly.
    """

    staircase_id: str
    lower_floor: FloorId
    upper_floor: FloorId
    lower_partition: PartitionId
    lower_point: Point
    upper_partition: PartitionId
    upper_point: Point
    length: float = 6.0

    def __post_init__(self) -> None:
        if self.upper_floor <= self.lower_floor:
            raise TopologyError(
                f"staircase {self.staircase_id}: upper_floor must be above lower_floor"
            )
        if self.length <= 0:
            raise TopologyError(f"staircase {self.staircase_id}: length must be positive")

    def endpoint_on(self, floor_id: FloorId) -> Tuple[PartitionId, Point]:
        """The (partition, point) where the staircase meets *floor_id*."""
        if floor_id == self.lower_floor:
            return self.lower_partition, self.lower_point
        if floor_id == self.upper_floor:
            return self.upper_partition, self.upper_point
        raise TopologyError(
            f"staircase {self.staircase_id} does not reach floor {floor_id}"
        )

    def connects_floor(self, floor_id: FloorId) -> bool:
        """Whether the staircase touches *floor_id*."""
        return floor_id in (self.lower_floor, self.upper_floor)


@dataclass
class Obstacle:
    """A user-deployed obstacle that blocks or attenuates radio signals."""

    obstacle_id: str
    floor_id: FloorId
    polygon: Polygon
    attenuation_db: float = 4.0
    blocks_movement: bool = False

    @property
    def area(self) -> float:
        return self.polygon.area


@dataclass(frozen=True)
class Wall:
    """A wall segment derived from partition boundaries (door gaps removed)."""

    floor_id: FloorId
    segment: Segment
    attenuation_db: float = 3.0

    @property
    def length(self) -> float:
        return self.segment.length


class Floor:
    """A single storey: its partitions, doors, obstacles and derived walls."""

    def __init__(self, floor_id: FloorId, elevation: float = 0.0, height: float = 3.0) -> None:
        self.floor_id = floor_id
        self.elevation = elevation
        self.height = height
        self.partitions: Dict[PartitionId, Partition] = {}
        self.doors: Dict[str, Door] = {}
        self.obstacles: Dict[str, Obstacle] = {}
        #: Monotonic mutation counter; external caches (e.g. the spatial
        #: service) compare it to detect stale derived state.
        self.version: int = 0
        #: The building this floor is registered with (set by
        #: ``Building.add_floor``); mutations propagate to its counter so
        #: ``Building.version`` stays an O(1) read on hot cache paths.
        self._owner: Optional["Building"] = None
        self._walls: Optional[List[Wall]] = None
        self._partition_index: Optional[GridIndex[Partition]] = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_partition(self, partition: Partition) -> Partition:
        """Register *partition* on this floor."""
        if partition.floor_id != self.floor_id:
            raise TopologyError(
                f"partition {partition.partition_id} belongs to floor "
                f"{partition.floor_id}, not {self.floor_id}"
            )
        if partition.partition_id in self.partitions:
            raise TopologyError(f"duplicate partition id {partition.partition_id}")
        self.partitions[partition.partition_id] = partition
        self._invalidate_caches()
        return partition

    def remove_partition(self, partition_id: PartitionId) -> None:
        """Remove a partition and every door attached to it."""
        self.partitions.pop(partition_id, None)
        orphans = [d.door_id for d in self.doors.values() if d.connects(partition_id)]
        for door_id in orphans:
            del self.doors[door_id]
        self._invalidate_caches()

    def add_door(self, door: Door) -> Door:
        """Register *door* on this floor.

        Both partitions must already exist on this floor (the outdoor
        pseudo-partition is always allowed).
        """
        if door.floor_id != self.floor_id:
            raise TopologyError(
                f"door {door.door_id} belongs to floor {door.floor_id}, not {self.floor_id}"
            )
        if door.door_id in self.doors:
            raise TopologyError(f"duplicate door id {door.door_id}")
        for partition_id in door.partitions:
            if partition_id != OUTDOOR and partition_id not in self.partitions:
                raise TopologyError(
                    f"door {door.door_id} references unknown partition {partition_id}"
                )
        self.doors[door.door_id] = door
        self._invalidate_caches()
        return door

    def add_obstacle(self, obstacle: Obstacle) -> Obstacle:
        """Register an obstacle polygon on this floor."""
        if obstacle.floor_id != self.floor_id:
            raise TopologyError(
                f"obstacle {obstacle.obstacle_id} belongs to floor "
                f"{obstacle.floor_id}, not {self.floor_id}"
            )
        if obstacle.obstacle_id in self.obstacles:
            raise TopologyError(f"duplicate obstacle id {obstacle.obstacle_id}")
        self.obstacles[obstacle.obstacle_id] = obstacle
        self._invalidate_caches()
        return obstacle

    def _invalidate_caches(self) -> None:
        self.version += 1
        if self._owner is not None:
            self._owner._structure_version += 1
        self._walls = None
        self._partition_index = None

    def __getstate__(self) -> dict:
        # The lazy caches hold closures (not picklable) and are cheap to
        # rebuild, so pickling ships the floor without them.  This is what
        # lets a Building cross process boundaries for parallel generation.
        state = self.__dict__.copy()
        state["_walls"] = None
        state["_partition_index"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def bounding_box(self) -> BoundingBox:
        """Bounding box covering every partition of the floor."""
        if not self.partitions:
            return BoundingBox(0.0, 0.0, 1.0, 1.0)
        boxes = [p.polygon.bounding_box for p in self.partitions.values()]
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        return box

    @property
    def total_area(self) -> float:
        """Sum of partition areas on this floor."""
        return sum(p.area for p in self.partitions.values())

    def partition_index(self) -> GridIndex[Partition]:
        """Spatial index over partitions (built lazily, invalidated on change)."""
        if self._partition_index is None:
            self._partition_index = GridIndex(
                self.partitions.values(), lambda p: p.polygon.bounding_box
            )
        return self._partition_index

    def partition_at(self, point: Point) -> Optional[Partition]:
        """The partition containing *point*, or ``None``."""
        for candidate in self.partition_index().query_point(point):
            if candidate.contains_point(point):
                return candidate
        return None

    def doors_of(self, partition_id: PartitionId) -> List[Door]:
        """All doors touching *partition_id*."""
        return [d for d in self.doors.values() if d.connects(partition_id)]

    def entrances(self) -> List[Door]:
        """Doors connecting the floor to the outdoors."""
        return [d for d in self.doors.values() if d.is_entrance]

    def neighbors_of(self, partition_id: PartitionId) -> List[PartitionId]:
        """Partitions reachable from *partition_id* through a single door."""
        neighbors = []
        for door in self.doors_of(partition_id):
            other = door.other_side(partition_id)
            if other != OUTDOOR and door.allows(partition_id, other):
                neighbors.append(other)
        return neighbors

    # ------------------------------------------------------------------ #
    # Wall derivation
    # ------------------------------------------------------------------ #
    def walls(self, wall_attenuation_db: float = 3.0) -> List[Wall]:
        """Derive the wall segments of this floor.

        Every partition boundary edge is a wall; shared edges between two
        partitions are emitted once.  A gap of the door's width is cut around
        each door lying on a wall so that sight lines through open doors are
        not counted as blocked.
        """
        if self._walls is not None:
            return self._walls
        unique: Dict[Tuple[Tuple[float, float], Tuple[float, float]], Segment] = {}
        for partition in self.partitions.values():
            for edge in partition.polygon.edges():
                key = _edge_key(edge)
                unique.setdefault(key, edge)
        walls: List[Wall] = []
        doors = list(self.doors.values())
        for edge in unique.values():
            for piece in _cut_door_gaps(edge, doors):
                walls.append(
                    Wall(
                        floor_id=self.floor_id,
                        segment=piece,
                        attenuation_db=wall_attenuation_db,
                    )
                )
        self._walls = walls
        return walls

    def wall_segments(self) -> List[Segment]:
        """Convenience accessor returning only the wall geometry."""
        return [wall.segment for wall in self.walls()]

    def obstacle_polygons(self) -> List[Polygon]:
        """Polygons of every deployed obstacle."""
        return [obstacle.polygon for obstacle in self.obstacles.values()]

    def random_partition(self, rng: Optional[random.Random] = None) -> Partition:
        """A partition chosen with probability proportional to its area."""
        rng = rng or random
        partitions = list(self.partitions.values())
        if not partitions:
            raise TopologyError(f"floor {self.floor_id} has no partitions")
        weights = [p.area for p in partitions]
        return rng.choices(partitions, weights=weights, k=1)[0]

    def __repr__(self) -> str:
        return (
            f"Floor({self.floor_id}, partitions={len(self.partitions)}, "
            f"doors={len(self.doors)}, obstacles={len(self.obstacles)})"
        )


class Building:
    """A multi-floor building: floors plus the staircases that connect them."""

    def __init__(self, building_id: BuildingId, name: str = "") -> None:
        self.building_id = building_id
        self.name = name or building_id
        self.floors: Dict[FloorId, Floor] = {}
        self.staircases: Dict[str, Staircase] = {}
        self._structure_version: int = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_floor(self, floor: Floor) -> Floor:
        """Register *floor* with the building."""
        if floor.floor_id in self.floors:
            raise TopologyError(f"duplicate floor id {floor.floor_id}")
        self.floors[floor.floor_id] = floor
        floor._owner = self
        self._structure_version += 1
        return floor

    def new_floor(self, floor_id: FloorId, elevation: Optional[float] = None,
                  height: float = 3.0) -> Floor:
        """Create, register and return a new empty floor."""
        if elevation is None:
            elevation = floor_id * height
        return self.add_floor(Floor(floor_id, elevation=elevation, height=height))

    def add_staircase(self, staircase: Staircase) -> Staircase:
        """Register *staircase*, validating that its endpoints exist."""
        if staircase.staircase_id in self.staircases:
            raise TopologyError(f"duplicate staircase id {staircase.staircase_id}")
        for floor_id, partition_id in (
            (staircase.lower_floor, staircase.lower_partition),
            (staircase.upper_floor, staircase.upper_partition),
        ):
            floor = self.floors.get(floor_id)
            if floor is None:
                raise TopologyError(
                    f"staircase {staircase.staircase_id} references missing floor {floor_id}"
                )
            if partition_id not in floor.partitions:
                raise TopologyError(
                    f"staircase {staircase.staircase_id} references missing "
                    f"partition {partition_id} on floor {floor_id}"
                )
        self.staircases[staircase.staircase_id] = staircase
        self._structure_version += 1
        return staircase

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Aggregate mutation counter over the building and all its floors.

        Any structural change (new floor or staircase, or any partition /
        door / obstacle edit on a registered floor) advances the value,
        letting derived caches such as
        :class:`~repro.spatial.SpatialService` detect that they are stale
        without subscribing to every mutation site.  Registered floors
        propagate their mutations here (``Floor._invalidate_caches``), so
        the read is O(1) — it sits on the hottest cache-check paths.
        """
        return self._structure_version

    @property
    def floor_ids(self) -> List[FloorId]:
        """Floor ids in ascending order."""
        return sorted(self.floors)

    @property
    def partition_count(self) -> int:
        """Total number of partitions across all floors."""
        return sum(len(f.partitions) for f in self.floors.values())

    @property
    def door_count(self) -> int:
        """Total number of doors across all floors."""
        return sum(len(f.doors) for f in self.floors.values())

    @property
    def total_area(self) -> float:
        """Total walkable area across all floors."""
        return sum(f.total_area for f in self.floors.values())

    def floor(self, floor_id: FloorId) -> Floor:
        """The floor with id *floor_id*."""
        try:
            return self.floors[floor_id]
        except KeyError:
            raise TopologyError(f"building {self.building_id} has no floor {floor_id}")

    def partition(self, floor_id: FloorId, partition_id: PartitionId) -> Partition:
        """The partition *partition_id* on floor *floor_id*."""
        floor = self.floor(floor_id)
        try:
            return floor.partitions[partition_id]
        except KeyError:
            raise TopologyError(
                f"floor {floor_id} has no partition {partition_id}"
            )

    def all_partitions(self) -> List[Partition]:
        """Every partition of the building."""
        result: List[Partition] = []
        for floor_id in self.floor_ids:
            result.extend(self.floors[floor_id].partitions.values())
        return result

    def all_doors(self) -> List[Door]:
        """Every door of the building."""
        result: List[Door] = []
        for floor_id in self.floor_ids:
            result.extend(self.floors[floor_id].doors.values())
        return result

    def staircases_on(self, floor_id: FloorId) -> List[Staircase]:
        """Staircases touching *floor_id*."""
        return [s for s in self.staircases.values() if s.connects_floor(floor_id)]

    def locate(self, floor_id: FloorId, point: Point) -> IndoorLocation:
        """Build an :class:`IndoorLocation` for *point*, resolving its partition."""
        partition = self.floor(floor_id).partition_at(point)
        return IndoorLocation(
            building_id=self.building_id,
            floor_id=floor_id,
            partition_id=partition.partition_id if partition else None,
            x=point.x,
            y=point.y,
        )

    def random_location(self, rng: Optional[random.Random] = None) -> IndoorLocation:
        """A uniformly random walkable location (area-weighted across floors)."""
        rng = rng or random
        floors = [self.floors[fid] for fid in self.floor_ids if self.floors[fid].partitions]
        if not floors:
            raise TopologyError(f"building {self.building_id} has no partitions")
        weights = [f.total_area for f in floors]
        floor = rng.choices(floors, weights=weights, k=1)[0]
        partition = floor.random_partition(rng)
        point = partition.random_point(rng)
        return partition.location(self.building_id, point)

    def validate(self) -> List[str]:
        """Run consistency checks; return a list of human-readable problems.

        This mirrors the "data errors ... identified through geometry
        calculations" step of Section 4.1.
        """
        problems: List[str] = []
        for floor in self.floors.values():
            for door in floor.doors.values():
                for partition_id in door.partitions:
                    if partition_id == OUTDOOR:
                        continue
                    partition = floor.partitions.get(partition_id)
                    if partition is None:
                        problems.append(
                            f"door {door.door_id} references missing partition {partition_id}"
                        )
                        continue
                    distance = min(
                        edge.distance_to_point(door.position)
                        for edge in partition.polygon.edges()
                    )
                    if distance > max(door.width, 1.0) + 0.5 and not partition.contains_point(door.position):
                        problems.append(
                            f"door {door.door_id} lies {distance:.2f} m away from "
                            f"partition {partition_id}"
                        )
            for a_id, a in floor.partitions.items():
                for b_id, b in floor.partitions.items():
                    if a_id >= b_id:
                        continue
                    if a.polygon.overlaps(b.polygon):
                        overlap = _overlap_area_estimate(a.polygon, b.polygon)
                        if overlap > 0.5:
                            problems.append(
                                f"partitions {a_id} and {b_id} on floor {floor.floor_id} "
                                f"overlap by ~{overlap:.1f} m^2"
                            )
        for staircase in self.staircases.values():
            lower = self.floors[staircase.lower_floor].partitions[staircase.lower_partition]
            if not lower.contains_point(staircase.lower_point):
                problems.append(
                    f"staircase {staircase.staircase_id} lower point is outside "
                    f"partition {staircase.lower_partition}"
                )
            upper = self.floors[staircase.upper_floor].partitions[staircase.upper_partition]
            if not upper.contains_point(staircase.upper_point):
                problems.append(
                    f"staircase {staircase.staircase_id} upper point is outside "
                    f"partition {staircase.upper_partition}"
                )
        return problems

    def __repr__(self) -> str:
        return (
            f"Building({self.building_id!r}, floors={len(self.floors)}, "
            f"partitions={self.partition_count}, doors={self.door_count})"
        )


def _edge_key(edge: Segment) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """Order-independent rounded key identifying a shared partition edge."""
    a = (round(edge.start.x, 4), round(edge.start.y, 4))
    b = (round(edge.end.x, 4), round(edge.end.y, 4))
    return (a, b) if a <= b else (b, a)


def _cut_door_gaps(edge: Segment, doors: Iterable[Door], tolerance: float = 0.35) -> List[Segment]:
    """Split *edge* removing a gap around every door lying on it."""
    length = edge.length
    if length <= 1e-9:
        return []
    gaps: List[Tuple[float, float]] = []
    for door in doors:
        if edge.distance_to_point(door.position) > tolerance:
            continue
        closest = edge.closest_point_to(door.position)
        offset = closest.distance_to(edge.start)
        half = max(door.width, 0.8) / 2.0
        gaps.append((max(0.0, offset - half), min(length, offset + half)))
    if not gaps:
        return [edge]
    gaps.sort()
    merged: List[Tuple[float, float]] = []
    for start, end in gaps:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    pieces: List[Segment] = []
    cursor = 0.0
    for start, end in merged:
        if start - cursor > 0.05:
            pieces.append(Segment(edge.point_at(cursor / length), edge.point_at(start / length)))
        cursor = max(cursor, end)
    if length - cursor > 0.05:
        pieces.append(Segment(edge.point_at(cursor / length), edge.point_at(1.0)))
    return pieces


def _overlap_area_estimate(a: Polygon, b: Polygon, samples: int = 64) -> float:
    """Monte-Carlo estimate of the overlap area of two polygons.

    Used only by :meth:`Building.validate` to decide whether an overlap is a
    genuine modelling error or just shared boundary.
    """
    rng = random.Random(7)
    smaller = a if a.area <= b.area else b
    larger = b if smaller is a else a
    hits = 0
    for _ in range(samples):
        point = smaller.random_point(rng)
        if larger.contains_point(point, include_boundary=False):
            hits += 1
    return smaller.area * hits / samples


__all__ = [
    "OUTDOOR",
    "PartitionKind",
    "SPEED_FACTORS",
    "Partition",
    "Door",
    "Staircase",
    "Obstacle",
    "Wall",
    "Floor",
    "Building",
]
