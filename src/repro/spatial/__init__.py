"""The shared, cached spatial layer (routing, line of sight, nearest neighbour).

Public surface:

* :class:`~repro.spatial.service.SpatialService` — per-building cached
  spatial primitives consumed by the mobility, baseline, RSSI, positioning
  and analysis layers;
* :class:`~repro.core.config.SpatialConfig` — the cache knobs (re-exported
  here for convenience);
* :class:`~repro.spatial.cache.CacheStats` / hit-miss helpers.
"""

from repro.core.config import SpatialConfig
from repro.spatial.cache import CacheStats, LRUCache, diff_stats, merge_stats
from repro.spatial.service import SpatialService

__all__ = [
    "CacheStats",
    "LRUCache",
    "SpatialConfig",
    "SpatialService",
    "diff_stats",
    "merge_stats",
]
