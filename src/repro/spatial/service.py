"""The shared, cached spatial layer of the generator.

Every layer of the generation chain (moving pattern -> trajectory -> RSSI ->
positioning -> analysis) leans on the same spatial primitives: door-to-door
shortest routes, line-of-sight analysis, nearest-door / nearest-device
lookups and point location.  Before this module each layer called raw
geometry independently — the engine re-ran a full Dijkstra per re-route, the
RSSI noise model re-scanned every wall per (device, point) pair, and the
analysis layer brute-forced ``min()`` over all doors.  The per-building
:class:`SpatialService` centralises those primitives behind caches, in the
spirit of the precomputed indoor-routing schemata of Yang et al. (EDBT 2010)
that :mod:`repro.building.distance` follows and of MWGen's precomputed
indoor graphs.

Three kinds of acceleration, none of which may change results:

* **Routing** — the door-to-door graph is built once (memoized
  :class:`~repro.building.distance.RoutePlanner`); shortest routes are
  answered by combining memoized single-source Dijkstra tables per
  door/staircase node instead of re-running a whole-graph search with
  temporary endpoint nodes, plus an LRU of full routes keyed by
  (partition, quantized point, partition, quantized point, metric, speed).
* **Line of sight** — per-floor grid buckets
  (:class:`~repro.geometry.spatial_index.GridIndex`) prune the walls and
  obstacles tested per sight line (exact: any crossed wall's bounding box
  intersects the sight line's), plus an LRU of full sightline reports for
  repeated queries (stationary objects, fingerprint surveys).
* **Nearest neighbour** — packed R-trees over doors, walls and deployed
  devices answer nearest-door / nearest-wall / in-range-device queries with
  exact distance refinement instead of O(n) scans.

**Determinism contract.**  Every cache stores the exact arguments alongside
its value and verifies them on lookup (:mod:`repro.spatial.cache`), and the
cached and uncached paths run the *same* deterministic algorithms — the
caches only skip recomputation of pure functions.  Output is therefore
record-identical with caching on or off, serial or parallel.  Cross-process
safety mirrors ``Floor.__getstate__``: pickling a service ships only the
building, devices and configuration; every cache, index and graph is rebuilt
lazily inside the receiving worker.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.building.distance import (
    DEFAULT_WALKING_SPEED,
    Route,
    RoutePlanner,
    RouteWaypoint,
)
from repro.building.model import Building, Door, Floor
from repro.core.config import SpatialConfig
from repro.core.errors import RoutingError
from repro.core.types import FloorId, IndoorLocation
from repro.geometry.line_of_sight import (
    SightlineReport,
    count_obstacle_crossings,
    count_wall_crossings,
)
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.segment import Segment
from repro.geometry.spatial_index import GridIndex, RTreeIndex
from repro.spatial.cache import CacheStats, LRUCache


def _segment_box(segment: Segment) -> BoundingBox:
    """Bounding box of a wall segment (degenerate boxes are fine)."""
    return BoundingBox(
        min(segment.start.x, segment.end.x),
        min(segment.start.y, segment.end.y),
        max(segment.start.x, segment.end.x),
        max(segment.start.y, segment.end.y),
    )


def _point_box(point: Point) -> BoundingBox:
    return BoundingBox(point.x, point.y, point.x, point.y)


class SpatialService:
    """Per-building cached spatial primitives shared by every layer.

    Args:
        building: the host indoor environment served.
        devices: optional deployed positioning devices to index (can also be
            attached later with :meth:`attach_devices`).
        config: cache knobs; defaults to an enabled service with the
            standard cache sizes.
        planner: reuse an existing route planner instead of building one
            lazily (its graph must describe *building*).
        walking_speed: planner-level walking speed used when a route query
            does not supply an object-specific speed.
    """

    def __init__(
        self,
        building: Building,
        devices: Optional[Sequence] = None,
        config: Optional[SpatialConfig] = None,
        planner: Optional[RoutePlanner] = None,
        walking_speed: float = DEFAULT_WALKING_SPEED,
    ) -> None:
        self.building = building
        self.config = config or SpatialConfig()
        self.walking_speed = planner.walking_speed if planner is not None else walking_speed
        self._devices: List = list(devices) if devices else []
        #: Bumped whenever the attached device set changes; consumers (e.g.
        #: the RSSI generator) compare it instead of re-hashing device ids.
        self.device_epoch = 0
        self._planner: Optional[RoutePlanner] = planner
        self._reset_derived_state()
        self._built_version = building.version

    # ------------------------------------------------------------------ #
    # Lifecycle: lazy construction, invalidation, pickling
    # ------------------------------------------------------------------ #
    def _reset_derived_state(self) -> None:
        """(Re)initialise every cache and index to its empty lazy state."""
        config = self.config
        self._stats: Dict[str, CacheStats] = {
            name: CacheStats() for name in ("route", "los", "locate", "table")
        }
        self._route_cache = LRUCache(config.route_cache_size, self._stats["route"])
        self._los_cache = LRUCache(config.los_cache_size, self._stats["los"])
        self._locate_cache = LRUCache(config.locate_cache_size, self._stats["locate"])
        #: (node, metric) -> (distance dict, path dict) single-source tables.
        self._node_tables: Dict[Tuple, Tuple[Dict, Dict]] = {}
        #: node -> partition id annotation (pure function of the building).
        self._node_partitions: Dict[Tuple, str] = {}
        self._wall_indices: Dict[FloorId, GridIndex[Segment]] = {}
        self._wall_rtrees: Dict[FloorId, RTreeIndex[Segment]] = {}
        self._obstacle_indices: Dict[FloorId, GridIndex[Polygon]] = {}
        self._door_indices: Dict[FloorId, RTreeIndex[Door]] = {}
        self._device_indices: Dict[FloorId, RTreeIndex[Tuple[int, object]]] = {}
        self._indices_epoch = -1
        self._floor_bounds: Dict[FloorId, BoundingBox] = {}
        self._max_device_range: Dict[FloorId, float] = {}
        #: (floor, region corners) -> frozenset of partition ids whose bbox
        #: overlaps the region; used by the live monitors' record pruning.
        self._region_partitions: Dict[Tuple, frozenset] = {}

    def invalidate(self) -> None:
        """Drop every derived structure; they rebuild lazily on next use.

        Counters survive: they describe the whole run, not one epoch.
        """
        stats = self._stats
        planner_stale = self.building.version != self._built_version
        self._reset_derived_state()
        self._stats = stats
        self._route_cache.stats = stats["route"]
        self._los_cache.stats = stats["los"]
        self._locate_cache.stats = stats["locate"]
        if planner_stale:
            self._planner = None
        self._built_version = self.building.version

    def _check_version(self) -> None:
        if self.building.version != self._built_version:
            self.invalidate()

    def __getstate__(self) -> dict:
        # Like Floor.__getstate__: graphs, indexes and caches are dropped on
        # pickle (cheap to rebuild, partly unpicklable) so a ShardContext can
        # cross process boundaries; workers rebuild them lazily.
        return {
            "building": self.building,
            "config": self.config,
            "walking_speed": self.walking_speed,
            "_devices": self._devices,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.device_epoch = 0
        self._planner = None
        self._reset_derived_state()
        self._built_version = self.building.version

    # ------------------------------------------------------------------ #
    # Cache bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Whether memoization is active (results are identical either way)."""
        return self.config.enabled

    def cache_stats(self) -> Dict[str, int]:
        """Flat hit/miss counters of every cache, e.g. ``{"route_hits": 10}``."""
        flat: Dict[str, int] = {}
        for name, stats in self._stats.items():
            flat[f"{name}_hits"] = stats.hits
            flat[f"{name}_misses"] = stats.misses
        return flat

    def record_metrics(self, registry) -> None:
        """Publish :meth:`cache_stats` into an :class:`~repro.obs.MetricsRegistry`.

        Gauges named ``spatial.cache.<counter>`` (point-in-time values, so a
        repeated publish overwrites rather than double-counts).
        """
        for name, value in sorted(self.cache_stats().items()):
            registry.gauge(f"spatial.cache.{name}").set(value)

    def reset_stats(self) -> None:
        for stats in self._stats.values():
            stats.reset()

    def _quantize(self, point: Point) -> Tuple[int, int]:
        quantum = self.config.quantum
        return (int(round(point.x / quantum)), int(round(point.y / quantum)))

    # ------------------------------------------------------------------ #
    # (a) Routing: memoized graph + Dijkstra tables + route LRU
    # ------------------------------------------------------------------ #
    @property
    def planner(self) -> RoutePlanner:
        """The door-to-door route planner (graph built once, memoized)."""
        self._check_version()
        if self._planner is None:
            self._planner = RoutePlanner(self.building, walking_speed=self.walking_speed)
        return self._planner

    def shortest_route(
        self,
        source_floor: FloorId,
        source_point: Point,
        target_floor: FloorId,
        target_point: Point,
        metric: str = "length",
        walking_speed: Optional[float] = None,
    ) -> Route:
        """Optimal route between two indoor points (cached).

        Same semantics and failure modes as
        :meth:`repro.building.distance.RoutePlanner.shortest_route`; see the
        module docstring for why the answers are identical with caching on
        or off.
        """
        if metric not in ("length", "time"):
            raise RoutingError(f"unknown routing metric {metric!r}")
        self._check_version()
        planner = self.planner
        speed = walking_speed or planner.walking_speed
        exact = (
            source_floor, source_point.x, source_point.y,
            target_floor, target_point.x, target_point.y,
            metric, speed,
        )
        if self.enabled:
            bucket = (
                source_floor, self._quantize(source_point),
                target_floor, self._quantize(target_point),
                metric, speed,
            )
            route, hit = self._route_cache.get(bucket, exact)
            if hit:
                return route
        route = self._compute_route(
            source_floor, source_point, target_floor, target_point, metric, speed
        )
        if self.enabled:
            self._route_cache.put(bucket, exact, route)
        return route

    def shortest_distance(
        self,
        source_floor: FloorId,
        source_point: Point,
        target_floor: FloorId,
        target_point: Point,
    ) -> float:
        """Minimum indoor walking distance between two points (cached)."""
        return self.shortest_route(
            source_floor, source_point, target_floor, target_point, metric="length"
        ).length

    def _compute_route(
        self,
        source_floor: FloorId,
        source_point: Point,
        target_floor: FloorId,
        target_point: Point,
        metric: str,
        speed: float,
    ) -> Route:
        planner = self.planner
        if type(planner).shortest_route is not RoutePlanner.shortest_route:
            # A RoutePlanner subclass overrides the query itself (custom
            # penalties, forbidden doors, ...): defer to it wholesale so the
            # service only memoizes, never re-implements, its behaviour.
            return planner.shortest_route(
                source_floor, source_point, target_floor, target_point,
                metric=metric, walking_speed=speed,
            )
        source_partition = self.building.floor(source_floor).partition_at(source_point)
        target_partition = self.building.floor(target_floor).partition_at(target_point)
        if source_partition is None:
            raise RoutingError(
                f"source point {source_point} is not inside any partition of floor {source_floor}"
            )
        if target_partition is None:
            raise RoutingError(
                f"target point {target_point} is not inside any partition of floor {target_floor}"
            )
        if (source_floor, source_partition.partition_id) == (
            target_floor,
            target_partition.partition_id,
        ):
            length = source_point.distance_to(target_point)
            time = length / (speed * source_partition.speed_factor)
            waypoints = [
                RouteWaypoint(source_floor, source_partition.partition_id, source_point),
                RouteWaypoint(target_floor, target_partition.partition_id, target_point),
            ]
            return Route(waypoints=waypoints, length=length, travel_time=time)

        exit_nodes = planner.exit_nodes_of(source_floor, source_partition.partition_id)
        entry_nodes = planner.entry_nodes_of(target_floor, target_partition.partition_id)
        if not exit_nodes:
            raise RoutingError(
                f"partition {source_partition.partition_id} has no traversable door"
            )
        if not entry_nodes:
            raise RoutingError(
                f"partition {target_partition.partition_id} has no traversable door"
            )
        # The augmented-graph shortest path (temporary endpoint nodes wired
        # to the partition's doors) decomposes exactly into
        #   min over (exit u, entry v) of  w(s,u) + dist(u,v) + w(v,t)
        # because the temporary source has only outgoing edges to exits and
        # the temporary target only incoming edges from entries.  dist(u, .)
        # is a pure function of the static graph, so its single-source
        # Dijkstra table can be memoized per node without changing the
        # optimum; w(s,u) and w(v,t) are recomputed exactly per query.
        source_factor = speed * source_partition.speed_factor
        target_factor = speed * target_partition.speed_factor
        best_cost = math.inf
        best_pair: Optional[Tuple] = None
        for exit_node in exit_nodes:
            exit_point = planner.node_location(exit_node)[1]
            leg = source_point.distance_to(exit_point)
            exit_cost = leg if metric == "length" else leg / source_factor
            if exit_cost >= best_cost:
                continue
            distances, _ = self._node_table(exit_node, metric)
            for entry_node in entry_nodes:
                interior = distances.get(entry_node)
                if interior is None:
                    continue
                entry_point = planner.node_location(entry_node)[1]
                leg = entry_point.distance_to(target_point)
                entry_cost = leg if metric == "length" else leg / target_factor
                total = exit_cost + interior + entry_cost
                if total < best_cost:
                    best_cost = total
                    best_pair = (exit_node, entry_node)
        if best_pair is None:
            raise RoutingError(
                f"no walkable path from {source_partition.partition_id} "
                f"(floor {source_floor}) to {target_partition.partition_id} "
                f"(floor {target_floor})"
            )
        _, paths = self._node_table(best_pair[0], metric)
        interior_path = paths[best_pair[1]]
        return self._assemble_route(
            interior_path,
            source_floor, source_point, source_partition,
            target_floor, target_point, target_partition,
            speed,
        )

    def _node_table(self, node: Tuple, metric: str) -> Tuple[Dict, Dict]:
        """Memoized single-source Dijkstra (distances, paths) from *node*."""
        key = (node, metric)
        if self.enabled:
            table = self._node_tables.get(key)
            if table is not None:
                self._stats["table"].hits += 1
                return table
            self._stats["table"].misses += 1
        distances, paths = nx.single_source_dijkstra(
            self.planner.graph, node, weight=metric
        )
        table = (distances, paths)
        if self.enabled:
            self._node_tables[key] = table
        return table

    def _node_partition(self, node: Tuple) -> str:
        """Memoized partition annotation for a door/staircase graph node."""
        if not self.enabled:
            return self.planner.node_partition(node)
        partition_id = self._node_partitions.get(node)
        if partition_id is None:
            partition_id = self.planner.node_partition(node)
            self._node_partitions[node] = partition_id
        return partition_id

    def _assemble_route(
        self,
        interior_path: Sequence[Tuple],
        source_floor: FloorId,
        source_point: Point,
        source_partition,
        target_floor: FloorId,
        target_point: Point,
        target_partition,
        speed: float,
    ) -> Route:
        """Build the Route along ``source -> interior nodes -> target``.

        Mirrors ``RoutePlanner._assemble_route``: interior legs take their
        length/time from the graph edges; the two endpoint legs are computed
        with the query's speed and the endpoint partitions' speed factors
        (exactly the weights the planner puts on its temporary edges).
        """
        planner = self.planner
        waypoints: List[RouteWaypoint] = [
            RouteWaypoint(source_floor, source_partition.partition_id, source_point)
        ]
        doors: List[str] = []
        staircases: List[str] = []
        total_length = 0.0
        total_time = 0.0

        def append_node(node: Tuple) -> Point:
            floor_id, point = planner.node_location(node)
            partition_id = self._node_partition(node)
            if node[0] == "door":
                doors.append(node[1])
            elif node[0] == "stair" and node[1] not in staircases:
                staircases.append(node[1])
            waypoints.append(RouteWaypoint(floor_id, partition_id, point, node[1]))
            return point

        first_point = append_node(interior_path[0])
        leg_length = source_point.distance_to(first_point)
        total_length += leg_length
        total_time += leg_length / (speed * source_partition.speed_factor)

        previous = interior_path[0]
        for node in interior_path[1:]:
            append_node(node)
            edge = planner.graph.get_edge_data(previous, node)
            total_length += edge["length"]
            total_time += edge["time"]
            previous = node

        last_point = planner.node_location(previous)[1]
        leg_length = last_point.distance_to(target_point)
        total_length += leg_length
        total_time += leg_length / (speed * target_partition.speed_factor)
        waypoints.append(
            RouteWaypoint(target_floor, target_partition.partition_id, target_point)
        )
        return Route(
            waypoints=waypoints,
            length=total_length,
            travel_time=total_time,
            doors=doors,
            staircases=staircases,
        )

    # ------------------------------------------------------------------ #
    # (b) Line of sight: grid-bucket pruning + report LRU
    # ------------------------------------------------------------------ #
    def sightline(self, floor_id: FloorId, origin: Point, target: Point) -> SightlineReport:
        """Line-of-sight report between two same-floor points (cached).

        Identical to
        :func:`repro.geometry.line_of_sight.analyze_sightline` over the
        floor's walls and obstacles: the grid buckets only prune candidates
        that cannot intersect the sight line.
        """
        self._check_version()
        exact = (floor_id, origin.x, origin.y, target.x, target.y)
        if self.enabled:
            bucket = (floor_id, self._quantize(origin), self._quantize(target))
            report, hit = self._los_cache.get(bucket, exact)
            if hit:
                return report
        report = self._compute_sightline(floor_id, origin, target)
        if self.enabled:
            self._los_cache.put(bucket, exact, report)
        return report

    def _compute_sightline(
        self, floor_id: FloorId, origin: Point, target: Point
    ) -> SightlineReport:
        sightline = Segment(origin, target)
        floor = self.building.floor(floor_id)
        if self.enabled:
            box = _segment_box(sightline)
            walls = self._wall_index(floor_id).query_box(box)
            obstacles = self._obstacle_index(floor_id).query_box(box)
        else:
            walls = floor.wall_segments()
            obstacles = floor.obstacle_polygons()
        return SightlineReport(
            distance=sightline.length,
            wall_crossings=count_wall_crossings(sightline, walls),
            obstacle_crossings=count_obstacle_crossings(sightline, obstacles),
        )

    def _wall_index(self, floor_id: FloorId) -> GridIndex[Segment]:
        index = self._wall_indices.get(floor_id)
        if index is None:
            segments = self.building.floor(floor_id).wall_segments()
            index = GridIndex(segments, _segment_box)
            self._wall_indices[floor_id] = index
        return index

    def _obstacle_index(self, floor_id: FloorId) -> GridIndex[Polygon]:
        index = self._obstacle_indices.get(floor_id)
        if index is None:
            polygons = self.building.floor(floor_id).obstacle_polygons()
            index = GridIndex(polygons, lambda polygon: polygon.bounding_box)
            self._obstacle_indices[floor_id] = index
        return index

    # ------------------------------------------------------------------ #
    # (c) Nearest-neighbour indices: doors, walls, devices
    # ------------------------------------------------------------------ #
    def nearest_door(self, floor_id: FloorId, point: Point) -> Optional[Door]:
        """The door on *floor_id* closest to *point* (``None`` if doorless)."""
        self._check_version()
        found = self._door_index(floor_id).nearest(
            point, k=1, distance_of=lambda door, query: door.position.distance_to(query)
        )
        return found[0] if found else None

    def nearest_door_distance(self, floor_id: FloorId, point: Point) -> float:
        """Distance to the nearest door (``inf`` on a doorless floor).

        Exactly ``min(door.position.distance_to(point))`` over the floor's
        doors, found through the R-tree instead of an O(doors) scan.
        """
        door = self.nearest_door(floor_id, point)
        if door is None:
            return math.inf
        return door.position.distance_to(point)

    def nearest_wall_distance(self, floor_id: FloorId, point: Point) -> float:
        """Distance to the nearest wall segment (``inf`` on a wall-less floor).

        Exactly ``min(wall.distance_to_point(point))`` over the floor's
        walls; the R-tree prunes with bounding boxes and refines with the
        true segment distance.
        """
        self._check_version()
        index = self._wall_rtree(floor_id)
        found = index.nearest(
            point, k=1,
            distance_of=lambda segment, query: segment.distance_to_point(query),
        )
        if not found:
            return math.inf
        return found[0].distance_to_point(point)

    def candidate_devices(
        self, floor_id: FloorId, point: Point, radius: float
    ) -> List:
        """Deployed devices on *floor_id* within *radius* of *point*.

        Returns a superset-free list in **deployment order** — the order the
        devices were attached in — because the RSSI generator consumes random
        numbers per candidate: preserving the iteration order of the
        original full scan is what keeps the noise stream, and therefore the
        output, identical.
        """
        self._check_version()
        self._refresh_device_indices()
        if not self.enabled:
            return [
                device for device in self._devices
                if device.floor_id == floor_id
                and device.position.distance_to(point) <= radius
            ]
        index = self._device_indices.get(floor_id)
        if index is None:
            return []
        box = BoundingBox(point.x - radius, point.y - radius,
                          point.x + radius, point.y + radius)
        hits = [
            (order, device)
            for order, device in index.query_box(box)
            if device.position.distance_to(point) <= radius
        ]
        hits.sort(key=lambda pair: pair[0])
        return [device for _, device in hits]

    def max_device_range(self, floor_id: FloorId) -> float:
        """Largest detection range among the devices on *floor_id* (0 if none)."""
        self._check_version()
        self._refresh_device_indices()
        return self._max_device_range.get(floor_id, 0.0)

    def attach_devices(self, devices: Sequence) -> None:
        """Register the deployed devices to index (replaces any previous set)."""
        self._devices = list(devices)
        self.device_epoch += 1

    @property
    def devices(self) -> List:
        return list(self._devices)

    def _refresh_device_indices(self) -> None:
        if self._indices_epoch == self.device_epoch:
            return
        self._indices_epoch = self.device_epoch
        self._device_indices = {}
        self._max_device_range = {}
        by_floor: Dict[FloorId, List[Tuple[int, object]]] = {}
        for order, device in enumerate(self._devices):
            by_floor.setdefault(device.floor_id, []).append((order, device))
            current = self._max_device_range.get(device.floor_id, 0.0)
            self._max_device_range[device.floor_id] = max(current, device.detection_range)
        for floor_id, entries in by_floor.items():
            self._device_indices[floor_id] = RTreeIndex(
                entries, lambda entry: _point_box(entry[1].position)
            )

    def _wall_rtree(self, floor_id: FloorId) -> RTreeIndex[Segment]:
        # The wall *grid* serves box queries (LOS pruning); nearest-distance
        # queries want best-first search, which the R-tree provides.
        tree = self._wall_rtrees.get(floor_id)
        if tree is None:
            segments = self.building.floor(floor_id).wall_segments()
            tree = RTreeIndex(segments, _segment_box)
            self._wall_rtrees[floor_id] = tree
        return tree

    def _door_index(self, floor_id: FloorId) -> RTreeIndex[Door]:
        index = self._door_indices.get(floor_id)
        if index is None:
            doors = list(self.building.floor(floor_id).doors.values())
            index = RTreeIndex(doors, lambda door: _point_box(door.position))
            self._door_indices[floor_id] = index
        return index

    # ------------------------------------------------------------------ #
    # Point location and floor extents
    # ------------------------------------------------------------------ #
    def locate(self, floor_id: FloorId, point: Point) -> IndoorLocation:
        """Annotate a coordinate with its partition (cached).

        Identical to :meth:`repro.building.model.Building.locate`; records
        of a stationary object share one (frozen) location instance.
        """
        self._check_version()
        exact = (floor_id, point.x, point.y)
        if self.enabled:
            bucket = (floor_id, self._quantize(point))
            location, hit = self._locate_cache.get(bucket, exact)
            if hit:
                return location
        location = self.building.locate(floor_id, point)
        if self.enabled:
            self._locate_cache.put(bucket, exact, location)
        return location

    def floor_bounds(self, floor_id: FloorId) -> BoundingBox:
        """The floor's bounding box (memoized; used e.g. to clamp estimates)."""
        self._check_version()
        box = self._floor_bounds.get(floor_id)
        if box is None:
            box = self.building.floor(floor_id).bounding_box
            if self.enabled:
                self._floor_bounds[floor_id] = box
        return box

    def floor(self, floor_id: FloorId) -> Floor:
        """Convenience passthrough to :meth:`Building.floor`."""
        return self.building.floor(floor_id)

    # ------------------------------------------------------------------ #
    # Region pruning (used by the live monitor engine)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _region_box(region) -> BoundingBox:
        """Normalise anything exposing min/max corners into a bounding box."""
        return BoundingBox(
            float(region.min_x), float(region.min_y),
            float(region.max_x), float(region.max_y),
        )

    def region_overlaps_floor(self, floor_id: FloorId, region) -> bool:
        """Whether an axis-aligned *region* intersects the floor's bounds.

        *region* is anything exposing ``min_x``/``min_y``/``max_x``/``max_y``
        (a :class:`BoundingBox` or a query-plan ``Region``).  A monitor whose
        region misses its floor entirely is statically empty and skips every
        record.
        """
        return self._region_box(region).intersects(self.floor_bounds(floor_id))

    def partitions_overlapping(self, floor_id: FloorId, region) -> frozenset:
        """Partition ids whose bounding box intersects *region* (memoized).

        A conservative superset of the partitions whose geometry can contain
        a point inside the region: any record annotated with a partition
        outside this set is provably outside the region, so region-targeted
        monitors can discard it on the partition id alone.
        """
        self._check_version()
        box = self._region_box(region)
        key = (floor_id, box.min_x, box.min_y, box.max_x, box.max_y)
        cached = self._region_partitions.get(key)
        if cached is not None:
            return cached
        result = frozenset(
            partition.partition_id
            for partition in self.building.floor(floor_id).partitions.values()
            if partition.polygon.bounding_box.intersects(box)
        )
        if self.enabled:
            self._region_partitions[key] = result
        return result

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"SpatialService({self.building.building_id!r}, caches {state}, "
            f"devices={len(self._devices)})"
        )


__all__ = ["SpatialService"]
