"""Cache primitives of the shared spatial service.

The :class:`~repro.spatial.service.SpatialService` memoizes pure geometric
computations (routes, sight lines, point location).  Two properties make the
caches safe for the generator's determinism contract:

* **Exact verification** — cache keys are *quantized* coordinates (bucket
  resolution controlled by ``SpatialConfig.quantum``), but every entry also
  stores the exact arguments it was computed for.  A lookup only hits when
  the exact arguments match; two distinct queries that land in the same
  bucket evict each other instead of answering for one another.  Caching can
  therefore change cost, never results.
* **Bounded size** — entries are evicted least-recently-used once ``maxsize``
  is reached, so a long generation run keeps O(cache) memory.

Hit/miss counters are kept per cache and surfaced through
``SpatialService.cache_stats()`` up to the CLI progress output.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class LRUCache:
    """A bounded LRU cache with exact-argument verification.

    Keys are coarse *buckets*; every entry stores the *exact* arguments it
    answers for.  ``get`` only returns a value when the exact arguments
    match, which is what keeps quantized keys from ever corrupting results
    (see the module docstring).
    """

    __slots__ = ("maxsize", "stats", "_entries")

    def __init__(self, maxsize: int, stats: Optional[CacheStats] = None) -> None:
        self.maxsize = int(maxsize)
        self.stats = stats if stats is not None else CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[Hashable, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, bucket: Hashable, exact: Hashable) -> Tuple[Any, bool]:
        """Return ``(value, hit)`` for *bucket*, verifying the *exact* args."""
        entry = self._entries.get(bucket)
        if entry is not None and entry[0] == exact:
            self._entries.move_to_end(bucket)
            self.stats.hits += 1
            return entry[1], True
        self.stats.misses += 1
        return None, False

    def put(self, bucket: Hashable, exact: Hashable, value: Any) -> None:
        """Store *value* for *bucket*, evicting the least recently used entry."""
        if self.maxsize <= 0:
            return
        self._entries[bucket] = (exact, value)
        self._entries.move_to_end(bucket)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (the counters survive: they describe the run)."""
        self._entries.clear()


def merge_stats(into: Dict[str, int], extra: Dict[str, int]) -> Dict[str, int]:
    """Accumulate one flat counter dict into another (in place and returned)."""
    for key, value in extra.items():
        into[key] = into.get(key, 0) + int(value)
    return into


def diff_stats(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """The counter delta ``after - before`` (used for per-shard attribution)."""
    return {key: value - before.get(key, 0) for key, value in after.items()}


__all__ = ["CacheStats", "LRUCache", "merge_stats", "diff_stats"]
