"""RFID readers.

Very short detection range and inherently proximity-oriented: an object is
either detected (collocated with the reader) or not.  The paper's demo pairs
RFID with the proximity positioning method.
"""

from __future__ import annotations

from repro.core.types import DeviceType, IndoorLocation
from repro.devices.base import PositioningDevice

DEFAULT_RFID_RANGE = 3.0
DEFAULT_RFID_INTERVAL = 0.5
DEFAULT_RFID_TX_POWER = -60.0
DEFAULT_RFID_PATH_LOSS_EXPONENT = 2.0


class RFIDReader(PositioningDevice):
    """An RFID reader used for proximity-based positioning."""

    def __init__(
        self,
        device_id: str,
        location: IndoorLocation,
        detection_range: float = DEFAULT_RFID_RANGE,
        detection_interval: float = DEFAULT_RFID_INTERVAL,
        tx_power_dbm: float = DEFAULT_RFID_TX_POWER,
        path_loss_exponent: float = DEFAULT_RFID_PATH_LOSS_EXPONENT,
    ) -> None:
        super().__init__(
            device_id=device_id,
            device_type=DeviceType.RFID,
            location=location,
            detection_range=detection_range,
            detection_interval=detection_interval,
            tx_power_dbm=tx_power_dbm,
            path_loss_exponent=path_loss_exponent,
        )


__all__ = [
    "RFIDReader",
    "DEFAULT_RFID_RANGE",
    "DEFAULT_RFID_INTERVAL",
    "DEFAULT_RFID_TX_POWER",
    "DEFAULT_RFID_PATH_LOSS_EXPONENT",
]
