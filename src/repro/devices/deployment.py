"""Deployment models for positioning devices.

Section 3.2 describes two deployment models:

* **coverage model** — "devices should be close to the wall to get power
  supply and they should be separate from each other to have maximum signal
  coverage" (used for access points; the ground floor of Figure 3);
* **check-point model** — "devices are deployed at entrances to rooms and/or
  hotspots in large rooms" (the first floor of Figure 3).

Both models produce a list of candidate mounting locations on a floor; the
:class:`~repro.devices.controller.PositioningDeviceController` turns those
locations into concrete device instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.building.model import Building, Floor, OUTDOOR
from repro.core.errors import DeploymentError
from repro.core.types import FloorId
from repro.geometry.point import Point


@dataclass(frozen=True)
class MountingSite:
    """A candidate device location produced by a deployment model."""

    floor_id: FloorId
    point: Point
    partition_id: Optional[str] = None
    reason: str = ""


class DeploymentModel:
    """Base class: a strategy that proposes device mounting sites on a floor."""

    name = "abstract"

    def propose(self, building: Building, floor_id: FloorId, count: int,
                rng: Optional[random.Random] = None) -> List[MountingSite]:
        """Return *count* mounting sites on floor *floor_id*."""
        raise NotImplementedError


class CoverageDeployment(DeploymentModel):
    """Wall-adjacent, maximally separated placements (access-point style).

    Candidate sites are sampled along partition walls and pulled slightly
    towards the partition interior; the final selection greedily maximises the
    minimum pairwise separation (farthest-point sampling), which yields the
    "separate from each other to have maximum signal coverage" behaviour.
    """

    name = "coverage"

    def __init__(self, wall_offset: float = 0.6, sample_spacing: float = 2.0) -> None:
        if wall_offset < 0:
            raise DeploymentError("wall_offset must be non-negative")
        if sample_spacing <= 0:
            raise DeploymentError("sample_spacing must be positive")
        self.wall_offset = wall_offset
        self.sample_spacing = sample_spacing

    def propose(self, building: Building, floor_id: FloorId, count: int,
                rng: Optional[random.Random] = None) -> List[MountingSite]:
        if count <= 0:
            return []
        floor = building.floor(floor_id)
        candidates = self._wall_candidates(floor)
        if not candidates:
            raise DeploymentError(f"floor {floor_id} offers no wall-adjacent sites")
        if len(candidates) <= count:
            return candidates
        return _farthest_point_selection(candidates, count)

    def _wall_candidates(self, floor: Floor) -> List[MountingSite]:
        sites: List[MountingSite] = []
        for partition in floor.partitions.values():
            centroid = partition.centroid
            for edge in partition.polygon.edges():
                samples = max(1, int(edge.length // self.sample_spacing))
                for index in range(samples):
                    fraction = (index + 0.5) / samples
                    on_wall = edge.point_at(fraction)
                    inward = (centroid - on_wall).normalized()
                    point = on_wall + inward * self.wall_offset
                    if not partition.contains_point(point):
                        point = on_wall.lerp(centroid, 0.1)
                        if not partition.contains_point(point):
                            continue
                    sites.append(
                        MountingSite(
                            floor_id=floor.floor_id,
                            point=point,
                            partition_id=partition.partition_id,
                            reason="wall-adjacent",
                        )
                    )
        return sites


class CheckPointDeployment(DeploymentModel):
    """Placements at room entrances and hotspots in large rooms.

    Sites are proposed at door positions first (entrances to rooms), ordered
    by how "busy" the door is expected to be (connectivity of its partitions),
    and then at the centroids of the largest rooms when more devices are
    requested than there are doors.
    """

    name = "check-point"

    def __init__(self, door_inset: float = 0.5, hotspot_min_area: float = 30.0) -> None:
        self.door_inset = door_inset
        self.hotspot_min_area = hotspot_min_area

    def propose(self, building: Building, floor_id: FloorId, count: int,
                rng: Optional[random.Random] = None) -> List[MountingSite]:
        if count <= 0:
            return []
        floor = building.floor(floor_id)
        sites = self._door_sites(floor)
        if len(sites) < count:
            sites.extend(self._hotspot_sites(floor, count - len(sites)))
        if not sites:
            raise DeploymentError(f"floor {floor_id} offers no check-point sites")
        if len(sites) <= count:
            return sites[:count]
        # Prefer a spread-out subset among the door sites.
        return _farthest_point_selection(sites, count)

    def _door_sites(self, floor: Floor) -> List[MountingSite]:
        def door_score(door) -> float:
            score = 0.0
            for partition_id in door.partitions:
                if partition_id == OUTDOOR:
                    score += 50.0  # entrances are prime check-points
                    continue
                partition = floor.partitions.get(partition_id)
                if partition is not None:
                    score += partition.area
            return score

        sites: List[MountingSite] = []
        for door in sorted(floor.doors.values(), key=door_score, reverse=True):
            partition_id = next(
                (pid for pid in door.partitions if pid != OUTDOOR), None
            )
            point = door.position
            if partition_id is not None:
                partition = floor.partitions.get(partition_id)
                if partition is not None:
                    inward = (partition.centroid - door.position).normalized()
                    candidate = door.position + inward * self.door_inset
                    if partition.contains_point(candidate):
                        point = candidate
            sites.append(
                MountingSite(
                    floor_id=floor.floor_id,
                    point=point,
                    partition_id=partition_id,
                    reason="room entrance",
                )
            )
        return sites

    def _hotspot_sites(self, floor: Floor, count: int) -> List[MountingSite]:
        large_rooms = sorted(
            (p for p in floor.partitions.values() if p.area >= self.hotspot_min_area),
            key=lambda p: p.area,
            reverse=True,
        )
        sites = []
        for partition in large_rooms[:count]:
            sites.append(
                MountingSite(
                    floor_id=floor.floor_id,
                    point=partition.centroid,
                    partition_id=partition.partition_id,
                    reason="hotspot in large room",
                )
            )
        return sites


class ManualDeployment(DeploymentModel):
    """Explicit user-specified device locations."""

    name = "manual"

    def __init__(self, sites: Sequence[MountingSite]) -> None:
        if not sites:
            raise DeploymentError("manual deployment needs at least one site")
        self.sites = list(sites)

    def propose(self, building: Building, floor_id: FloorId, count: int,
                rng: Optional[random.Random] = None) -> List[MountingSite]:
        matching = [s for s in self.sites if s.floor_id == floor_id]
        if count and len(matching) < count:
            raise DeploymentError(
                f"manual deployment provides {len(matching)} sites on floor {floor_id}, "
                f"but {count} devices were requested"
            )
        return matching[:count] if count else matching


def deployment_model_by_name(name: str, **kwargs) -> DeploymentModel:
    """Factory used by the configuration loader."""
    normalized = name.lower().replace("_", "-")
    if normalized == "coverage":
        return CoverageDeployment(**kwargs)
    if normalized in ("check-point", "checkpoint"):
        return CheckPointDeployment(**kwargs)
    raise DeploymentError(
        f"unknown deployment model {name!r}; expected 'coverage' or 'check-point'"
    )


def _farthest_point_selection(sites: List[MountingSite], count: int) -> List[MountingSite]:
    """Greedy farthest-point subset of *count* sites (maximises min separation)."""
    if count >= len(sites):
        return list(sites)
    # Seed with the site farthest from the centroid of all candidates so the
    # selection starts at the periphery (near an outer wall).
    cx = sum(s.point.x for s in sites) / len(sites)
    cy = sum(s.point.y for s in sites) / len(sites)
    center = Point(cx, cy)
    chosen = [max(sites, key=lambda s: s.point.distance_to(center))]
    remaining = [s for s in sites if s is not chosen[0]]
    while len(chosen) < count and remaining:
        best = max(
            remaining,
            key=lambda s: min(s.point.distance_to(c.point) for c in chosen),
        )
        chosen.append(best)
        remaining.remove(best)
    return chosen


__all__ = [
    "MountingSite",
    "DeploymentModel",
    "CoverageDeployment",
    "CheckPointDeployment",
    "ManualDeployment",
    "deployment_model_by_name",
]
