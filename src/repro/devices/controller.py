"""Positioning Device Controller.

"The Positioning Device Controller allows a user to configure the devices'
number, deployed locations, type, and other type-dependent properties (e.g.,
the detection range of RFID readers)" (Section 2).  This controller turns a
deployment request (device type + count + deployment model, per floor) into
concrete device instances and produces the positioning-device data records.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.building.model import Building
from repro.core.errors import DeploymentError
from repro.core.types import DeviceRecord, DeviceType, FloorId, IndoorLocation
from repro.devices.base import PositioningDevice
from repro.devices.bluetooth import BluetoothBeacon
from repro.devices.deployment import DeploymentModel, MountingSite
from repro.devices.rfid import RFIDReader
from repro.devices.wifi import WiFiAccessPoint
from repro.geometry.point import Point

_DEVICE_CLASSES = {
    DeviceType.WIFI: WiFiAccessPoint,
    DeviceType.BLUETOOTH: BluetoothBeacon,
    DeviceType.RFID: RFIDReader,
}

_DEVICE_PREFIXES = {
    DeviceType.WIFI: "ap",
    DeviceType.BLUETOOTH: "ble",
    DeviceType.RFID: "rfid",
}


@dataclass
class DeviceDeploymentRequest:
    """One deployment instruction handled by the controller.

    Attributes:
        device_type: technology to deploy.
        count_per_floor: number of devices per floor.
        model: the deployment model proposing mounting sites.
        floor_ids: floors to cover (all floors when ``None``).
        overrides: optional keyword overrides forwarded to the device
            constructor (e.g. ``detection_range`` for RFID readers).
    """

    device_type: DeviceType
    count_per_floor: int
    model: DeploymentModel
    floor_ids: Optional[Sequence[FloorId]] = None
    overrides: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count_per_floor <= 0:
            raise DeploymentError("count_per_floor must be positive")


class PositioningDeviceController:
    """Creates, stores and exports the positioning devices of a building."""

    def __init__(self, building: Building, seed: Optional[int] = None) -> None:
        self.building = building
        self.devices: Dict[str, PositioningDevice] = {}
        self._rng = random.Random(seed)
        self._counters = {device_type: itertools.count(1) for device_type in DeviceType}

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def deploy(self, request: DeviceDeploymentRequest) -> List[PositioningDevice]:
        """Execute one deployment request; return the devices created."""
        floor_ids = list(request.floor_ids) if request.floor_ids is not None else self.building.floor_ids
        created: List[PositioningDevice] = []
        for floor_id in floor_ids:
            sites = request.model.propose(
                self.building, floor_id, request.count_per_floor, self._rng
            )
            if len(sites) < request.count_per_floor:
                raise DeploymentError(
                    f"deployment model {request.model.name!r} proposed only "
                    f"{len(sites)} sites on floor {floor_id}, "
                    f"{request.count_per_floor} requested"
                )
            for site in sites[: request.count_per_floor]:
                created.append(self._create_device(request, site))
        return created

    def add_device_at(
        self,
        device_type: DeviceType,
        floor_id: FloorId,
        x: float,
        y: float,
        **overrides,
    ) -> PositioningDevice:
        """Place a single device at an explicit coordinate."""
        site = MountingSite(floor_id=floor_id, point=Point(x, y))
        device_class = _DEVICE_CLASSES[device_type]
        prefix = _DEVICE_PREFIXES[device_type]
        device_id = f"{prefix}_{next(self._counters[device_type]):03d}"
        partition = self.building.floor(floor_id).partition_at(site.point)
        location = IndoorLocation(
            building_id=self.building.building_id,
            floor_id=floor_id,
            partition_id=partition.partition_id if partition is not None else None,
            x=x,
            y=y,
        )
        device = device_class(device_id=device_id, location=location, **overrides)
        self.devices[device_id] = device
        return device

    def _create_device(
        self, request: DeviceDeploymentRequest, site: MountingSite
    ) -> PositioningDevice:
        device_class = _DEVICE_CLASSES[request.device_type]
        prefix = _DEVICE_PREFIXES[request.device_type]
        device_id = f"{prefix}_{next(self._counters[request.device_type]):03d}"
        partition = self.building.floor(site.floor_id).partition_at(site.point)
        location = IndoorLocation(
            building_id=self.building.building_id,
            floor_id=site.floor_id,
            partition_id=(
                site.partition_id
                or (partition.partition_id if partition is not None else None)
            ),
            x=site.point.x,
            y=site.point.y,
        )
        device = device_class(device_id=device_id, location=location, **request.overrides)
        self.devices[device_id] = device
        return device

    def remove_device(self, device_id: str) -> None:
        """Remove a previously deployed device."""
        if device_id not in self.devices:
            raise DeploymentError(f"unknown device {device_id}")
        del self.devices[device_id]

    def clear(self) -> None:
        """Remove every deployed device."""
        self.devices.clear()

    # ------------------------------------------------------------------ #
    # Queries / export
    # ------------------------------------------------------------------ #
    def devices_of_type(self, device_type: DeviceType) -> List[PositioningDevice]:
        """All deployed devices of *device_type*."""
        return [d for d in self.devices.values() if d.device_type == device_type]

    def devices_on_floor(self, floor_id: FloorId) -> List[PositioningDevice]:
        """All deployed devices mounted on *floor_id*."""
        return [d for d in self.devices.values() if d.floor_id == floor_id]

    def device_records(self) -> List[DeviceRecord]:
        """Positioning-device data: one record per deployed device."""
        return [device.as_record() for device in self.devices.values()]

    def __len__(self) -> int:
        return len(self.devices)


__all__ = ["DeviceDeploymentRequest", "PositioningDeviceController"]
