"""Wi-Fi access points.

Wi-Fi is the workhorse technology for indoor positioning: long range, regular
beaconing, and all three positioning methods (trilateration, fingerprinting,
proximity) apply to it.
"""

from __future__ import annotations

from repro.core.types import DeviceType, IndoorLocation
from repro.devices.base import PositioningDevice

#: Defaults follow common 2.4 GHz office deployments: ~25 m useful range,
#: one scan per second, calibration RSSI of about -40 dBm at 1 metre.
DEFAULT_WIFI_RANGE = 25.0
DEFAULT_WIFI_INTERVAL = 1.0
DEFAULT_WIFI_TX_POWER = -40.0
DEFAULT_WIFI_PATH_LOSS_EXPONENT = 2.8


class WiFiAccessPoint(PositioningDevice):
    """A Wi-Fi access point used for RSSI-based positioning."""

    def __init__(
        self,
        device_id: str,
        location: IndoorLocation,
        detection_range: float = DEFAULT_WIFI_RANGE,
        detection_interval: float = DEFAULT_WIFI_INTERVAL,
        tx_power_dbm: float = DEFAULT_WIFI_TX_POWER,
        path_loss_exponent: float = DEFAULT_WIFI_PATH_LOSS_EXPONENT,
    ) -> None:
        super().__init__(
            device_id=device_id,
            device_type=DeviceType.WIFI,
            location=location,
            detection_range=detection_range,
            detection_interval=detection_interval,
            tx_power_dbm=tx_power_dbm,
            path_loss_exponent=path_loss_exponent,
        )


__all__ = [
    "WiFiAccessPoint",
    "DEFAULT_WIFI_RANGE",
    "DEFAULT_WIFI_INTERVAL",
    "DEFAULT_WIFI_TX_POWER",
    "DEFAULT_WIFI_PATH_LOSS_EXPONENT",
]
