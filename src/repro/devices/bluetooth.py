"""Bluetooth Low Energy beacons.

Shorter range than Wi-Fi and usually deployed more densely; used for
trilateration and proximity (the paper's demo pairs Bluetooth with
trilateration).
"""

from __future__ import annotations

from repro.core.types import DeviceType, IndoorLocation
from repro.devices.base import PositioningDevice

DEFAULT_BLE_RANGE = 12.0
DEFAULT_BLE_INTERVAL = 0.5
DEFAULT_BLE_TX_POWER = -55.0
DEFAULT_BLE_PATH_LOSS_EXPONENT = 2.2


class BluetoothBeacon(PositioningDevice):
    """A BLE beacon used for RSSI-based positioning."""

    def __init__(
        self,
        device_id: str,
        location: IndoorLocation,
        detection_range: float = DEFAULT_BLE_RANGE,
        detection_interval: float = DEFAULT_BLE_INTERVAL,
        tx_power_dbm: float = DEFAULT_BLE_TX_POWER,
        path_loss_exponent: float = DEFAULT_BLE_PATH_LOSS_EXPONENT,
    ) -> None:
        super().__init__(
            device_id=device_id,
            device_type=DeviceType.BLUETOOTH,
            location=location,
            detection_range=detection_range,
            detection_interval=detection_interval,
            tx_power_dbm=tx_power_dbm,
            path_loss_exponent=path_loss_exponent,
        )


__all__ = [
    "BluetoothBeacon",
    "DEFAULT_BLE_RANGE",
    "DEFAULT_BLE_INTERVAL",
    "DEFAULT_BLE_TX_POWER",
    "DEFAULT_BLE_PATH_LOSS_EXPONENT",
]
