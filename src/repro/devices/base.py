"""Base class for indoor positioning devices.

The Positioning Device Controller (Section 2) lets the user configure a
device's "number, deployed locations, type, and other type-dependent
properties (e.g., the detection range of RFID readers)".  The concrete
technologies — Wi-Fi access points, Bluetooth beacons and RFID readers — are
defined in sibling modules and differ only in their default radio parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import DeviceId, DeviceRecord, DeviceType, IndoorLocation
from repro.geometry.point import Point


@dataclass
class PositioningDevice:
    """A deployed positioning device.

    Attributes:
        device_id: unique identifier.
        device_type: the radio technology.
        location: where the device is mounted (always carries a coordinate).
        detection_range: maximum distance (metres) at which the device can
            observe an object.
        detection_interval: how often (seconds) the device performs a
            detection operation; used by the RSSI sampling and by proximity
            positioning to terminate detection periods.
        tx_power_dbm: nominal transmit power, used as the default calibration
            constant ``A`` of the path loss model when the user does not
            override it.
        path_loss_exponent: default path loss exponent ``n`` for this device.
    """

    device_id: DeviceId
    device_type: DeviceType
    location: IndoorLocation
    detection_range: float
    detection_interval: float
    tx_power_dbm: float = -40.0
    path_loss_exponent: float = 2.5

    def __post_init__(self) -> None:
        if not self.location.has_point:
            raise ValueError(f"device {self.device_id} must be placed at a coordinate")
        if self.detection_range <= 0:
            raise ValueError(f"device {self.device_id}: detection_range must be positive")
        if self.detection_interval <= 0:
            raise ValueError(f"device {self.device_id}: detection_interval must be positive")

    @property
    def floor_id(self) -> int:
        """Floor the device is mounted on."""
        return self.location.floor_id

    @property
    def position(self) -> Point:
        """Mounting position as a geometric point."""
        x, y = self.location.point()
        return Point(x, y)

    def in_range(self, floor_id: int, point: Point) -> bool:
        """Whether an object at *point* on *floor_id* is within detection range.

        Devices only observe objects on their own floor: floor slabs block the
        short-range signals Vita models (Wi-Fi/BLE/RFID).
        """
        if floor_id != self.floor_id:
            return False
        return self.position.distance_to(point) <= self.detection_range

    def distance_to(self, point: Point) -> float:
        """Planar transmission distance to *point* (same-floor)."""
        return self.position.distance_to(point)

    def as_record(self) -> DeviceRecord:
        """Serialise the device as positioning-device data."""
        return DeviceRecord(
            device_id=self.device_id,
            device_type=self.device_type,
            location=self.location,
            detection_range=self.detection_range,
            detection_interval=self.detection_interval,
        )


__all__ = ["PositioningDevice"]
