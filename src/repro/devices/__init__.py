"""Indoor positioning devices: technologies, deployment models, controller."""

from repro.devices.base import PositioningDevice
from repro.devices.wifi import WiFiAccessPoint
from repro.devices.bluetooth import BluetoothBeacon
from repro.devices.rfid import RFIDReader
from repro.devices.deployment import (
    CheckPointDeployment,
    CoverageDeployment,
    DeploymentModel,
    ManualDeployment,
    MountingSite,
    deployment_model_by_name,
)
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController

__all__ = [
    "PositioningDevice",
    "WiFiAccessPoint",
    "BluetoothBeacon",
    "RFIDReader",
    "CheckPointDeployment",
    "CoverageDeployment",
    "DeploymentModel",
    "ManualDeployment",
    "MountingSite",
    "deployment_model_by_name",
    "DeviceDeploymentRequest",
    "PositioningDeviceController",
]
