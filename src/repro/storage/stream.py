"""Data Stream APIs.

"The Data Stream APIs module encapsulates some commonly used functions and
query processing algorithms that can be directly called by the Producer"
(Section 2).  The queries offered here are the ones indoor mobility analytics
typically needs over the generated data:

* time-range scans over trajectory / RSSI / positioning records;
* spatial range queries (which objects were inside a floor rectangle during a
  time window);
* snapshot queries (where was everybody at time *t*);
* k-nearest-neighbour queries over object positions at a time instant;
* sliding-window iteration for stream-style consumers;
* per-partition visit counting (the "frequently visited POIs" style of query
  cited in the paper's motivation).

Every query dispatches to the warehouse's storage backend, which supplies a
native implementation: indexed Python structures on the memory engine,
index-backed SQL on SQLite.  The API is therefore identical — and returns
identical results — regardless of where the data lives.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.core.types import IndoorLocation, ObjectId, Timestamp, TrajectoryRecord
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.repositories import DataWarehouse, row_to_trajectory_record


class DataStreamAPI:
    """Query processing over a :class:`~repro.storage.repositories.DataWarehouse`."""

    def __init__(self, warehouse: DataWarehouse) -> None:
        self.warehouse = warehouse
        self.backend = warehouse.backend

    # ------------------------------------------------------------------ #
    # Temporal queries
    # ------------------------------------------------------------------ #
    def trajectory_window(
        self, t_start: Timestamp, t_end: Timestamp
    ) -> List[TrajectoryRecord]:
        """Trajectory records with ``t_start <= t <= t_end``."""
        if t_end < t_start:
            raise StorageError("time window end must not precede its start")
        return self.warehouse.trajectories.in_time_range(t_start, t_end)

    def snapshot(self, t: Timestamp, tolerance: float = 1.0) -> Dict[ObjectId, IndoorLocation]:
        """Last known location of every object within *tolerance* seconds of *t*."""
        return {
            object_id: row_to_trajectory_record(row).location
            for object_id, row in self.backend.snapshot_rows(t, tolerance).items()
        }

    def sliding_windows(
        self, window: float, step: Optional[float] = None
    ) -> Iterator[Tuple[Timestamp, Timestamp, List[TrajectoryRecord]]]:
        """Iterate ``(t_start, t_end, records)`` sliding windows over the data.

        One time-ordered pass over the backend feeds a buffer that holds only
        the records of the current window, so the cost is a single scan (not
        one scan per window) and memory stays bounded by the largest window —
        datasets larger than RAM stream through.
        """
        if window <= 0:
            raise StorageError("window length must be positive")
        step = step or window
        bounds = self.backend.time_bounds("trajectory")
        if bounds is None:
            return
        t, t_max = bounds
        rows = self.backend.iter_time_ordered("trajectory")
        buffer: Deque[TrajectoryRecord] = deque()
        pending = next(rows, None)
        while t <= t_max:
            t_end = t + window
            while pending is not None and pending["t"] <= t_end:
                buffer.append(row_to_trajectory_record(pending))
                pending = next(rows, None)
            while buffer and buffer[0].t < t:
                buffer.popleft()
            yield t, t_end, list(buffer)
            t += step

    # ------------------------------------------------------------------ #
    # Spatial queries
    # ------------------------------------------------------------------ #
    def objects_in_region(
        self,
        floor_id: int,
        box: BoundingBox,
        t_start: Timestamp,
        t_end: Timestamp,
    ) -> List[ObjectId]:
        """Objects that had at least one sample inside *box* during the window."""
        if t_end < t_start:
            raise StorageError("time window end must not precede its start")
        # Same edge tolerance as BoundingBox.contains_point, so a sample that
        # float round-off pushes marginally past the box edge still counts.
        eps = 1e-9
        return self.backend.region_object_ids(
            floor_id,
            box.min_x - eps,
            box.min_y - eps,
            box.max_x + eps,
            box.max_y + eps,
            t_start,
            t_end,
        )

    def objects_in_partition(
        self, partition_id: str, t_start: Timestamp, t_end: Timestamp
    ) -> List[ObjectId]:
        """Objects observed in *partition_id* during the window."""
        found = {
            record.object_id
            for record in self.warehouse.trajectories.in_partition(partition_id)
            if t_start <= record.t <= t_end
        }
        return sorted(found)

    def knn_at(self, floor_id: int, point: Point, t: Timestamp, k: int = 5,
               tolerance: float = 1.0) -> List[Tuple[ObjectId, float]]:
        """The *k* objects closest to *point* on *floor_id* around time *t*."""
        return self.backend.knn(floor_id, point.x, point.y, t, k, tolerance)

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def partition_visit_counts(self) -> Dict[str, int]:
        """Number of distinct objects observed per partition (symbolic POI counts)."""
        return self.backend.partition_visit_counts()

    def device_detection_counts(self) -> Dict[str, int]:
        """Number of proximity detection periods per device."""
        return self.backend.count_by("proximity", "device_id")

    def rssi_statistics_by_device(self) -> Dict[str, Dict[str, float]]:
        """Mean/min/max RSSI per device over the raw RSSI data."""
        return self.backend.rssi_device_statistics()


__all__ = ["DataStreamAPI"]
