"""Data Stream APIs.

"The Data Stream APIs module encapsulates some commonly used functions and
query processing algorithms that can be directly called by the Producer"
(Section 2).  The queries offered here are the ones indoor mobility analytics
typically needs over the generated data:

* time-range scans over trajectory / RSSI / positioning records;
* spatial range queries (which objects were inside a floor rectangle during a
  time window);
* snapshot queries (where was everybody at time *t*);
* k-nearest-neighbour queries over object positions at a time instant;
* sliding-window iteration for stream-style consumers;
* per-partition visit counting (the "frequently visited POIs" style of query
  cited in the paper's motivation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.core.types import IndoorLocation, ObjectId, Timestamp, TrajectoryRecord
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.repositories import DataWarehouse


class DataStreamAPI:
    """Query processing over a :class:`~repro.storage.repositories.DataWarehouse`."""

    def __init__(self, warehouse: DataWarehouse) -> None:
        self.warehouse = warehouse

    # ------------------------------------------------------------------ #
    # Temporal queries
    # ------------------------------------------------------------------ #
    def trajectory_window(
        self, t_start: Timestamp, t_end: Timestamp
    ) -> List[TrajectoryRecord]:
        """Trajectory records with ``t_start <= t <= t_end``."""
        if t_end < t_start:
            raise StorageError("time window end must not precede its start")
        return self.warehouse.trajectories.in_time_range(t_start, t_end)

    def snapshot(self, t: Timestamp, tolerance: float = 1.0) -> Dict[ObjectId, IndoorLocation]:
        """Last known location of every object within *tolerance* seconds of *t*."""
        records = self.warehouse.trajectories.in_time_range(t - tolerance, t + tolerance)
        best: Dict[ObjectId, TrajectoryRecord] = {}
        for record in records:
            current = best.get(record.object_id)
            if current is None or abs(record.t - t) < abs(current.t - t):
                best[record.object_id] = record
        return {object_id: record.location for object_id, record in best.items()}

    def sliding_windows(
        self, window: float, step: Optional[float] = None
    ) -> Iterator[Tuple[Timestamp, Timestamp, List[TrajectoryRecord]]]:
        """Iterate ``(t_start, t_end, records)`` sliding windows over the data."""
        if window <= 0:
            raise StorageError("window length must be positive")
        step = step or window
        table = self.warehouse.trajectories.table
        if len(table) == 0:
            return
        times = [row["t"] for row in table.all_rows()]
        t_min, t_max = min(times), max(times)
        t = t_min
        while t <= t_max:
            yield t, t + window, self.trajectory_window(t, t + window)
            t += step

    # ------------------------------------------------------------------ #
    # Spatial queries
    # ------------------------------------------------------------------ #
    def objects_in_region(
        self,
        floor_id: int,
        box: BoundingBox,
        t_start: Timestamp,
        t_end: Timestamp,
    ) -> List[ObjectId]:
        """Objects that had at least one sample inside *box* during the window."""
        found = set()
        for record in self.trajectory_window(t_start, t_end):
            location = record.location
            if location.floor_id != floor_id or not location.has_point:
                continue
            x, y = location.point()
            if box.contains_point(Point(x, y)):
                found.add(record.object_id)
        return sorted(found)

    def objects_in_partition(
        self, partition_id: str, t_start: Timestamp, t_end: Timestamp
    ) -> List[ObjectId]:
        """Objects observed in *partition_id* during the window."""
        found = {
            record.object_id
            for record in self.warehouse.trajectories.in_partition(partition_id)
            if t_start <= record.t <= t_end
        }
        return sorted(found)

    def knn_at(self, floor_id: int, point: Point, t: Timestamp, k: int = 5,
               tolerance: float = 1.0) -> List[Tuple[ObjectId, float]]:
        """The *k* objects closest to *point* on *floor_id* around time *t*."""
        if k <= 0:
            return []
        snapshot = self.snapshot(t, tolerance)
        scored = []
        for object_id, location in snapshot.items():
            if location.floor_id != floor_id or not location.has_point:
                continue
            x, y = location.point()
            scored.append((object_id, point.distance_to(Point(x, y))))
        scored.sort(key=lambda pair: (pair[1], pair[0]))
        return scored[:k]

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def partition_visit_counts(self) -> Dict[str, int]:
        """Number of distinct objects observed per partition (symbolic POI counts)."""
        visits: Dict[str, set] = defaultdict(set)
        for row in self.warehouse.trajectories.table.all_rows():
            partition_id = row["partition_id"]
            if partition_id:
                visits[partition_id].add(row["object_id"])
        return {partition_id: len(objects) for partition_id, objects in visits.items()}

    def device_detection_counts(self) -> Dict[str, int]:
        """Number of proximity detection periods per device."""
        return self.warehouse.proximity.table.count_by("device_id")

    def rssi_statistics_by_device(self) -> Dict[str, Dict[str, float]]:
        """Mean/min/max RSSI per device over the raw RSSI data."""
        grouped: Dict[str, List[float]] = defaultdict(list)
        for row in self.warehouse.rssi.table.all_rows():
            grouped[row["device_id"]].append(row["rssi"])
        statistics = {}
        for device_id, values in grouped.items():
            statistics[device_id] = {
                "count": float(len(values)),
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
        return statistics


__all__ = ["DataStreamAPI"]
