"""Data Stream APIs.

"The Data Stream APIs module encapsulates some commonly used functions and
query processing algorithms that can be directly called by the Producer"
(Section 2).  The queries offered here are the ones indoor mobility analytics
typically needs over the generated data:

* time-range scans over trajectory / RSSI / positioning records;
* spatial range queries (which objects were inside a floor rectangle during a
  time window);
* snapshot queries (where was everybody at time *t*);
* k-nearest-neighbour queries over object positions at a time instant;
* sliding-window iteration for stream-style consumers;
* per-partition visit counting (the "frequently visited POIs" style of query
  cited in the paper's motivation).

Every method is a thin compatibility shim over the composable query builder
(:mod:`repro.storage.query`): it phrases the query with the builder grammar
and lets the planner push the work into the storage engine — index-backed SQL
on SQLite, the hash/time indices on the memory engine.  The API is therefore
identical — and returns identical results — regardless of where the data
lives, and any query these fixed methods cannot phrase is available directly
through :meth:`DataStreamAPI.query`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.core.types import IndoorLocation, ObjectId, Timestamp, TrajectoryRecord
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.storage.query import Query
from repro.storage.repositories import DataWarehouse, row_to_trajectory_record


class DataStreamAPI:
    """Query processing over a :class:`~repro.storage.repositories.DataWarehouse`."""

    def __init__(self, warehouse: DataWarehouse) -> None:
        self.warehouse = warehouse
        self.backend = warehouse.backend

    def query(self, dataset: str) -> Query:
        """A composable builder query over *dataset* (the generic entry point)."""
        return self.warehouse.query(dataset)

    # ------------------------------------------------------------------ #
    # Temporal queries
    # ------------------------------------------------------------------ #
    def trajectory_window(
        self, t_start: Timestamp, t_end: Timestamp
    ) -> List[TrajectoryRecord]:
        """Trajectory records with ``t_start <= t <= t_end``."""
        return self.query("trajectory").during(t_start, t_end).records()

    def snapshot(self, t: Timestamp, tolerance: float = 1.0) -> Dict[ObjectId, IndoorLocation]:
        """Last known location of every object within *tolerance* seconds of *t*."""
        return {
            object_id: row_to_trajectory_record(row).location
            for object_id, row in self.query("trajectory").snapshot(t, tolerance).items()
        }

    def sliding_windows(
        self, window: float, step: Optional[float] = None
    ) -> Iterator[Tuple[Timestamp, Timestamp, List[TrajectoryRecord]]]:
        """Iterate ``(t_start, t_end, records)`` sliding windows over the data.

        One time-ordered builder scan feeds a buffer that holds only the
        records of the current window, so the cost is a single scan (not one
        scan per window) and memory stays bounded by the largest window —
        datasets larger than RAM stream through.
        """
        if window <= 0:
            raise StorageError("window length must be positive")
        step = step or window
        bounds = self.backend.time_bounds("trajectory")
        if bounds is None:
            return
        t, t_max = bounds
        rows = self.query("trajectory").order_by("t").iter()
        buffer: Deque[TrajectoryRecord] = deque()
        pending = next(rows, None)
        while t <= t_max:
            t_end = t + window
            while pending is not None and pending["t"] <= t_end:
                buffer.append(row_to_trajectory_record(pending))
                pending = next(rows, None)
            while buffer and buffer[0].t < t:
                buffer.popleft()
            yield t, t_end, list(buffer)
            t += step

    # ------------------------------------------------------------------ #
    # Spatial queries
    # ------------------------------------------------------------------ #
    def objects_in_region(
        self,
        floor_id: int,
        box: BoundingBox,
        t_start: Timestamp,
        t_end: Timestamp,
    ) -> List[ObjectId]:
        """Objects that had at least one sample inside *box* during the window."""
        # Same edge tolerance as BoundingBox.contains_point, so a sample that
        # float round-off pushes marginally past the box edge still counts.
        eps = 1e-9
        return (
            self.query("trajectory")
            .during(t_start, t_end)
            .on_floor(floor_id)
            .within((box.min_x - eps, box.min_y - eps, box.max_x + eps, box.max_y + eps))
            .distinct("object_id")
        )

    def objects_in_partition(
        self, partition_id: str, t_start: Timestamp, t_end: Timestamp
    ) -> List[ObjectId]:
        """Objects observed in *partition_id* during the window."""
        return (
            self.query("trajectory")
            .where(partition_id=partition_id)
            .during(t_start, t_end)
            .distinct("object_id")
        )

    def knn_at(self, floor_id: int, point: Point, t: Timestamp, k: int = 5,
               tolerance: float = 1.0) -> List[Tuple[ObjectId, float]]:
        """The *k* objects closest to *point* on *floor_id* around time *t*."""
        return (
            self.query("trajectory")
            .on_floor(floor_id)
            .knn(point.x, point.y, t, k=k, tolerance=tolerance)
        )

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def partition_visit_counts(self) -> Dict[str, int]:
        """Number of distinct objects observed per partition (symbolic POI counts)."""
        return (
            self.query("trajectory")
            .where("partition_id", "not_in", (None, ""))
            .count_by("partition_id", distinct="object_id")
        )

    def device_detection_counts(self) -> Dict[str, int]:
        """Number of proximity detection periods per device."""
        return self.query("proximity").count_by("device_id")

    def rssi_statistics_by_device(self) -> Dict[str, Dict[str, float]]:
        """count/mean/min/max/sum RSSI per device over the raw RSSI data."""
        return self.query("rssi").stats("rssi", by="device_id")

    # ------------------------------------------------------------------ #
    # Continuous queries
    # ------------------------------------------------------------------ #
    def replay_monitors(self, monitors, *, spatial=None, on_alert=None, telemetry=None):
        """Evaluate standing :class:`~repro.live.Monitor` subscriptions over
        the stored data, scanning it back out through the query planner.

        The offline drive mode of the continuous-query subsystem: the result
        sequences are identical to what the same monitors would have emitted
        attached to the generation run that produced this warehouse (the
        replay-equivalence contract, see ``docs/live.md``).  Returns the
        :class:`~repro.live.LiveReport`.  An optional
        :class:`~repro.obs.Telemetry` collects the engine's live instruments.
        """
        from repro.live.replay import replay  # local: optional subsystem

        return replay(
            self.warehouse, monitors, spatial=spatial, on_alert=on_alert,
            telemetry=telemetry,
        )


__all__ = ["DataStreamAPI"]
