"""Typed repositories over the in-memory tables.

Section 4.2 lists the storage formats:

* raw trajectory data ``(o_id, loc, t)``;
* raw RSSI measurements ``(o_id, d_id, rssi)``;
* deterministic positioning data ``(o_id, loc, t)``;
* probabilistic positioning data ``(o_id, {(loc_i, prob_i)}, t)``;
* proximity data ``(o_id, d_id, ts, te)``;
* positioning-device data (part of the infrastructure output).

Each repository wraps one table with the appropriate schema, converts between
the typed record dataclasses of :mod:`repro.core.types` and plain rows, and
offers the queries the Data Stream APIs and benchmarks need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    ObjectId,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    Timestamp,
    TrajectoryRecord,
)
from repro.mobility.trajectory import Trajectory, TrajectorySet
from repro.storage.tables import Table, TableSchema

_LOCATION_COLUMNS = ("building_id", "floor_id", "partition_id", "x", "y")


def _location_from_row(row: Dict) -> IndoorLocation:
    return IndoorLocation(
        building_id=row["building_id"],
        floor_id=row["floor_id"],
        partition_id=row["partition_id"],
        x=row["x"],
        y=row["y"],
    )


class TrajectoryRepository:
    """Raw trajectory data ``(o_id, loc, t)``."""

    def __init__(self) -> None:
        self.table = Table(
            TableSchema(
                name="raw_trajectory",
                columns=("object_id", "t") + _LOCATION_COLUMNS,
                hash_indexes=("object_id", "partition_id", "floor_id"),
                ordered_index="t",
            )
        )

    def add(self, record: TrajectoryRecord) -> None:
        self.table.insert(record.as_record())

    def add_many(self, records: Sequence[TrajectoryRecord]) -> int:
        return self.table.insert_many(record.as_record() for record in records)

    def add_trajectory_set(self, trajectories: TrajectorySet) -> int:
        """Store every sample of a :class:`TrajectorySet`."""
        return self.add_many(trajectories.all_records())

    def __len__(self) -> int:
        return len(self.table)

    def object_ids(self) -> List[ObjectId]:
        return self.table.distinct("object_id")

    def records_of(self, object_id: ObjectId) -> List[TrajectoryRecord]:
        rows = sorted(self.table.lookup("object_id", object_id), key=lambda r: r["t"])
        return [self._to_record(row) for row in rows]

    def trajectory_of(self, object_id: ObjectId) -> Trajectory:
        trajectory = Trajectory(object_id)
        for record in self.records_of(object_id):
            trajectory.append(record)
        return trajectory

    def to_trajectory_set(self) -> TrajectorySet:
        trajectories = TrajectorySet()
        for row in sorted(self.table.all_rows(), key=lambda r: r["t"]):
            trajectories.add_record(self._to_record(row))
        return trajectories

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[TrajectoryRecord]:
        return [self._to_record(row) for row in self.table.range(t_start, t_end)]

    def in_partition(self, partition_id: str) -> List[TrajectoryRecord]:
        rows = self.table.lookup("partition_id", partition_id)
        return [self._to_record(row) for row in rows]

    @staticmethod
    def _to_record(row: Dict) -> TrajectoryRecord:
        return TrajectoryRecord(
            object_id=row["object_id"], location=_location_from_row(row), t=row["t"]
        )


class RSSIRepository:
    """Raw RSSI measurement data ``(o_id, d_id, rssi, t)``."""

    def __init__(self) -> None:
        self.table = Table(
            TableSchema(
                name="raw_rssi",
                columns=("object_id", "device_id", "rssi", "t"),
                hash_indexes=("object_id", "device_id"),
                ordered_index="t",
            )
        )

    def add(self, record: RSSIRecord) -> None:
        self.table.insert(record.as_record())

    def add_many(self, records: Sequence[RSSIRecord]) -> int:
        return self.table.insert_many(record.as_record() for record in records)

    def __len__(self) -> int:
        return len(self.table)

    def records_of_object(self, object_id: ObjectId) -> List[RSSIRecord]:
        rows = sorted(self.table.lookup("object_id", object_id), key=lambda r: r["t"])
        return [self._to_record(row) for row in rows]

    def records_of_device(self, device_id: str) -> List[RSSIRecord]:
        rows = sorted(self.table.lookup("device_id", device_id), key=lambda r: r["t"])
        return [self._to_record(row) for row in rows]

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[RSSIRecord]:
        return [self._to_record(row) for row in self.table.range(t_start, t_end)]

    def all_records(self) -> List[RSSIRecord]:
        return [self._to_record(row) for row in self.table.all_rows()]

    @staticmethod
    def _to_record(row: Dict) -> RSSIRecord:
        return RSSIRecord(
            object_id=row["object_id"],
            device_id=row["device_id"],
            rssi=row["rssi"],
            t=row["t"],
        )


class PositioningRepository:
    """Deterministic positioning data ``(o_id, loc, t)``."""

    def __init__(self) -> None:
        self.table = Table(
            TableSchema(
                name="positioning",
                columns=("object_id", "t", "method") + _LOCATION_COLUMNS,
                hash_indexes=("object_id", "method", "partition_id"),
                ordered_index="t",
            )
        )

    def add(self, record: PositioningRecord) -> None:
        self.table.insert(record.as_record())

    def add_many(self, records: Sequence[PositioningRecord]) -> int:
        return self.table.insert_many(record.as_record() for record in records)

    def __len__(self) -> int:
        return len(self.table)

    def records_of(self, object_id: ObjectId) -> List[PositioningRecord]:
        rows = sorted(self.table.lookup("object_id", object_id), key=lambda r: r["t"])
        return [self._to_record(row) for row in rows]

    def by_method(self, method: PositioningMethod) -> List[PositioningRecord]:
        rows = self.table.lookup("method", method.value)
        return [self._to_record(row) for row in rows]

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[PositioningRecord]:
        return [self._to_record(row) for row in self.table.range(t_start, t_end)]

    def all_records(self) -> List[PositioningRecord]:
        return [self._to_record(row) for row in self.table.all_rows()]

    @staticmethod
    def _to_record(row: Dict) -> PositioningRecord:
        return PositioningRecord(
            object_id=row["object_id"],
            location=_location_from_row(row),
            t=row["t"],
            method=PositioningMethod(row["method"]),
        )


class ProbabilisticPositioningRepository:
    """Probabilistic positioning data ``(o_id, {(loc_i, prob_i)}, t)``."""

    def __init__(self) -> None:
        self._records: List[ProbabilisticPositioningRecord] = []

    def add(self, record: ProbabilisticPositioningRecord) -> None:
        self._records.append(record)

    def add_many(self, records: Sequence[ProbabilisticPositioningRecord]) -> int:
        self._records.extend(records)
        return len(records)

    def __len__(self) -> int:
        return len(self._records)

    def records_of(self, object_id: ObjectId) -> List[ProbabilisticPositioningRecord]:
        return sorted(
            (record for record in self._records if record.object_id == object_id),
            key=lambda record: record.t,
        )

    def all_records(self) -> List[ProbabilisticPositioningRecord]:
        return list(self._records)

    def best_estimates(self) -> List[PositioningRecord]:
        """Collapse every probabilistic record to its most probable candidate."""
        return [
            PositioningRecord(
                object_id=record.object_id,
                location=record.best,
                t=record.t,
                method=PositioningMethod.FINGERPRINTING,
            )
            for record in self._records
        ]


class ProximityRepository:
    """Proximity data ``(o_id, d_id, ts, te)``."""

    def __init__(self) -> None:
        self.table = Table(
            TableSchema(
                name="proximity",
                columns=("object_id", "device_id", "t_start", "t_end"),
                hash_indexes=("object_id", "device_id"),
                ordered_index="t_start",
            )
        )

    def add(self, record: ProximityRecord) -> None:
        self.table.insert(record.as_record())

    def add_many(self, records: Sequence[ProximityRecord]) -> int:
        return self.table.insert_many(record.as_record() for record in records)

    def __len__(self) -> int:
        return len(self.table)

    def records_of(self, object_id: ObjectId) -> List[ProximityRecord]:
        rows = sorted(self.table.lookup("object_id", object_id), key=lambda r: r["t_start"])
        return [self._to_record(row) for row in rows]

    def records_of_device(self, device_id: str) -> List[ProximityRecord]:
        rows = sorted(self.table.lookup("device_id", device_id), key=lambda r: r["t_start"])
        return [self._to_record(row) for row in rows]

    def active_at(self, t: Timestamp) -> List[ProximityRecord]:
        """Detection periods covering time *t*."""
        return [
            self._to_record(row)
            for row in self.table.select(lambda r: r["t_start"] <= t <= r["t_end"])
        ]

    def all_records(self) -> List[ProximityRecord]:
        return [self._to_record(row) for row in self.table.all_rows()]

    @staticmethod
    def _to_record(row: Dict) -> ProximityRecord:
        return ProximityRecord(
            object_id=row["object_id"],
            device_id=row["device_id"],
            t_start=row["t_start"],
            t_end=row["t_end"],
        )


class DeviceRepository:
    """Positioning-device data generated by the Infrastructure Layer."""

    def __init__(self) -> None:
        self.table = Table(
            TableSchema(
                name="positioning_device",
                columns=("device_id", "device_type", "detection_range", "detection_interval")
                + _LOCATION_COLUMNS,
                hash_indexes=("device_id", "device_type", "floor_id"),
            )
        )

    def add(self, record: DeviceRecord) -> None:
        self.table.insert(record.as_record())

    def add_many(self, records: Sequence[DeviceRecord]) -> int:
        return self.table.insert_many(record.as_record() for record in records)

    def __len__(self) -> int:
        return len(self.table)

    def by_type(self, device_type: DeviceType) -> List[DeviceRecord]:
        rows = self.table.lookup("device_type", device_type.value)
        return [self._to_record(row) for row in rows]

    def on_floor(self, floor_id: int) -> List[DeviceRecord]:
        rows = self.table.lookup("floor_id", floor_id)
        return [self._to_record(row) for row in rows]

    def all_records(self) -> List[DeviceRecord]:
        return [self._to_record(row) for row in self.table.all_rows()]

    @staticmethod
    def _to_record(row: Dict) -> DeviceRecord:
        return DeviceRecord(
            device_id=row["device_id"],
            device_type=DeviceType(row["device_type"]),
            location=_location_from_row(row),
            detection_range=row["detection_range"],
            detection_interval=row["detection_interval"],
        )


class DataWarehouse:
    """All repositories of one generation run, bundled together."""

    def __init__(self) -> None:
        self.trajectories = TrajectoryRepository()
        self.rssi = RSSIRepository()
        self.positioning = PositioningRepository()
        self.probabilistic = ProbabilisticPositioningRepository()
        self.proximity = ProximityRepository()
        self.devices = DeviceRepository()

    def summary(self) -> Dict[str, int]:
        """Record counts per repository."""
        return {
            "trajectory_records": len(self.trajectories),
            "rssi_records": len(self.rssi),
            "positioning_records": len(self.positioning),
            "probabilistic_records": len(self.probabilistic),
            "proximity_records": len(self.proximity),
            "device_records": len(self.devices),
        }


__all__ = [
    "TrajectoryRepository",
    "RSSIRepository",
    "PositioningRepository",
    "ProbabilisticPositioningRepository",
    "ProximityRepository",
    "DeviceRepository",
    "DataWarehouse",
]
