"""Typed repositories over a pluggable storage backend.

Section 4.2 lists the storage formats:

* raw trajectory data ``(o_id, loc, t)``;
* raw RSSI measurements ``(o_id, d_id, rssi)``;
* deterministic positioning data ``(o_id, loc, t)``;
* probabilistic positioning data ``(o_id, {(loc_i, prob_i)}, t)``;
* proximity data ``(o_id, d_id, ts, te)``;
* positioning-device data (part of the infrastructure output).

Each repository maps one of those formats onto a dataset of a
:class:`~repro.storage.backends.base.StorageBackend`, converting between the
typed record dataclasses of :mod:`repro.core.types` and plain rows.  The
same repository code runs on the in-memory engine and on SQLite; a
:class:`DataWarehouse` bundles all repositories of one generation run over
one shared backend.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.errors import StorageError
from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    ObjectId,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    Timestamp,
    TrajectoryRecord,
)
from repro.mobility.trajectory import Trajectory, TrajectorySet
from repro.storage.backends import StorageBackend, backend_by_name
from repro.storage.backends.memory import MemoryBackend
from repro.storage.tables import Table


def _location_from_row(row: Dict) -> IndoorLocation:
    return IndoorLocation(
        building_id=row["building_id"],
        floor_id=row["floor_id"],
        partition_id=row["partition_id"],
        x=row["x"],
        y=row["y"],
    )


def row_to_trajectory_record(row: Dict) -> TrajectoryRecord:
    return TrajectoryRecord(
        object_id=row["object_id"], location=_location_from_row(row), t=row["t"]
    )


def row_to_rssi_record(row: Dict) -> RSSIRecord:
    return RSSIRecord(
        object_id=row["object_id"],
        device_id=row["device_id"],
        rssi=row["rssi"],
        t=row["t"],
    )


def row_to_positioning_record(row: Dict) -> PositioningRecord:
    return PositioningRecord(
        object_id=row["object_id"],
        location=_location_from_row(row),
        t=row["t"],
        method=PositioningMethod(row["method"]),
    )


def row_to_probabilistic_record(row: Dict) -> ProbabilisticPositioningRecord:
    candidates = tuple(
        (IndoorLocation.from_record(candidate["location"]), float(candidate["prob"]))
        for candidate in json.loads(row["candidates"])
    )
    return ProbabilisticPositioningRecord(
        object_id=row["object_id"], candidates=candidates, t=row["t"]
    )


def row_to_proximity_record(row: Dict) -> ProximityRecord:
    return ProximityRecord(
        object_id=row["object_id"],
        device_id=row["device_id"],
        t_start=row["t_start"],
        t_end=row["t_end"],
    )


def row_to_device_record(row: Dict) -> DeviceRecord:
    return DeviceRecord(
        device_id=row["device_id"],
        device_type=DeviceType(row["device_type"]),
        location=_location_from_row(row),
        detection_range=row["detection_range"],
        detection_interval=row["detection_interval"],
    )


#: Dataset name -> plain-row-to-typed-record converter, used by
#: :meth:`repro.storage.query.Query.records`.
ROW_CONVERTERS = {
    "trajectory": row_to_trajectory_record,
    "rssi": row_to_rssi_record,
    "positioning": row_to_positioning_record,
    "probabilistic": row_to_probabilistic_record,
    "proximity": row_to_proximity_record,
    "device": row_to_device_record,
}


class _Repository:
    """Shared plumbing: one dataset of one backend."""

    dataset: str = ""

    def __init__(self, backend: Optional[StorageBackend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()

    def __len__(self) -> int:
        return self.backend.count(self.dataset)

    @property
    def table(self) -> Table:
        """The raw in-memory table (memory engine only; legacy escape hatch)."""
        handle = getattr(self.backend, "table_handle", None)
        if handle is None:
            raise StorageError(
                f"the {self.backend.name!r} backend does not expose raw tables; "
                "use the repository/query methods instead"
            )
        return handle(self.dataset)

    def _insert(self, rows: List[Dict]) -> int:
        return self.backend.insert_rows(self.dataset, rows)


class TrajectoryRepository(_Repository):
    """Raw trajectory data ``(o_id, loc, t)``."""

    dataset = "trajectory"

    def add(self, record: TrajectoryRecord) -> None:
        self._insert([record.as_record()])

    def add_many(self, records: Iterable[TrajectoryRecord]) -> int:
        return self._insert([record.as_record() for record in records])

    def add_trajectory_set(self, trajectories: TrajectorySet) -> int:
        """Store every sample of a :class:`TrajectorySet`."""
        return self.add_many(trajectories.all_records())

    def object_ids(self) -> List[ObjectId]:
        return self.backend.distinct(self.dataset, "object_id")

    def records_of(self, object_id: ObjectId) -> List[TrajectoryRecord]:
        rows = self.backend.rows_eq(self.dataset, "object_id", object_id, order_by="t")
        return [row_to_trajectory_record(row) for row in rows]

    def trajectory_of(self, object_id: ObjectId) -> Trajectory:
        trajectory = Trajectory(object_id)
        for record in self.records_of(object_id):
            trajectory.append(record)
        return trajectory

    def to_trajectory_set(self) -> TrajectorySet:
        trajectories = TrajectorySet()
        for row in self.backend.iter_time_ordered(self.dataset):
            trajectories.add_record(row_to_trajectory_record(row))
        return trajectories

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[TrajectoryRecord]:
        rows = self.backend.rows_in_time_range(self.dataset, t_start, t_end)
        return [row_to_trajectory_record(row) for row in rows]

    def in_partition(self, partition_id: str) -> List[TrajectoryRecord]:
        rows = self.backend.rows_eq(self.dataset, "partition_id", partition_id)
        return [row_to_trajectory_record(row) for row in rows]


class RSSIRepository(_Repository):
    """Raw RSSI measurement data ``(o_id, d_id, rssi, t)``."""

    dataset = "rssi"

    def add(self, record: RSSIRecord) -> None:
        self._insert([record.as_record()])

    def add_many(self, records: Iterable[RSSIRecord]) -> int:
        return self._insert([record.as_record() for record in records])

    def records_of_object(self, object_id: ObjectId) -> List[RSSIRecord]:
        rows = self.backend.rows_eq(self.dataset, "object_id", object_id, order_by="t")
        return [row_to_rssi_record(row) for row in rows]

    def records_of_device(self, device_id: str) -> List[RSSIRecord]:
        rows = self.backend.rows_eq(self.dataset, "device_id", device_id, order_by="t")
        return [row_to_rssi_record(row) for row in rows]

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[RSSIRecord]:
        rows = self.backend.rows_in_time_range(self.dataset, t_start, t_end)
        return [row_to_rssi_record(row) for row in rows]

    def all_records(self) -> List[RSSIRecord]:
        return [row_to_rssi_record(row) for row in self.backend.all_rows(self.dataset)]


class PositioningRepository(_Repository):
    """Deterministic positioning data ``(o_id, loc, t)``."""

    dataset = "positioning"

    def add(self, record: PositioningRecord) -> None:
        self._insert([record.as_record()])

    def add_many(self, records: Iterable[PositioningRecord]) -> int:
        return self._insert([record.as_record() for record in records])

    def records_of(self, object_id: ObjectId) -> List[PositioningRecord]:
        rows = self.backend.rows_eq(self.dataset, "object_id", object_id, order_by="t")
        return [row_to_positioning_record(row) for row in rows]

    def by_method(self, method: PositioningMethod) -> List[PositioningRecord]:
        rows = self.backend.rows_eq(self.dataset, "method", method.value)
        return [row_to_positioning_record(row) for row in rows]

    def in_time_range(self, t_start: Timestamp, t_end: Timestamp) -> List[PositioningRecord]:
        rows = self.backend.rows_in_time_range(self.dataset, t_start, t_end)
        return [row_to_positioning_record(row) for row in rows]

    def all_records(self) -> List[PositioningRecord]:
        return [
            row_to_positioning_record(row) for row in self.backend.all_rows(self.dataset)
        ]


class ProbabilisticPositioningRepository(_Repository):
    """Probabilistic positioning data ``(o_id, {(loc_i, prob_i)}, t)``.

    The candidate set is stored as one JSON document per row so the dataset
    keeps a flat, backend-independent shape.
    """

    dataset = "probabilistic"

    @staticmethod
    def _to_row(record: ProbabilisticPositioningRecord) -> Dict:
        payload = record.as_record()
        return {
            "object_id": payload["object_id"],
            "t": payload["t"],
            "candidates": json.dumps(payload["candidates"]),
        }

    def add(self, record: ProbabilisticPositioningRecord) -> None:
        self._insert([self._to_row(record)])

    def add_many(self, records: Sequence[ProbabilisticPositioningRecord]) -> int:
        return self._insert([self._to_row(record) for record in records])

    def records_of(self, object_id: ObjectId) -> List[ProbabilisticPositioningRecord]:
        rows = self.backend.rows_eq(self.dataset, "object_id", object_id, order_by="t")
        return [row_to_probabilistic_record(row) for row in rows]

    def all_records(self) -> List[ProbabilisticPositioningRecord]:
        return [
            row_to_probabilistic_record(row)
            for row in self.backend.all_rows(self.dataset)
        ]

    def best_estimates(self) -> List[PositioningRecord]:
        """Collapse every probabilistic record to its most probable candidate."""
        return [
            PositioningRecord(
                object_id=record.object_id,
                location=record.best,
                t=record.t,
                method=PositioningMethod.FINGERPRINTING,
            )
            for record in self.all_records()
        ]


class ProximityRepository(_Repository):
    """Proximity data ``(o_id, d_id, ts, te)``."""

    dataset = "proximity"

    def add(self, record: ProximityRecord) -> None:
        self._insert([record.as_record()])

    def add_many(self, records: Iterable[ProximityRecord]) -> int:
        return self._insert([record.as_record() for record in records])

    def records_of(self, object_id: ObjectId) -> List[ProximityRecord]:
        rows = self.backend.rows_eq(self.dataset, "object_id", object_id, order_by="t_start")
        return [row_to_proximity_record(row) for row in rows]

    def records_of_device(self, device_id: str) -> List[ProximityRecord]:
        rows = self.backend.rows_eq(self.dataset, "device_id", device_id, order_by="t_start")
        return [row_to_proximity_record(row) for row in rows]

    def active_at(self, t: Timestamp) -> List[ProximityRecord]:
        """Detection periods covering time *t*."""
        return [row_to_proximity_record(row) for row in self.backend.proximity_active_at(t)]

    def all_records(self) -> List[ProximityRecord]:
        return [
            row_to_proximity_record(row) for row in self.backend.all_rows(self.dataset)
        ]


class DeviceRepository(_Repository):
    """Positioning-device data generated by the Infrastructure Layer."""

    dataset = "device"

    def add(self, record: DeviceRecord) -> None:
        self._insert([record.as_record()])

    def add_many(self, records: Iterable[DeviceRecord]) -> int:
        return self._insert([record.as_record() for record in records])

    def by_type(self, device_type: DeviceType) -> List[DeviceRecord]:
        rows = self.backend.rows_eq(self.dataset, "device_type", device_type.value)
        return [row_to_device_record(row) for row in rows]

    def on_floor(self, floor_id: int) -> List[DeviceRecord]:
        rows = self.backend.rows_eq(self.dataset, "floor_id", floor_id)
        return [row_to_device_record(row) for row in rows]

    def all_records(self) -> List[DeviceRecord]:
        return [row_to_device_record(row) for row in self.backend.all_rows(self.dataset)]


class DataWarehouse:
    """All repositories of one generation run over one shared backend."""

    def __init__(self, backend: Union[StorageBackend, str, None] = None, **options: Any) -> None:
        if isinstance(backend, str):
            backend = backend_by_name(backend, **options)
        elif options:
            raise StorageError("backend options require a backend name, not an instance")
        self.backend: StorageBackend = backend if backend is not None else MemoryBackend()
        self.trajectories = TrajectoryRepository(self.backend)
        self.rssi = RSSIRepository(self.backend)
        self.positioning = PositioningRepository(self.backend)
        self.probabilistic = ProbabilisticPositioningRepository(self.backend)
        self.proximity = ProximityRepository(self.backend)
        self.devices = DeviceRepository(self.backend)

    @classmethod
    def open(
        cls,
        backend: str = "memory",
        path: Optional[str] = None,
        cell_size: Optional[float] = None,
        batch_size: Optional[int] = None,
    ) -> "DataWarehouse":
        """Open a warehouse on the named engine (reopens existing SQLite files)."""
        return cls(backend_by_name(backend, path=path, cell_size=cell_size, batch_size=batch_size))

    @classmethod
    def from_config(cls, storage_config: Any) -> "DataWarehouse":
        """Build a warehouse from a :class:`repro.core.config.StorageConfig`."""
        if storage_config is None or storage_config.backend == "memory":
            return cls()
        return cls.open(
            backend=storage_config.backend,
            path=storage_config.path,
            cell_size=storage_config.grid_cell_size,
            batch_size=storage_config.batch_size,
        )

    def query(self, dataset: str) -> "Query":
        """A composable :class:`~repro.storage.query.Query` over *dataset*.

        The entry point of the builder API::

            warehouse.query("trajectory").during(0, 60).on_floor(1).count()
        """
        from repro.storage.query import Query  # local import breaks the cycle

        return Query(self.backend, dataset)

    def attach_metrics(self, registry: Any) -> None:
        """Count backend insert volumes into an :class:`~repro.obs.MetricsRegistry`."""
        self.backend.attach_metrics(registry)

    def flush(self) -> None:
        """Make pending writes durable (no-op on the memory engine)."""
        self.backend.flush()

    def close(self) -> None:
        """Flush and release the backend's resources."""
        self.backend.close()

    def clear(self) -> None:
        """Remove every stored record from every repository."""
        self.backend.clear_all()

    def __enter__(self) -> "DataWarehouse":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def summary(self) -> Dict[str, int]:
        """Record counts per repository."""
        return {
            "trajectory_records": len(self.trajectories),
            "rssi_records": len(self.rssi),
            "positioning_records": len(self.positioning),
            "probabilistic_records": len(self.probabilistic),
            "proximity_records": len(self.proximity),
            "device_records": len(self.devices),
        }


__all__ = [
    "ROW_CONVERTERS",
    "row_to_trajectory_record",
    "row_to_rssi_record",
    "row_to_positioning_record",
    "row_to_probabilistic_record",
    "row_to_proximity_record",
    "row_to_device_record",
    "TrajectoryRepository",
    "RSSIRepository",
    "PositioningRepository",
    "ProbabilisticPositioningRepository",
    "ProximityRepository",
    "DeviceRepository",
    "DataWarehouse",
]
