"""Import/export of the generated data as CSV and JSON-lines files.

The GUI prototype stores data in PostgreSQL; the library equivalent is flat
files that downstream analytics (pandas, DuckDB, spreadsheets) can load
directly.  Every record type round-trips: ``export_* → import_*`` reproduces
the original records.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.core.types import (
    DeviceRecord,
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)

PathLike = Union[str, Path]

_TRAJECTORY_FIELDS = ["object_id", "t", "building_id", "floor_id", "partition_id", "x", "y"]
_RSSI_FIELDS = ["object_id", "device_id", "rssi", "t"]
_POSITIONING_FIELDS = ["object_id", "t", "method", "building_id", "floor_id", "partition_id", "x", "y"]
_PROXIMITY_FIELDS = ["object_id", "device_id", "t_start", "t_end"]
_DEVICE_FIELDS = [
    "device_id", "device_type", "detection_range", "detection_interval",
    "building_id", "floor_id", "partition_id", "x", "y",
]


def _write_csv(path: PathLike, fieldnames: List[str], rows: Iterable[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key) for key in fieldnames})
    return path


def _read_csv(path: PathLike) -> List[dict]:
    with Path(path).open("r", newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


def _float_or_none(value) -> float:
    if value in (None, ""):
        return None
    return float(value)


# --------------------------------------------------------------------------- #
# Trajectory data
# --------------------------------------------------------------------------- #
def export_trajectories_csv(records: Sequence[TrajectoryRecord], path: PathLike) -> Path:
    """Write raw trajectory records ``(o_id, loc, t)`` to a CSV file."""
    return _write_csv(path, _TRAJECTORY_FIELDS, (record.as_record() for record in records))


def import_trajectories_csv(path: PathLike) -> List[TrajectoryRecord]:
    """Read raw trajectory records written by :func:`export_trajectories_csv`."""
    records = []
    for row in _read_csv(path):
        records.append(
            TrajectoryRecord(
                object_id=row["object_id"],
                location=IndoorLocation.from_record(row),
                t=float(row["t"]),
            )
        )
    return records


# --------------------------------------------------------------------------- #
# RSSI data
# --------------------------------------------------------------------------- #
def export_rssi_csv(records: Sequence[RSSIRecord], path: PathLike) -> Path:
    """Write raw RSSI records ``(o_id, d_id, rssi, t)`` to a CSV file."""
    return _write_csv(path, _RSSI_FIELDS, (record.as_record() for record in records))


def import_rssi_csv(path: PathLike) -> List[RSSIRecord]:
    """Read raw RSSI records written by :func:`export_rssi_csv`."""
    return [
        RSSIRecord(
            object_id=row["object_id"],
            device_id=row["device_id"],
            rssi=float(row["rssi"]),
            t=float(row["t"]),
        )
        for row in _read_csv(path)
    ]


# --------------------------------------------------------------------------- #
# Deterministic positioning data
# --------------------------------------------------------------------------- #
def export_positioning_csv(records: Sequence[PositioningRecord], path: PathLike) -> Path:
    """Write deterministic positioning records to a CSV file."""
    return _write_csv(path, _POSITIONING_FIELDS, (record.as_record() for record in records))


def import_positioning_csv(path: PathLike) -> List[PositioningRecord]:
    """Read deterministic positioning records written by :func:`export_positioning_csv`."""
    return [
        PositioningRecord(
            object_id=row["object_id"],
            location=IndoorLocation.from_record(row),
            t=float(row["t"]),
            method=PositioningMethod(row["method"]),
        )
        for row in _read_csv(path)
    ]


# --------------------------------------------------------------------------- #
# Probabilistic positioning data (JSON lines: nested candidates)
# --------------------------------------------------------------------------- #
def export_probabilistic_jsonl(
    records: Sequence[ProbabilisticPositioningRecord], path: PathLike
) -> Path:
    """Write probabilistic records ``(o_id, {(loc_i, prob_i)}, t)`` as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.as_record()) + "\n")
    return path


def import_probabilistic_jsonl(path: PathLike) -> List[ProbabilisticPositioningRecord]:
    """Read probabilistic records written by :func:`export_probabilistic_jsonl`."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            candidates = tuple(
                (IndoorLocation.from_record(candidate["location"]), float(candidate["prob"]))
                for candidate in payload["candidates"]
            )
            records.append(
                ProbabilisticPositioningRecord(
                    object_id=payload["object_id"],
                    candidates=candidates,
                    t=float(payload["t"]),
                )
            )
    return records


# --------------------------------------------------------------------------- #
# Proximity data
# --------------------------------------------------------------------------- #
def export_proximity_csv(records: Sequence[ProximityRecord], path: PathLike) -> Path:
    """Write proximity records ``(o_id, d_id, ts, te)`` to a CSV file."""
    return _write_csv(path, _PROXIMITY_FIELDS, (record.as_record() for record in records))


def import_proximity_csv(path: PathLike) -> List[ProximityRecord]:
    """Read proximity records written by :func:`export_proximity_csv`."""
    return [
        ProximityRecord(
            object_id=row["object_id"],
            device_id=row["device_id"],
            t_start=float(row["t_start"]),
            t_end=float(row["t_end"]),
        )
        for row in _read_csv(path)
    ]


# --------------------------------------------------------------------------- #
# Positioning-device data
# --------------------------------------------------------------------------- #
def export_devices_csv(records: Sequence[DeviceRecord], path: PathLike) -> Path:
    """Write positioning-device records to a CSV file."""
    return _write_csv(path, _DEVICE_FIELDS, (record.as_record() for record in records))


def import_devices_csv(path: PathLike) -> List[DeviceRecord]:
    """Read positioning-device records written by :func:`export_devices_csv`."""
    return [
        DeviceRecord(
            device_id=row["device_id"],
            device_type=DeviceType(row["device_type"]),
            location=IndoorLocation.from_record(row),
            detection_range=float(row["detection_range"]),
            detection_interval=float(row["detection_interval"]),
        )
        for row in _read_csv(path)
    ]


# --------------------------------------------------------------------------- #
# Whole-warehouse export / import (any backend)
# --------------------------------------------------------------------------- #
_WAREHOUSE_FILES = {
    "devices": "devices.csv",
    "trajectories": "raw_trajectories.csv",
    "rssi": "raw_rssi.csv",
    "positioning": "positioning.csv",
    "probabilistic": "positioning_probabilistic.jsonl",
    "proximity": "proximity.csv",
}


def export_warehouse(warehouse, directory: PathLike) -> dict:
    """Export every non-empty dataset of *warehouse* to *directory*.

    Works on any storage backend — the records are read back through the
    repositories.  Returns ``{dataset: written path}``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    if len(warehouse.devices):
        written["devices"] = export_devices_csv(
            warehouse.devices.all_records(), directory / _WAREHOUSE_FILES["devices"]
        )
    if len(warehouse.trajectories):
        records = warehouse.trajectories.to_trajectory_set().all_records()
        written["trajectories"] = export_trajectories_csv(
            records, directory / _WAREHOUSE_FILES["trajectories"]
        )
    if len(warehouse.rssi):
        written["rssi"] = export_rssi_csv(
            warehouse.rssi.all_records(), directory / _WAREHOUSE_FILES["rssi"]
        )
    if len(warehouse.positioning):
        written["positioning"] = export_positioning_csv(
            warehouse.positioning.all_records(), directory / _WAREHOUSE_FILES["positioning"]
        )
    if len(warehouse.probabilistic):
        written["probabilistic"] = export_probabilistic_jsonl(
            warehouse.probabilistic.all_records(),
            directory / _WAREHOUSE_FILES["probabilistic"],
        )
    if len(warehouse.proximity):
        written["proximity"] = export_proximity_csv(
            warehouse.proximity.all_records(), directory / _WAREHOUSE_FILES["proximity"]
        )
    return written


def import_warehouse(directory: PathLike, warehouse=None):
    """Load every dataset file found in *directory* into a warehouse.

    The inverse of :func:`export_warehouse`: missing files are skipped, so a
    partial export loads cleanly.  When *warehouse* is ``None`` a fresh
    in-memory warehouse is created; pass a SQLite-backed warehouse to ingest
    flat files into a persistent database.
    """
    from repro.storage.repositories import DataWarehouse

    directory = Path(directory)
    if warehouse is None:
        warehouse = DataWarehouse()
    loaders = {
        "devices": (import_devices_csv, warehouse.devices),
        "trajectories": (import_trajectories_csv, warehouse.trajectories),
        "rssi": (import_rssi_csv, warehouse.rssi),
        "positioning": (import_positioning_csv, warehouse.positioning),
        "probabilistic": (import_probabilistic_jsonl, warehouse.probabilistic),
        "proximity": (import_proximity_csv, warehouse.proximity),
    }
    for dataset, (loader, repository) in loaders.items():
        path = directory / _WAREHOUSE_FILES[dataset]
        if path.exists():
            repository.add_many(loader(path))
    warehouse.flush()
    return warehouse


__all__ = [
    "export_warehouse",
    "import_warehouse",
    "export_trajectories_csv",
    "import_trajectories_csv",
    "export_rssi_csv",
    "import_rssi_csv",
    "export_positioning_csv",
    "import_positioning_csv",
    "export_probabilistic_jsonl",
    "import_probabilistic_jsonl",
    "export_proximity_csv",
    "import_proximity_csv",
    "export_devices_csv",
    "import_devices_csv",
]
