"""The composable query builder over the pluggable storage backends.

The paper's Data Stream APIs "encapsulate commonly used functions and query
processing algorithms"; this module generalises them from a fixed method set
into a small declarative query language:

>>> (warehouse.query("trajectory")
...     .during(0.0, 120.0)
...     .on_floor(2)
...     .within(box)
...     .where(object_id="o12")
...     .select("object_id", "t")
...     .order_by("t")
...     .limit(100)
...     .all())

A :class:`Query` is immutable and lazy: every chained call returns a new
builder, and nothing touches the storage engine until a terminal verb runs
(``all``/``iter``/``first``/``records``/``count``/``count_by``/``distinct``/
``stats``/``snapshot``/``knn``).  The terminal compiles the builder state into
a :class:`~repro.storage.plan.QueryPlan` and hands it to the engine, which
pushes down whatever it can execute natively — parameterized SQL on SQLite,
the hash/time indices on the memory engine.  The planner then streams the
engine's rows through the *residual* steps in Python, so every query returns
identical results on every engine, differing only in how much work the engine
absorbed.  :meth:`Query.explain` reports that split without reading any data.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.storage.backends.base import StorageBackend, coerce_value, dataset_spec
from repro.storage.plan import (
    Aggregate,
    Filter,
    QueryPlan,
    Region,
    Row,
    apply_filters,
    apply_order,
    apply_projection,
    apply_window,
    compute_aggregate,
)

#: Operator spellings accepted by :meth:`Query.where` (``=`` is an alias).
_WHERE_OPS = {
    "=": "==",
    **{op: op for op in ("==", "!=", "<", "<=", ">", ">=", "in", "not_in", "between")},
}


# --------------------------------------------------------------------------- #
# The planner: engine push-down plus streaming Python residual execution
# --------------------------------------------------------------------------- #
def run_plan(backend: StorageBackend, plan: QueryPlan) -> Any:
    """Execute *plan* on *backend*: push down, then stream the residual steps.

    Returns an iterator of rows for row plans, or the computed value for
    aggregate plans.
    """
    execution = backend.execute_plan(plan)
    if plan.aggregate is not None:
        if execution.aggregate_thunk is not None:
            return execution.aggregate_thunk()
        rows = apply_filters(
            execution.rows(), execution.residual_filters, execution.residual_region
        )
        return compute_aggregate(rows, plan.aggregate)
    rows: Any = execution.rows()
    if execution.residual_filters or execution.residual_region is not None:
        rows = apply_filters(rows, execution.residual_filters, execution.residual_region)
    if execution.residual_order:
        rows = iter(apply_order(rows, execution.residual_order))
    if execution.needs_limit and (plan.limit is not None or plan.offset):
        rows = apply_window(rows, plan.offset, plan.limit)
    if execution.needs_projection and plan.columns is not None:
        rows = apply_projection(rows, plan.columns)
    return rows


def explain_plan(backend: StorageBackend, plan: QueryPlan) -> Dict[str, Any]:
    """What *backend* would do for *plan*, without executing it."""
    return _describe_execution(backend, plan, backend.execute_plan(plan))


def _describe_execution(backend: StorageBackend, plan: QueryPlan, execution) -> Dict[str, Any]:
    residual = execution.residual_steps()
    if plan.aggregate is not None and execution.aggregate_thunk is None:
        residual.append(f"aggregate {plan.aggregate.describe()}")
    pushed = [f"{step}: {how}" for step, how in execution.pushed]
    if not pushed:
        pushdown = "none"
    elif residual:
        pushdown = "partial"
    else:
        pushdown = "full"
    return {
        "backend": backend.name,
        "dataset": plan.dataset,
        "plan": _describe_plan(plan),
        "pushed": pushed,
        "residual": residual,
        "pushdown": pushdown,
    }


def profile_plan(backend: StorageBackend, plan: QueryPlan) -> Dict[str, Any]:
    """Execute *plan* and report where the time went.

    :func:`explain_plan` extended with measurements: per-stage wall time
    (plan compilation / push-down, engine execution, residual Python steps),
    rows scanned (what the engine handed back) versus rows returned (after
    the residual pipeline), and — on SQLite — the pushed statement with its
    wall time (the engine compiles one statement per plan, so the backend
    stage *is* the statement timing).

    A measurement run, not a lazy one: the engine's rows are materialised to
    separate engine time from residual time, so profile a representative
    query, not an unbounded scan.  Results are identical to :func:`run_plan`
    — the same execution pipeline runs, with counting in between.
    """
    total_start = time.perf_counter()
    execution = backend.execute_plan(plan)
    compile_seconds = time.perf_counter() - total_start
    report = _describe_execution(backend, plan, execution)

    rows_scanned: Optional[int] = None
    rows_returned: Optional[int] = None
    result: Dict[str, Any]
    if plan.aggregate is not None and execution.aggregate_thunk is not None:
        # Engine-side aggregate: the engine scans internally, so only its
        # wall time is observable, not a row count.
        backend_start = time.perf_counter()
        value = execution.aggregate_thunk()
        backend_seconds = time.perf_counter() - backend_start
        residual_seconds = 0.0
        result = {"kind": "aggregate", "value": value}
    else:
        backend_start = time.perf_counter()
        scanned = list(execution.rows())
        backend_seconds = time.perf_counter() - backend_start
        rows_scanned = len(scanned)
        residual_start = time.perf_counter()
        if plan.aggregate is not None:
            rows = apply_filters(
                iter(scanned), execution.residual_filters, execution.residual_region
            )
            value = compute_aggregate(rows, plan.aggregate)
            result = {"kind": "aggregate", "value": value}
        else:
            rows: Any = iter(scanned)
            if execution.residual_filters or execution.residual_region is not None:
                rows = apply_filters(rows, execution.residual_filters, execution.residual_region)
            if execution.residual_order:
                rows = iter(apply_order(rows, execution.residual_order))
            if execution.needs_limit and (plan.limit is not None or plan.offset):
                rows = apply_window(rows, plan.offset, plan.limit)
            if execution.needs_projection and plan.columns is not None:
                rows = apply_projection(rows, plan.columns)
            rows_returned = sum(1 for _ in rows)
            result = {"kind": "rows", "count": rows_returned}
        residual_seconds = time.perf_counter() - residual_start

    report["stages"] = {
        "compile_seconds": compile_seconds,
        "backend_seconds": backend_seconds,
        "residual_seconds": residual_seconds,
        "total_seconds": time.perf_counter() - total_start,
    }
    report["rows"] = {"scanned": rows_scanned, "returned": rows_returned}
    report["statements"] = [
        {"sql": how, "seconds": backend_seconds}
        for step, how in execution.pushed
        if step == "sql"
    ]
    report["result"] = result
    return report


def _describe_plan(plan: QueryPlan) -> Dict[str, Any]:
    described: Dict[str, Any] = {"dataset": plan.dataset}
    if plan.time_range is not None:
        described["during"] = list(plan.time_range)
    if plan.region is not None:
        described["within"] = plan.region.describe()
    if plan.filters:
        described["where"] = [f.describe() for f in plan.filters]
    if plan.columns is not None:
        described["select"] = list(plan.columns)
    if plan.order_by:
        described["order_by"] = [
            f"{column}{' desc' if descending else ''}" for column, descending in plan.order_by
        ]
    if plan.limit is not None:
        described["limit"] = plan.limit
    if plan.offset:
        described["offset"] = plan.offset
    if plan.aggregate is not None:
        described["aggregate"] = plan.aggregate.describe()
    return described


# --------------------------------------------------------------------------- #
# The fluent builder
# --------------------------------------------------------------------------- #
class Query:
    """An immutable, lazily evaluated query over one dataset of one backend."""

    def __init__(self, backend: StorageBackend, dataset: str, _plan: Optional[QueryPlan] = None):
        self._spec = dataset_spec(dataset)
        self._backend = backend
        self._plan = _plan if _plan is not None else QueryPlan(dataset=dataset)

    def _derive(self, **changes: Any) -> "Query":
        return Query(self._backend, self._plan.dataset, self._plan.extend(**changes))

    def _check_column(self, column: str) -> str:
        if column not in self._spec.columns:
            raise StorageError(
                f"dataset {self._plan.dataset!r} has no column {column!r}; "
                f"columns are {list(self._spec.columns)}"
            )
        return column

    def _coerced(self, column: str, op: str, value: Any) -> Any:
        """Normalise *value* to the column's type at build time, so a bad
        predicate fails immediately and identically on every engine."""
        if op in ("in", "not_in"):
            return tuple(
                member if member is None else coerce_value(column, member)
                for member in value
            )
        if op == "between":
            low, high = value
            return (coerce_value(column, low), coerce_value(column, high))
        return coerce_value(column, value)

    # ------------------------------------------------------------------ #
    # Chainable predicate / shaping verbs
    # ------------------------------------------------------------------ #
    def where(self, *condition: Any, **equalities: Any) -> "Query":
        """Add predicates.

        Three spellings::

            .where(object_id="o12", floor_id=2)   # keyword equalities
            .where("rssi", "<", -60.0)            # explicit operator
            .where(lambda row: row["x"] > row["y"])  # arbitrary predicate

        Operators: ``==``/``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``in``,
        ``not_in``, ``between``.  Callable predicates can never be pushed down
        and always run in the streaming Python fallback.
        """
        filters = list(self._plan.filters)
        if condition:
            if len(condition) == 1 and callable(condition[0]):
                filters.append(Filter("*", "python", condition[0]))
            elif len(condition) == 3:
                column, op, value = condition
                if op not in _WHERE_OPS:
                    raise StorageError(
                        f"unknown operator {op!r}; expected one of {sorted(set(_WHERE_OPS.values()))}"
                    )
                op = _WHERE_OPS[op]
                column = self._check_column(column)
                filters.append(Filter(column, op, self._coerced(column, op, value)))
            else:
                raise StorageError(
                    "where() takes keyword equalities, a (column, op, value) "
                    "triple, or a single callable predicate"
                )
        for column, value in equalities.items():
            column = self._check_column(column)
            filters.append(Filter(column, "==", self._coerced(column, "==", value)))
        return self._derive(filters=tuple(filters))

    def filter(self, predicate: Callable[[Row], bool]) -> "Query":
        """Alias for ``where(predicate)`` — an explicit Python-fallback filter."""
        return self.where(predicate)

    def during(self, t_start: float, t_end: float) -> "Query":
        """Restrict to rows whose time column lies in ``[t_start, t_end]``."""
        if self._spec.time_column is None:
            raise StorageError(f"dataset {self._plan.dataset!r} has no time column")
        if t_end < t_start:
            raise StorageError("time window end must not precede its start")
        low, high = float(t_start), float(t_end)
        if self._plan.time_range is not None:  # intersect repeated windows
            low = max(low, self._plan.time_range[0])
            high = min(high, self._plan.time_range[1])
        return self._derive(time_range=(low, high))

    def on_floor(self, floor_id: int) -> "Query":
        """Restrict to rows on *floor_id* (datasets with a location)."""
        return self.where(floor_id=int(floor_id))

    def within(self, box: Any) -> "Query":
        """Restrict to rows inside an axis-aligned box over ``(x, y)``.

        Accepts a :class:`~repro.geometry.polygon.BoundingBox` or a
        ``(min_x, min_y, max_x, max_y)`` sequence.  Only spatial datasets
        (trajectory, positioning) support it; on SQLite the box is answered
        with the grid-bucket index.
        """
        if not self._spec.spatial:
            raise StorageError(
                f"dataset {self._plan.dataset!r} has no coordinates; "
                "within() applies to spatial datasets only"
            )
        if hasattr(box, "min_x"):
            region = Region(float(box.min_x), float(box.min_y), float(box.max_x), float(box.max_y))
        else:
            min_x, min_y, max_x, max_y = box
            region = Region(float(min_x), float(min_y), float(max_x), float(max_y))
        if region.min_x > region.max_x or region.min_y > region.max_y:
            raise StorageError("within() box must have min <= max on both axes")
        if self._plan.region is not None:  # intersect repeated boxes
            region = Region(
                max(region.min_x, self._plan.region.min_x),
                max(region.min_y, self._plan.region.min_y),
                min(region.max_x, self._plan.region.max_x),
                min(region.max_y, self._plan.region.max_y),
            )
        return self._derive(region=region)

    def select(self, *columns: str) -> "Query":
        """Project the result rows down to *columns*."""
        if not columns:
            raise StorageError("select() needs at least one column")
        return self._derive(columns=tuple(self._check_column(c) for c in columns))

    def order_by(self, *columns: str) -> "Query":
        """Sort by *columns*; prefix a name with ``-`` for descending."""
        if not columns:
            raise StorageError("order_by() needs at least one column")
        keys = []
        for column in columns:
            descending = column.startswith("-")
            keys.append((self._check_column(column.lstrip("-")), descending))
        return self._derive(order_by=tuple(keys))

    def limit(self, n: int) -> "Query":
        """Keep at most *n* result rows."""
        if n < 0:
            raise StorageError("limit() must be non-negative")
        return self._derive(limit=int(n))

    def offset(self, n: int) -> "Query":
        """Skip the first *n* result rows."""
        if n < 0:
            raise StorageError("offset() must be non-negative")
        return self._derive(offset=int(n))

    # ------------------------------------------------------------------ #
    # Plan compilation
    # ------------------------------------------------------------------ #
    def plan(self, verb: str = "all", column: Optional[str] = None,
             by: Optional[str] = None) -> QueryPlan:
        """Compile the builder state into the :class:`QueryPlan` *verb* runs."""
        plan = self._plan
        aggregate = self._aggregate_for(verb, column, by)
        if aggregate is not None:
            if plan.limit is not None or plan.offset:
                raise StorageError(
                    f"{verb}() cannot be combined with limit()/offset()"
                )
            if plan.columns is not None:
                raise StorageError(f"{verb}() cannot be combined with select()")
            return plan.extend(aggregate=aggregate, order_by=())
        if not plan.order_by and self._spec.time_column is not None:
            # Deterministic default: time order (ties keep insertion order on
            # every engine), so results match across backends byte-for-byte.
            plan = plan.extend(order_by=((self._spec.time_column, False),))
        return plan

    def _aggregate_for(self, verb: str, column: Optional[str], by: Optional[str]) -> Optional[Aggregate]:
        if verb in ("all", "iter", "first"):
            return None
        if verb == "count":
            return Aggregate("count")
        if verb == "count_by":
            if column is not None:
                return Aggregate("count_distinct_by", column=self._check_column(column), by=by)
            return Aggregate("count_by", by=by)
        if verb == "distinct":
            return Aggregate("distinct", column=column)
        if verb == "stats":
            return Aggregate("stats", column=column, by=by)
        raise StorageError(f"unknown query verb {verb!r}")

    # ------------------------------------------------------------------ #
    # Terminal verbs
    # ------------------------------------------------------------------ #
    def iter(self) -> Iterator[Row]:
        """Stream the result rows (lazy on engines that support it)."""
        return run_plan(self._backend, self.plan("iter"))

    __iter__ = iter

    def all(self) -> List[Row]:
        """Every result row, as plain dictionaries."""
        return list(self.iter())

    def first(self) -> Optional[Row]:
        """The first result row, or ``None`` when the result is empty."""
        if self._plan.limit == 0:
            return None
        return next(run_plan(self._backend, self.limit(1).plan("first")), None)

    def records(self) -> List[Any]:
        """Every result row converted to its typed record dataclass."""
        if self._plan.columns is not None:
            raise StorageError("records() needs full rows; drop the select() projection")
        from repro.storage.repositories import ROW_CONVERTERS

        converter = ROW_CONVERTERS[self._plan.dataset]
        return [converter(row) for row in self.iter()]

    def count(self) -> int:
        """Number of result rows."""
        return run_plan(self._backend, self.plan("count"))

    def count_by(self, by: str, distinct: Optional[str] = None) -> Dict[Any, int]:
        """Rows per distinct value of *by* (or distinct *distinct* values per group)."""
        return run_plan(self._backend, self.plan("count_by", column=distinct, by=self._check_column(by)))

    def distinct(self, column: str) -> List[Any]:
        """Sorted distinct values of *column* over the result rows."""
        return run_plan(self._backend, self.plan("distinct", column=self._check_column(column)))

    def stats(self, column: str, by: Optional[str] = None) -> Any:
        """count/mean/min/max/sum of *column*, optionally grouped by *by*."""
        return run_plan(
            self._backend,
            self.plan(
                "stats",
                column=self._check_column(column),
                by=self._check_column(by) if by is not None else None,
            ),
        )

    # Specialised trajectory terminals (native operators; the paper's
    # snapshot and kNN query-processing algorithms).
    def snapshot(self, t: float, tolerance: float = 1.0) -> Dict[str, Row]:
        """Per object, the trajectory row closest in time to *t* (± *tolerance*)."""
        self._require_bare("snapshot", allow_floor=False)
        return self._backend.snapshot_rows(float(t), float(tolerance))

    def knn(self, x: float, y: float, t: float, k: int = 5,
            tolerance: float = 1.0) -> List[Tuple[str, float]]:
        """The *k* objects closest to ``(x, y)`` around time *t*.

        The floor comes from a preceding :meth:`on_floor` call.
        """
        floor_filters = [
            f for f in self._plan.filters if f.column == "floor_id" and f.op == "=="
        ]
        if len(floor_filters) != 1:
            raise StorageError("knn() needs exactly one on_floor() restriction")
        self._require_bare("knn", allow_floor=True)
        return self._backend.knn(
            int(floor_filters[0].value), float(x), float(y), float(t), int(k), float(tolerance)
        )

    def _require_bare(self, verb: str, allow_floor: bool) -> None:
        plan = self._plan
        extra = [
            f for f in plan.filters
            if not (allow_floor and f.column == "floor_id" and f.op == "==")
        ]
        if plan.dataset != "trajectory":
            raise StorageError(f"{verb}() is a trajectory query")
        if extra or plan.region or plan.time_range or plan.columns or \
                plan.order_by or plan.limit is not None or plan.offset:
            raise StorageError(
                f"{verb}() is a native operator and takes no other query steps"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def explain(self, verb: str = "all", column: Optional[str] = None,
                by: Optional[str] = None) -> Dict[str, Any]:
        """Report what the engine pushes down for this query, without running it.

        *verb* selects the terminal the report is for (``all`` by default;
        ``count``/``count_by``/``distinct``/``stats`` take the same *column*
        / *by* arguments as the corresponding terminal verbs).
        """
        return explain_plan(self._backend, self.plan(verb, column=column, by=by))

    def profile(self, verb: str = "all", column: Optional[str] = None,
                by: Optional[str] = None) -> Dict[str, Any]:
        """Execute this query and report per-stage wall time and row counts.

        The :meth:`explain` report plus ``stages`` (compile / backend /
        residual / total seconds), ``rows`` (scanned by the engine vs
        returned after residual steps), ``statements`` (the pushed SQL and
        its timing, SQLite only) and the ``result`` summary.  Same *verb* /
        *column* / *by* selection as :meth:`explain`.
        """
        return profile_plan(self._backend, self.plan(verb, column=column, by=by))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({self._backend.name}:{_describe_plan(self._plan)!r})"


__all__ = ["Query", "run_plan", "explain_plan", "profile_plan"]
