"""Storage: pluggable backends, typed repositories, query builder, export."""

from repro.storage.tables import Row, Table, TableSchema
from repro.storage.backends import (
    BACKENDS,
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    backend_by_name,
)
from repro.storage.plan import Aggregate, Filter, PlanExecution, QueryPlan, Region
from repro.storage.query import Query, explain_plan, run_plan
from repro.storage.repositories import (
    DataWarehouse,
    DeviceRepository,
    PositioningRepository,
    ProbabilisticPositioningRepository,
    ProximityRepository,
    RSSIRepository,
    TrajectoryRepository,
)
from repro.storage.stream import DataStreamAPI
from repro.storage.export import (
    export_devices_csv,
    export_positioning_csv,
    export_probabilistic_jsonl,
    export_proximity_csv,
    export_rssi_csv,
    export_trajectories_csv,
    export_warehouse,
    import_devices_csv,
    import_positioning_csv,
    import_probabilistic_jsonl,
    import_proximity_csv,
    import_rssi_csv,
    import_trajectories_csv,
    import_warehouse,
)

__all__ = [
    "Row",
    "Table",
    "TableSchema",
    "BACKENDS",
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "backend_by_name",
    "Aggregate",
    "Filter",
    "PlanExecution",
    "QueryPlan",
    "Region",
    "Query",
    "explain_plan",
    "run_plan",
    "DataWarehouse",
    "DeviceRepository",
    "PositioningRepository",
    "ProbabilisticPositioningRepository",
    "ProximityRepository",
    "RSSIRepository",
    "TrajectoryRepository",
    "DataStreamAPI",
    "export_devices_csv",
    "export_positioning_csv",
    "export_probabilistic_jsonl",
    "export_proximity_csv",
    "export_rssi_csv",
    "export_trajectories_csv",
    "export_warehouse",
    "import_devices_csv",
    "import_positioning_csv",
    "import_probabilistic_jsonl",
    "import_proximity_csv",
    "import_rssi_csv",
    "import_trajectories_csv",
    "import_warehouse",
]
