"""The logical query plan shared by the builder and the storage engines.

The composable query layer splits a query into three stages:

1. the fluent builder (:mod:`repro.storage.query`) accumulates predicates and
   compiles them into one immutable :class:`QueryPlan`;
2. the storage engine inspects the plan and *pushes down* whatever it can
   execute natively — parameterized SQL on SQLite, the hash/time indices on
   the memory engine — returning a :class:`PlanExecution` that pairs a lazy
   row source with a record of what was pushed and what remains;
3. the planner (:func:`repro.storage.query.execute_plan`) applies the
   *residual* steps (un-pushed filters, ordering, projection, limits,
   aggregation) as a streaming Python fallback.

Everything in this module is engine-independent: plain dataclasses plus the
portable Python evaluators the fallback path uses.  Keeping the datatypes
here (rather than in :mod:`repro.storage.query`) lets the backend base class
import them without a circular dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError

Row = Dict[str, Any]

#: Comparison operators a :class:`Filter` may carry.  ``python`` marks an
#: arbitrary callable predicate, which no engine can push down.
FILTER_OPS = ("==", "!=", "<", "<=", ">", ">=", "in", "not_in", "between", "python")


@dataclass(frozen=True)
class Filter:
    """One column predicate: ``column <op> value``.

    For ``in``/``not_in`` the value is a tuple of candidates; for ``between``
    a ``(low, high)`` pair; for ``python`` a callable ``Row -> bool`` (the
    column is then purely informational and may be ``"*"``).
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise StorageError(
                f"unknown filter operator {self.op!r}; expected one of {FILTER_OPS}"
            )
        if self.op in ("in", "not_in") and not isinstance(self.value, tuple):
            object.__setattr__(self, "value", tuple(self.value))
        if self.op == "between":
            low, high = self.value  # raises early on malformed pairs
            object.__setattr__(self, "value", (low, high))
        if self.op == "python" and not callable(self.value):
            raise StorageError("a 'python' filter requires a callable predicate")

    def describe(self) -> str:
        if self.op == "python":
            name = getattr(self.value, "__name__", "<lambda>")
            return f"python:{name}"
        if self.op == "between":
            return f"{self.column} between {self.value[0]!r} and {self.value[1]!r}"
        return f"{self.column} {self.op} {self.value!r}"

    def matches(self, row: Row) -> bool:
        """Evaluate this predicate against a row (the portable fallback)."""
        if self.op == "python":
            return bool(self.value(row))
        cell = row.get(self.column)
        if self.op == "==":
            return cell == self.value
        if self.op == "!=":
            return cell != self.value
        if self.op == "in":
            return cell in self.value
        if self.op == "not_in":
            return cell not in self.value
        if cell is None:
            return False  # SQL semantics: NULL never satisfies an inequality
        try:
            if self.op == "<":
                return cell < self.value
            if self.op == "<=":
                return cell <= self.value
            if self.op == ">":
                return cell > self.value
            if self.op == ">=":
                return cell >= self.value
            return self.value[0] <= cell <= self.value[1]  # between
        except TypeError:
            return False  # incomparable value types can never match a cell


@dataclass(frozen=True)
class Region:
    """An axis-aligned floor rectangle over the ``x``/``y`` columns."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def describe(self) -> str:
        return (
            f"x in [{self.min_x:g}, {self.max_x:g}], "
            f"y in [{self.min_y:g}, {self.max_y:g}]"
        )

    def matches(self, row: Row) -> bool:
        x, y = row.get("x"), row.get("y")
        if x is None or y is None:
            return False
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y


@dataclass(frozen=True)
class Aggregate:
    """A terminal aggregation verb.

    ``kind`` is one of ``count`` (rows), ``count_by`` (rows per group),
    ``count_distinct_by`` (distinct *column* values per group), ``distinct``
    (sorted distinct values of *column*) or ``stats`` (count/mean/min/max/sum
    of *column*, optionally grouped by *by*).
    """

    kind: str
    column: Optional[str] = None
    by: Optional[str] = None

    def describe(self) -> str:
        if self.kind == "count":
            return "count(*)"
        if self.kind == "count_by":
            return f"count(*) by {self.by}"
        if self.kind == "count_distinct_by":
            return f"count(distinct {self.column}) by {self.by}"
        if self.kind == "distinct":
            return f"distinct {self.column}"
        return f"stats({self.column})" + (f" by {self.by}" if self.by else "")


@dataclass(frozen=True)
class QueryPlan:
    """The immutable logical plan one builder query compiles to."""

    dataset: str
    filters: Tuple[Filter, ...] = ()
    time_range: Optional[Tuple[float, float]] = None
    region: Optional[Region] = None
    columns: Optional[Tuple[str, ...]] = None
    #: ``(column, descending)`` pairs, applied left to right.
    order_by: Tuple[Tuple[str, bool], ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    aggregate: Optional[Aggregate] = None

    def extend(self, **changes: Any) -> "QueryPlan":
        """A copy of this plan with *changes* applied (builders are immutable)."""
        return replace(self, **changes)


@dataclass
class PlanExecution:
    """What an engine hands back for one plan: a lazy row source plus a
    faithful record of the work it took on versus the work it left over.

    ``rows`` and ``aggregate_thunk`` are zero-argument thunks so that
    ``explain()`` can inspect the push-down decision without touching any
    data.  The residual fields name exactly the steps the planner must still
    run in Python; each ``pushed`` entry is a ``(step, how)`` pair naming a
    plan step and the native mechanism that executed it (index, SQL
    clause, ...).
    """

    rows: Callable[[], Iterator[Row]]
    pushed: List[Tuple[str, str]] = field(default_factory=list)
    residual_filters: Tuple[Filter, ...] = ()
    residual_region: Optional[Region] = None
    residual_order: Tuple[Tuple[str, bool], ...] = ()
    needs_projection: bool = False
    needs_limit: bool = False
    #: Engine-native aggregate execution; ``None`` when the aggregate (if
    #: any) is left to the portable fallback.
    aggregate_thunk: Optional[Callable[[], Any]] = None

    def residual_steps(self) -> List[str]:
        """Human-readable names of the Python-fallback steps."""
        steps = [f"filter {f.describe()}" for f in self.residual_filters]
        if self.residual_region is not None:
            steps.append(f"region {self.residual_region.describe()}")
        for column, descending in self.residual_order:
            steps.append(f"order by {column}{' desc' if descending else ''}")
        if self.needs_limit:
            steps.append("limit/offset")
        if self.needs_projection:
            steps.append("project columns")
        return steps


# --------------------------------------------------------------------------- #
# Portable evaluators used by the streaming Python fallback
# --------------------------------------------------------------------------- #
def apply_filters(
    rows: Iterable[Row], filters: Tuple[Filter, ...], region: Optional[Region] = None
) -> Iterator[Row]:
    """Stream *rows* through the residual predicates."""
    for row in rows:
        if region is not None and not region.matches(row):
            continue
        if all(f.matches(row) for f in filters):
            yield row


def _sort_key(column: str) -> Callable[[Row], Tuple[bool, Any]]:
    # None sorts before any value, mirroring SQLite's NULLS-first default.
    return lambda row: ((cell := row.get(column)) is not None, cell)


def apply_order(rows: Iterable[Row], order_by: Tuple[Tuple[str, bool], ...]) -> List[Row]:
    """Stable multi-key sort (applied right-to-left, like SQL ORDER BY)."""
    ordered = list(rows)
    for column, descending in reversed(order_by):
        ordered.sort(key=_sort_key(column), reverse=descending)
    return ordered


def apply_window(rows: Iterable[Row], offset: int, limit: Optional[int]) -> Iterator[Row]:
    """Stream the ``[offset, offset + limit)`` slice of *rows*."""
    for index, row in enumerate(rows):
        if index < offset:
            continue
        if limit is not None and index >= offset + limit:
            return
        yield row


def apply_projection(rows: Iterable[Row], columns: Tuple[str, ...]) -> Iterator[Row]:
    for row in rows:
        yield {column: row.get(column) for column in columns}


def compute_aggregate(rows: Iterable[Row], aggregate: Aggregate) -> Any:
    """The portable fallback for every aggregate kind."""
    if aggregate.kind == "count":
        return sum(1 for _ in rows)
    if aggregate.kind == "count_by":
        counts: Dict[Any, int] = {}
        for row in rows:
            key = row.get(aggregate.by)
            counts[key] = counts.get(key, 0) + 1
        return counts
    if aggregate.kind == "count_distinct_by":
        groups: Dict[Any, set] = {}
        for row in rows:
            values = groups.setdefault(row.get(aggregate.by), set())
            value = row.get(aggregate.column)
            if value is not None:  # COUNT(DISTINCT col) ignores NULLs in SQL
                values.add(value)
        return {key: len(values) for key, values in groups.items()}
    if aggregate.kind == "distinct":
        return sorted_distinct(row.get(aggregate.column) for row in rows)
    if aggregate.kind == "stats":
        if aggregate.by is None:
            return _stats([row.get(aggregate.column) for row in rows])
        grouped: Dict[Any, List[float]] = {}
        for row in rows:
            grouped.setdefault(row.get(aggregate.by), []).append(row.get(aggregate.column))
        return {key: _stats(values) for key, values in grouped.items()}
    raise StorageError(f"unknown aggregate kind {aggregate.kind!r}")


def sorted_distinct(values: Iterable[Any]) -> List[Any]:
    """Distinct *values*, ``None`` first then sorted (SQL ``DISTINCT`` order)."""
    unique = set(values)
    has_none = None in unique
    unique.discard(None)
    return ([None] if has_none else []) + sorted(unique)


def _stats(values: List[Any]) -> Optional[Dict[str, float]]:
    values = [value for value in values if value is not None]
    if not values:
        return None
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "sum": float(sum(values)),
    }


__all__ = [
    "Row",
    "FILTER_OPS",
    "Filter",
    "Region",
    "Aggregate",
    "QueryPlan",
    "PlanExecution",
    "apply_filters",
    "apply_order",
    "apply_window",
    "apply_projection",
    "compute_aggregate",
    "sorted_distinct",
]
