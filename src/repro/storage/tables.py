"""A small in-memory relational table with secondary indexes.

The paper stores generated data in PostgreSQL with "efficient indices"
(Section 4.2).  This module provides an offline substitute: a typed table
whose rows are dictionaries, with optional hash indexes on equality-queried
columns and a sorted index on the timestamp column for range scans.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import StorageError

Row = Dict[str, Any]


@dataclass
class TableSchema:
    """Column names plus the indexing configuration of a table."""

    name: str
    columns: Tuple[str, ...]
    hash_indexes: Tuple[str, ...] = ()
    ordered_index: Optional[str] = None
    #: Columns forming a uniqueness constraint; inserting a second row with
    #: the same key raises :class:`StorageError` instead of silently
    #: duplicating data.
    unique_key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise StorageError(f"table {self.name}: needs at least one column")
        unknown = [c for c in self.hash_indexes if c not in self.columns]
        if unknown:
            raise StorageError(f"table {self.name}: hash index on unknown columns {unknown}")
        if self.ordered_index is not None and self.ordered_index not in self.columns:
            raise StorageError(
                f"table {self.name}: ordered index on unknown column {self.ordered_index}"
            )
        unknown = [c for c in self.unique_key if c not in self.columns]
        if unknown:
            raise StorageError(f"table {self.name}: unique key on unknown columns {unknown}")


class Table:
    """An append-oriented, indexed, in-memory relation."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._hash: Dict[str, Dict[Any, List[int]]] = {
            column: {} for column in schema.hash_indexes
        }
        # Sorted list of (key, row_index) pairs for the ordered index.
        self._ordered: List[Tuple[Any, int]] = []
        #: Existing unique-key tuples (only populated when the schema has one).
        self._unique: set = set()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _stored_row(self, row: Row) -> Row:
        missing = [c for c in self.schema.columns if c not in row]
        if missing:
            raise StorageError(
                f"table {self.schema.name}: row is missing columns {missing}"
            )
        return {column: row[column] for column in self.schema.columns}

    def _key_of(self, stored: Row) -> Tuple:
        return tuple(stored[column] for column in self.schema.unique_key)

    def _duplicate_error(self, key: Tuple) -> StorageError:
        described = dict(zip(self.schema.unique_key, key))
        return StorageError(
            f"table {self.schema.name}: duplicate row for unique key {described}"
        )

    def _insert_stored(self, stored: Row) -> int:
        row_id = len(self._rows)
        self._rows.append(stored)
        for column in self.schema.hash_indexes:
            self._hash[column].setdefault(stored[column], []).append(row_id)
        if self.schema.ordered_index is not None:
            key = stored[self.schema.ordered_index]
            bisect.insort(self._ordered, (key, row_id))
        if self.schema.unique_key:
            self._unique.add(self._key_of(stored))
        return row_id

    def insert(self, row: Row) -> int:
        """Insert one row; returns its row id."""
        stored = self._stored_row(row)
        if self.schema.unique_key:
            key = self._key_of(stored)
            if key in self._unique:
                raise self._duplicate_error(key)
        return self._insert_stored(stored)

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number inserted.

        The batch is atomic with respect to the unique key: every row is
        validated (against the table *and* the rest of the batch) before any
        row is inserted, so a duplicate leaves the table unchanged.
        """
        stored_rows = [self._stored_row(row) for row in rows]
        if self.schema.unique_key:
            batch_keys: set = set()
            for stored in stored_rows:
                key = self._key_of(stored)
                if key in self._unique or key in batch_keys:
                    raise self._duplicate_error(key)
                batch_keys.add(key)
        for stored in stored_rows:
            self._insert_stored(stored)
        return len(stored_rows)

    def clear(self) -> None:
        """Remove every row (indexes included)."""
        self._rows.clear()
        for index in self._hash.values():
            index.clear()
        self._ordered.clear()
        self._unique.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def all_rows(self) -> List[Row]:
        """Every row, in insertion order."""
        return list(self._rows)

    def row(self, row_id: int) -> Row:
        """The row with the given id."""
        try:
            return self._rows[row_id]
        except IndexError:
            raise StorageError(f"table {self.schema.name}: no row {row_id}")

    def lookup(self, column: str, value: Any) -> List[Row]:
        """Equality lookup, using the hash index when one exists."""
        if column in self._hash:
            return [self._rows[i] for i in self._hash[column].get(value, [])]
        return [row for row in self._rows if row.get(column) == value]

    def range(self, low: Any, high: Any) -> List[Row]:
        """Rows whose ordered-index key lies in ``[low, high]``."""
        if self.schema.ordered_index is None:
            raise StorageError(
                f"table {self.schema.name}: has no ordered index for range queries"
            )
        start = bisect.bisect_left(self._ordered, (low, -1))
        end = bisect.bisect_right(self._ordered, (high, len(self._rows)))
        return [self._rows[row_id] for _, row_id in self._ordered[start:end]]

    def ordered_bounds(self) -> Optional[Tuple[Any, Any]]:
        """``(min, max)`` of the ordered-index key, or ``None`` when empty."""
        if self.schema.ordered_index is None:
            raise StorageError(
                f"table {self.schema.name}: has no ordered index for bounds queries"
            )
        if not self._ordered:
            return None
        return (self._ordered[0][0], self._ordered[-1][0])

    def iter_ordered(self) -> Iterator[Row]:
        """Every row, in ordered-index key order (single sorted pass)."""
        if self.schema.ordered_index is None:
            raise StorageError(
                f"table {self.schema.name}: has no ordered index for ordered iteration"
            )
        return (self._rows[row_id] for _, row_id in self._ordered)

    def select(self, predicate: Callable[[Row], bool]) -> List[Row]:
        """Full scan with an arbitrary predicate."""
        return [row for row in self._rows if predicate(row)]

    def distinct(self, column: str) -> List[Any]:
        """Distinct values of *column* (sorted when possible)."""
        if column in self._hash:
            values = list(self._hash[column].keys())
        else:
            values = list({row.get(column) for row in self._rows})
        try:
            return sorted(values)
        except TypeError:
            return values

    def count_by(self, column: str) -> Dict[Any, int]:
        """Number of rows per distinct value of *column*."""
        if column in self._hash:
            return {value: len(ids) for value, ids in self._hash[column].items()}
        counts: Dict[Any, int] = {}
        for row in self._rows:
            counts[row.get(column)] = counts.get(row.get(column), 0) + 1
        return counts


__all__ = ["Row", "TableSchema", "Table"]
