"""The in-memory storage engine.

This is the original storage layer of the reproduction, refactored behind the
:class:`~repro.storage.backends.base.StorageBackend` interface: one indexed
:class:`~repro.storage.tables.Table` per dataset, with hash indexes on the
equality-queried columns and a sorted index on the time column.  Data lives
for the duration of the process; the engine is the default because it needs
no configuration and is fastest for small and medium runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.storage.backends.base import DATASETS, Row, StorageBackend, dataset_spec
from repro.storage.plan import Filter, PlanExecution, QueryPlan, sorted_distinct
from repro.storage.tables import Table, TableSchema


class MemoryBackend(StorageBackend):
    """Indexed in-memory tables (volatile, zero-configuration)."""

    name = "memory"
    persistent = False

    #: Columns whose hash index is worth preferring over a time window:
    #: per-entity identifiers keep a small row count per key, whereas
    #: categorical columns (floor_id, partition_id, method, ...) each cover a
    #: large slice of the table and would demote a narrow time window to a
    #: Python residual filter.
    HIGH_SELECTIVITY_COLUMNS = frozenset({"object_id", "device_id"})

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {
            spec.name: Table(
                TableSchema(
                    name=spec.name,
                    columns=spec.columns,
                    hash_indexes=spec.hash_indexes,
                    ordered_index=spec.time_column,
                    unique_key=spec.unique_key,
                )
            )
            for spec in DATASETS.values()
        }

    def table_handle(self, dataset: str) -> Table:
        """The underlying :class:`Table` (memory-engine escape hatch)."""
        dataset_spec(dataset)
        return self._tables[dataset]

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    def insert_rows(self, dataset: str, rows: List[Row]) -> int:
        inserted = self.table_handle(dataset).insert_many(rows)
        self._observe_insert(dataset, inserted)
        return inserted

    def count(self, dataset: str) -> int:
        return len(self.table_handle(dataset))

    def all_rows(self, dataset: str) -> List[Row]:
        return self.table_handle(dataset).all_rows()

    def rows_eq(
        self, dataset: str, column: str, value: Any, order_by: Optional[str] = None
    ) -> List[Row]:
        spec = dataset_spec(dataset)
        if column not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {column!r}")
        if order_by is not None and order_by not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {order_by!r}")
        rows = self.table_handle(dataset).lookup(column, value)
        if order_by is not None:
            rows.sort(key=lambda row: row[order_by])
        return rows

    def rows_in_time_range(self, dataset: str, low: float, high: float) -> List[Row]:
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).range(low, high)

    def iter_time_ordered(self, dataset: str) -> Iterator[Row]:
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).iter_ordered()

    def distinct(self, dataset: str, column: str) -> List[Any]:
        return self.table_handle(dataset).distinct(column)

    def count_by(self, dataset: str, column: str) -> Dict[Any, int]:
        return self.table_handle(dataset).count_by(column)

    def clear(self, dataset: str) -> None:
        self.table_handle(dataset).clear()

    # ------------------------------------------------------------------ #
    # Logical-plan execution (index-aware push-down)
    # ------------------------------------------------------------------ #
    def execute_plan(self, plan: QueryPlan) -> PlanExecution:
        """Choose the best in-memory access path for *plan*.

        Access-path order of preference: a hash index on a high-selectivity
        equality filter (per-entity ids), else the sorted time index for a
        time window or a time-ordered scan, else any remaining hash-indexed
        equality, else a full table scan.  Whatever the chosen path does not
        answer stays residual for the planner's Python fallback; aggregates
        are absorbed when nothing residual is left in front of them.
        """
        spec = dataset_spec(plan.dataset)
        table = self.table_handle(plan.dataset)
        pushed: List[Tuple[str, str]] = []
        residual = list(plan.filters)
        time_ordered = False

        hash_candidates = [
            f for f in residual if f.op == "==" and f.column in spec.hash_indexes
        ]
        hash_eq = next(
            (f for f in hash_candidates if f.column in self.HIGH_SELECTIVITY_COLUMNS),
            None,
        )
        if hash_eq is None and plan.time_range is None:
            # Without a time window any indexed equality beats a full scan.
            hash_eq = next(iter(hash_candidates), None)
        if hash_eq is not None:
            residual.remove(hash_eq)
            rows = lambda: iter(table.lookup(hash_eq.column, hash_eq.value))
            pushed.append((f"where {hash_eq.describe()}", f"hash index on {hash_eq.column}"))
            if plan.time_range is not None:
                residual.append(Filter(spec.time_column, "between", plan.time_range))
        elif plan.time_range is not None and spec.time_column is not None:
            low, high = plan.time_range
            rows = lambda: iter(table.range(low, high))
            pushed.append(
                ("during", f"sorted {spec.time_column} index (bisect range scan)")
            )
            time_ordered = True
        elif (
            spec.time_column is not None
            and plan.order_by == ((spec.time_column, False),)
        ):
            rows = table.iter_ordered
            pushed.append(("order_by", f"sorted {spec.time_column} index scan"))
            time_ordered = True
        else:
            rows = lambda: iter(table.all_rows())

        residual_order = plan.order_by
        if time_ordered and plan.order_by == ((spec.time_column, False),):
            residual_order = ()
            if plan.time_range is not None:
                pushed.append(("order_by", f"sorted {spec.time_column} index"))

        execution = PlanExecution(
            rows=rows,
            pushed=pushed,
            residual_filters=tuple(residual),
            residual_region=plan.region,
            residual_order=residual_order,
            needs_projection=plan.columns is not None,
            needs_limit=plan.limit is not None or plan.offset > 0,
        )

        aggregate = plan.aggregate
        if aggregate is None:
            return execution
        fully_answered = not residual and plan.region is None
        if fully_answered and aggregate.kind == "count":
            if hash_eq is None and plan.time_range is None:
                execution.aggregate_thunk = lambda: len(table)
                pushed.append(("aggregate count(*)", "table length (O(1))"))
            else:
                execution.aggregate_thunk = lambda: sum(1 for _ in rows())
                pushed.append(("aggregate count(*)", "chosen access path row count"))
        elif aggregate.kind == "count_by" and fully_answered and hash_eq is None \
                and plan.time_range is None:
            execution.aggregate_thunk = lambda: table.count_by(aggregate.by)
            how = (
                f"hash index on {aggregate.by}"
                if aggregate.by in spec.hash_indexes
                else "single table scan"
            )
            pushed.append((f"aggregate {aggregate.describe()}", how))
        elif aggregate.kind == "distinct" and fully_answered and hash_eq is None \
                and plan.time_range is None:
            execution.aggregate_thunk = lambda: sorted_distinct(
                table.distinct(aggregate.column)
            )
            how = (
                f"hash index on {aggregate.column}"
                if aggregate.column in spec.hash_indexes
                else "single table scan"
            )
            pushed.append((f"aggregate {aggregate.describe()}", how))
        return execution

    # ------------------------------------------------------------------ #
    # Native query operators
    # ------------------------------------------------------------------ #
    def time_bounds(self, dataset: str):
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).ordered_bounds()


__all__ = ["MemoryBackend"]
