"""The in-memory storage engine.

This is the original storage layer of the reproduction, refactored behind the
:class:`~repro.storage.backends.base.StorageBackend` interface: one indexed
:class:`~repro.storage.tables.Table` per dataset, with hash indexes on the
equality-queried columns and a sorted index on the time column.  Data lives
for the duration of the process; the engine is the default because it needs
no configuration and is fastest for small and medium runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.core.errors import StorageError
from repro.storage.backends.base import DATASETS, Row, StorageBackend, dataset_spec
from repro.storage.tables import Table, TableSchema


class MemoryBackend(StorageBackend):
    """Indexed in-memory tables (volatile, zero-configuration)."""

    name = "memory"
    persistent = False

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {
            spec.name: Table(
                TableSchema(
                    name=spec.name,
                    columns=spec.columns,
                    hash_indexes=spec.hash_indexes,
                    ordered_index=spec.time_column,
                )
            )
            for spec in DATASETS.values()
        }

    def table_handle(self, dataset: str) -> Table:
        """The underlying :class:`Table` (memory-engine escape hatch)."""
        dataset_spec(dataset)
        return self._tables[dataset]

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    def insert_rows(self, dataset: str, rows: List[Row]) -> int:
        return self.table_handle(dataset).insert_many(rows)

    def count(self, dataset: str) -> int:
        return len(self.table_handle(dataset))

    def all_rows(self, dataset: str) -> List[Row]:
        return self.table_handle(dataset).all_rows()

    def rows_eq(
        self, dataset: str, column: str, value: Any, order_by: Optional[str] = None
    ) -> List[Row]:
        spec = dataset_spec(dataset)
        if column not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {column!r}")
        if order_by is not None and order_by not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {order_by!r}")
        rows = self.table_handle(dataset).lookup(column, value)
        if order_by is not None:
            rows.sort(key=lambda row: row[order_by])
        return rows

    def rows_in_time_range(self, dataset: str, low: float, high: float) -> List[Row]:
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).range(low, high)

    def iter_time_ordered(self, dataset: str) -> Iterator[Row]:
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).iter_ordered()

    def distinct(self, dataset: str, column: str) -> List[Any]:
        return self.table_handle(dataset).distinct(column)

    def count_by(self, dataset: str, column: str) -> Dict[Any, int]:
        return self.table_handle(dataset).count_by(column)

    def clear(self, dataset: str) -> None:
        self.table_handle(dataset).clear()

    # ------------------------------------------------------------------ #
    # Native query operators
    # ------------------------------------------------------------------ #
    def time_bounds(self, dataset: str):
        if dataset_spec(dataset).time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return self.table_handle(dataset).ordered_bounds()


__all__ = ["MemoryBackend"]
