"""The SQLite storage engine.

The paper's prototype stores all generated mobility data in PostgreSQL "with
efficient indices"; this engine is the offline equivalent — a single-file
on-disk database that survives the process, holds datasets far larger than
RAM, and answers the Data Stream API queries with index-backed SQL.

Engine configuration (mirroring the exemplar schema in SNIPPETS.md):

* ``journal_mode=WAL`` — write-ahead logging so readers never block the
  writer (``MEMORY`` journalling for ``:memory:`` databases, where WAL is
  unavailable);
* ``synchronous=NORMAL`` — fsync at checkpoints only; safe under WAL and
  much faster than ``FULL`` for bulk generation;
* ``busy_timeout=30000`` ms and ``temp_store=MEMORY``.

Writes are buffered and flushed with ``executemany`` in batches (read-your-
writes is preserved: every read first drains the affected buffer).  Each
dataset has a composite index on ``(object_id, <time>)`` for per-object
scans, a time index for range scans, and — for the datasets that embed a
coordinate — a spatial grid-bucket index on ``(floor_id, cell_x, cell_y)``
where ``cell_* = floor(coordinate / cell_size)``, so spatial range queries
prefilter on integer buckets before the exact geometric predicate runs.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.errors import StorageError
from repro.storage.backends.base import (
    DATASETS,
    INT_COLUMNS as _INT_COLUMNS,
    REAL_COLUMNS as _REAL_COLUMNS,
    Row,
    StorageBackend,
    coerce_value as _coerce,
    dataset_spec,
)
from repro.storage.plan import Filter, PlanExecution, QueryPlan

#: Pragmas applied to every connection (WAL is swapped for MEMORY when the
#: database itself is in-memory, where WAL journalling is not supported).
_PRAGMAS = (
    ("synchronous", "NORMAL"),
    ("busy_timeout", "30000"),
    ("temp_store", "MEMORY"),
    ("cache_size", "-16000"),
)


def _column_type(column: str) -> str:
    if column in _REAL_COLUMNS:
        return "REAL"
    if column in _INT_COLUMNS:
        return "INTEGER"
    return "TEXT"


class SQLiteBackend(StorageBackend):
    """On-disk (or ``:memory:``) SQLite engine with batched writes."""

    name = "sqlite"
    persistent = True

    #: Grid bucket size used when neither the caller nor an existing
    #: database specifies one.
    DEFAULT_CELL_SIZE = 4.0

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        cell_size: Optional[float] = None,
        batch_size: int = 2000,
    ) -> None:
        if cell_size is not None and cell_size <= 0:
            raise StorageError("sqlite backend: cell_size must be positive")
        if batch_size < 1:
            raise StorageError("sqlite backend: batch_size must be at least 1")
        self.path = ":memory:" if path is None else str(path)
        self.batch_size = int(batch_size)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = sqlite3.connect(self.path)
            self._connection.row_factory = sqlite3.Row
            self._pending: Dict[str, List[Tuple]] = {name: [] for name in DATASETS}
            self._closed = False
            self._configure()
            self._create_schema()
            self.cell_size = self._resolve_cell_size(cell_size)
        except sqlite3.Error as error:
            raise StorageError(f"sqlite backend: cannot open {self.path!r} ({error})")

    # ------------------------------------------------------------------ #
    # Connection / schema setup
    # ------------------------------------------------------------------ #
    def _configure(self) -> None:
        journal = "WAL" if self.path != ":memory:" else "MEMORY"
        self._connection.execute(f"PRAGMA journal_mode={journal}")
        for pragma, value in _PRAGMAS:
            self._connection.execute(f"PRAGMA {pragma}={value}")

    def _physical_columns(self, dataset: str) -> Tuple[str, ...]:
        spec = dataset_spec(dataset)
        if spec.spatial:
            return spec.columns + ("cell_x", "cell_y")
        return spec.columns

    def _create_schema(self) -> None:
        cursor = self._connection.cursor()
        cursor.execute("CREATE TABLE IF NOT EXISTS vita_meta (key TEXT PRIMARY KEY, value TEXT)")
        for spec in DATASETS.values():
            columns = ", ".join(
                f"{column} {_column_type(column)}"
                for column in self._physical_columns(spec.name)
            )
            cursor.execute(f"CREATE TABLE IF NOT EXISTS {spec.name} ({columns})")
            for statement in self._index_statements(spec.name):
                cursor.execute(statement)
            if spec.unique_key:
                try:
                    cursor.execute(
                        f"CREATE UNIQUE INDEX IF NOT EXISTS uq_{spec.name} "
                        f"ON {spec.name} ({', '.join(spec.unique_key)})"
                    )
                except sqlite3.IntegrityError:
                    # A database created before the uniqueness contract may
                    # already hold duplicates; keep it readable rather than
                    # refusing to open (new writes stay unguarded there).
                    pass
        self._connection.commit()

    def _resolve_cell_size(self, requested: Optional[float]) -> float:
        """Reconcile the requested grid cell size with the database's own.

        The cell size the spatial buckets were computed with is persisted in
        ``vita_meta``; reopening a database therefore keeps its buckets
        consistent without the caller having to remember the original value.
        An explicit different request re-buckets every spatial row.
        """
        stored = self._connection.execute(
            "SELECT value FROM vita_meta WHERE key = 'cell_size'"
        ).fetchone()
        stored_size = float(stored[0]) if stored else None
        size = requested if requested is not None else (stored_size or self.DEFAULT_CELL_SIZE)
        size = float(size)
        if stored_size is None or stored_size != size:
            if stored_size is not None:
                self._rebucket(size)
            self._connection.execute(
                "INSERT OR REPLACE INTO vita_meta (key, value) VALUES ('cell_size', ?)",
                (repr(size),),
            )
            self._connection.commit()
        return size

    def _rebucket(self, cell_size: float) -> None:
        """Recompute the grid buckets of every spatial row for *cell_size*."""
        for spec in DATASETS.values():
            if not spec.spatial:
                continue
            # Floor division (correct for negative coordinates too), in SQL.
            self._connection.execute(
                f"""
                UPDATE {spec.name}
                SET cell_x = CAST(x / :c AS INTEGER)
                             - (x < 0 AND CAST(x / :c AS INTEGER) * :c != x),
                    cell_y = CAST(y / :c AS INTEGER)
                             - (y < 0 AND CAST(y / :c AS INTEGER) * :c != y)
                WHERE x IS NOT NULL AND y IS NOT NULL
                """,
                {"c": cell_size},
            )

    def _index_statements(self, dataset: str) -> List[str]:
        spec = dataset_spec(dataset)
        indexes: List[Tuple[str, str]] = []
        if spec.time_column is not None:
            # Composite per-object time index plus a plain time index.
            indexes.append(("object_time", f"object_id, {spec.time_column}"))
            indexes.append(("time", spec.time_column))
        if spec.spatial:
            indexes.append(("grid", f"floor_id, cell_x, cell_y, {spec.time_column}"))
        for column in spec.hash_indexes:
            if column == "object_id" and spec.time_column is not None:
                continue  # covered by the composite index
            indexes.append((column, column))
        if dataset == "proximity":
            indexes.append(("interval_end", "t_end"))
        return [
            f"CREATE INDEX IF NOT EXISTS idx_{dataset}_{label} ON {dataset} ({columns})"
            for label, columns in indexes
        ]

    # ------------------------------------------------------------------ #
    # Write path (buffered executemany batches)
    # ------------------------------------------------------------------ #
    def _row_tuple(self, dataset: str, row: Row) -> Tuple:
        spec = dataset_spec(dataset)
        values = [_coerce(column, row.get(column)) for column in spec.columns]
        if spec.spatial:
            x, y = row.get("x"), row.get("y")
            if x is None or y is None:
                values.extend([None, None])
            else:
                values.append(int(float(x) // self.cell_size))
                values.append(int(float(y) // self.cell_size))
        return tuple(values)

    def insert_rows(self, dataset: str, rows: List[Row]) -> int:
        pending = self._pending[dataset_spec(dataset).name]
        count = 0
        for row in rows:
            pending.append(self._row_tuple(dataset, row))
            count += 1
            if len(pending) >= self.batch_size:
                self._drain(dataset)
        self._observe_insert(dataset, count)
        return count

    def _drain(self, dataset: str) -> None:
        pending = self._pending[dataset]
        if not pending:
            return
        columns = self._physical_columns(dataset)
        placeholders = ", ".join("?" for _ in columns)
        # A savepoint scopes the rejection to this batch: a duplicate key
        # rolls back the partially applied executemany only, leaving rows
        # other datasets drained earlier in the same transaction intact —
        # the same batch-atomic behaviour as the memory engine.
        self._connection.execute("SAVEPOINT drain_batch")
        try:
            self._connection.executemany(
                f"INSERT INTO {dataset} ({', '.join(columns)}) VALUES ({placeholders})",
                pending,
            )
        except sqlite3.IntegrityError as error:
            self._connection.execute("ROLLBACK TO drain_batch")
            self._connection.execute("RELEASE drain_batch")
            pending.clear()
            unique_key = dataset_spec(dataset).unique_key
            raise StorageError(
                f"dataset {dataset!r}: duplicate row for unique key "
                f"({', '.join(unique_key)}) [{error}]"
            )
        self._connection.execute("RELEASE drain_batch")
        pending.clear()

    def flush(self) -> None:
        if self._closed:
            return
        for dataset in DATASETS:
            self._drain(dataset)
        self._connection.commit()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._connection.close()
        self._closed = True

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def _select(self, dataset: str, suffix: str = "", params: Tuple = ()) -> List[Row]:
        spec = dataset_spec(dataset)
        self._drain(dataset)
        columns = ", ".join(spec.columns)
        cursor = self._connection.execute(
            f"SELECT {columns} FROM {dataset} {suffix}", params
        )
        return [dict(row) for row in cursor.fetchall()]

    def count(self, dataset: str) -> int:
        dataset_spec(dataset)
        self._drain(dataset)
        (total,) = self._connection.execute(f"SELECT COUNT(*) FROM {dataset}").fetchone()
        return int(total)

    def all_rows(self, dataset: str) -> List[Row]:
        return self._select(dataset, "ORDER BY rowid")

    def rows_eq(
        self, dataset: str, column: str, value: Any, order_by: Optional[str] = None
    ) -> List[Row]:
        spec = dataset_spec(dataset)
        if column not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {column!r}")
        if order_by is not None and order_by not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {order_by!r}")
        ordering = f"{order_by}, rowid" if order_by is not None else "rowid"
        return self._select(
            dataset, f"WHERE {column} = ? ORDER BY {ordering}", (_coerce(column, value),)
        )

    def rows_in_time_range(self, dataset: str, low: float, high: float) -> List[Row]:
        time_column = self._time_column(dataset)
        return self._select(
            dataset,
            f"WHERE {time_column} BETWEEN ? AND ? ORDER BY {time_column}, rowid",
            (float(low), float(high)),
        )

    def iter_time_ordered(self, dataset: str) -> Iterator[Row]:
        time_column = self._time_column(dataset)
        spec = dataset_spec(dataset)
        self._drain(dataset)
        cursor = self._connection.execute(
            f"SELECT {', '.join(spec.columns)} FROM {dataset} "
            f"ORDER BY {time_column}, rowid"
        )
        return (dict(row) for row in cursor)

    def distinct(self, dataset: str, column: str) -> List[Any]:
        spec = dataset_spec(dataset)
        if column not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {column!r}")
        self._drain(dataset)
        cursor = self._connection.execute(
            f"SELECT DISTINCT {column} FROM {dataset} ORDER BY {column}"
        )
        return [row[0] for row in cursor.fetchall()]

    def count_by(self, dataset: str, column: str) -> Dict[Any, int]:
        spec = dataset_spec(dataset)
        if column not in spec.columns:
            raise StorageError(f"dataset {dataset!r} has no column {column!r}")
        self._drain(dataset)
        cursor = self._connection.execute(
            f"SELECT {column}, COUNT(*) FROM {dataset} GROUP BY {column}"
        )
        return {row[0]: int(row[1]) for row in cursor.fetchall()}

    def clear(self, dataset: str) -> None:
        dataset_spec(dataset)
        self._pending[dataset].clear()
        self._connection.execute(f"DELETE FROM {dataset}")
        self._connection.commit()

    def _time_column(self, dataset: str) -> str:
        spec = dataset_spec(dataset)
        if spec.time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        return spec.time_column

    # ------------------------------------------------------------------ #
    # Logical-plan execution (compilation to parameterized SQL)
    # ------------------------------------------------------------------ #
    def _filter_sql(self, filter_: Filter, params: List[Any]) -> Optional[str]:
        """The SQL clause for one predicate, or ``None`` when not pushable.

        NULL handling intentionally mirrors the Python fallback (missing
        values satisfy ``!=``/``not_in`` and fail everything else), so both
        engines return identical rows.
        """
        column, op, value = filter_.column, filter_.op, filter_.value
        if op == "python":
            return None
        if op in ("in", "not_in"):
            # Members the column type cannot represent can never match a cell
            # (same as the Python fallback), so they just drop out of the set.
            others = []
            for member in value:
                if member is None:
                    continue
                try:
                    others.append(_coerce(column, member))
                except StorageError:
                    pass
            placeholders = ", ".join("?" for _ in others)
            params.extend(others)
            if op == "in":
                if None in value:
                    return f"({column} IS NULL OR {column} IN ({placeholders}))"
                return f"{column} IN ({placeholders})"
            if None in value:
                return f"({column} IS NOT NULL AND {column} NOT IN ({placeholders}))"
            return f"({column} IS NULL OR {column} NOT IN ({placeholders}))"
        if op == "between":
            low, high = value
            try:
                params.extend((_coerce(column, low), _coerce(column, high)))
            except StorageError:
                return "0 = 1"  # an unrepresentable bound matches nothing
            return f"{column} BETWEEN ? AND ?"
        if value is None:
            if op == "==":
                return f"{column} IS NULL"
            if op == "!=":
                return f"{column} IS NOT NULL"
            return "0 = 1"  # inequality against NULL matches nothing
        try:
            params.append(_coerce(column, value))
        except StorageError:
            # No cell can equal or order against an unrepresentable value;
            # only '!=' is satisfied (by every row, NULLs included).
            return "1 = 1" if op == "!=" else "0 = 1"
        if op == "==":
            return f"{column} = ?"
        if op == "!=":
            return f"({column} IS NULL OR {column} != ?)"
        return f"{column} {op} ?"

    def execute_plan(self, plan: QueryPlan) -> PlanExecution:
        """Compile *plan* to one parameterized SQL statement.

        Everything except callable (``python``) predicates is pushed down:
        filters and the time window become WHERE clauses over the engine's
        indices, a region becomes a grid-bucket prefilter plus the exact box,
        projections/ordering/limits compile directly, and the aggregate verbs
        become SQL aggregates.  When a callable predicate is present, the
        engine still pushes the WHERE/ORDER BY work but leaves limiting,
        projection and aggregation to the planner (they must run after the
        Python predicate).
        """
        spec = dataset_spec(plan.dataset)
        pushed: List[Tuple[str, str]] = []
        where: List[str] = []
        params: List[Any] = []
        residual: List[Filter] = []

        for filter_ in plan.filters:
            clause = self._filter_sql(filter_, params)
            if clause is None:
                residual.append(filter_)
            else:
                where.append(clause)
                pushed.append((f"where {filter_.describe()}", f"SQL predicate {clause}"))
        if plan.time_range is not None:
            low, high = plan.time_range
            where.append(f"{spec.time_column} BETWEEN ? AND ?")
            params.extend((float(low), float(high)))
            pushed.append(
                ("during", f"SQL {spec.time_column} BETWEEN ? AND ? (time index)")
            )
        if plan.region is not None:
            region = plan.region
            where.append(
                "cell_x BETWEEN ? AND ? AND cell_y BETWEEN ? AND ? "
                "AND x BETWEEN ? AND ? AND y BETWEEN ? AND ?"
            )
            params.extend(
                (
                    int(region.min_x // self.cell_size),
                    int(region.max_x // self.cell_size),
                    int(region.min_y // self.cell_size),
                    int(region.max_y // self.cell_size),
                    region.min_x,
                    region.max_x,
                    region.min_y,
                    region.max_y,
                )
            )
            pushed.append(
                ("within", "spatial grid-bucket index prefilter + exact box")
            )

        where_sql = f" WHERE {' AND '.join(where)}" if where else ""
        fully_filtered = not residual

        order_sql = ""
        residual_order: Tuple[Tuple[str, bool], ...] = ()
        if plan.order_by:
            terms = ", ".join(
                f"{column} {'DESC' if descending else 'ASC'}"
                for column, descending in plan.order_by
            )
            order_sql = f" ORDER BY {terms}, rowid"
            pushed.append(("order_by", f"SQL ORDER BY {terms}"))

        aggregate = plan.aggregate
        if aggregate is not None and fully_filtered:
            sql, finish = self._aggregate_sql(plan.dataset, aggregate, where_sql)
            pushed.append((f"aggregate {aggregate.describe()}", "SQL aggregate"))
            pushed.append(("sql", sql))
            bound = tuple(params)

            def aggregate_thunk() -> Any:
                self._drain(plan.dataset)
                return finish(self._connection.execute(sql, bound))

            return PlanExecution(
                rows=lambda: iter(()),
                pushed=pushed,
                aggregate_thunk=aggregate_thunk,
            )

        if fully_filtered and plan.columns is not None:
            columns = plan.columns
            pushed.append(("select", f"SQL projection ({', '.join(columns)})"))
        else:
            columns = spec.columns

        limit_sql = ""
        needs_limit = plan.limit is not None or plan.offset > 0
        if fully_filtered and (plan.limit is not None or plan.offset):
            limit = plan.limit if plan.limit is not None else -1
            limit_sql = f" LIMIT {int(limit)} OFFSET {int(plan.offset)}"
            pushed.append(("limit", f"SQL LIMIT {limit} OFFSET {plan.offset}"))
            needs_limit = False

        if not order_sql and not plan.order_by:
            order_sql = " ORDER BY rowid"  # deterministic insertion order

        sql = (
            f"SELECT {', '.join(columns)} FROM {plan.dataset}"
            f"{where_sql}{order_sql}{limit_sql}"
        )
        pushed.append(("sql", sql))
        bound = tuple(params)

        def rows() -> Iterator[Row]:
            self._drain(plan.dataset)
            return (dict(row) for row in self._connection.execute(sql, bound))

        return PlanExecution(
            rows=rows,
            pushed=pushed,
            residual_filters=tuple(residual),
            residual_order=residual_order,
            needs_projection=not fully_filtered and plan.columns is not None,
            needs_limit=needs_limit,
        )

    def _aggregate_sql(self, dataset: str, aggregate, where_sql: str):
        """``(sql, cursor -> value)`` for a fully pushed aggregate."""
        if aggregate.kind == "count":
            sql = f"SELECT COUNT(*) FROM {dataset}{where_sql}"
            return sql, lambda cursor: int(cursor.fetchone()[0])
        if aggregate.kind == "count_by":
            sql = (
                f"SELECT {aggregate.by}, COUNT(*) FROM {dataset}{where_sql} "
                f"GROUP BY {aggregate.by}"
            )
            return sql, lambda cursor: {row[0]: int(row[1]) for row in cursor.fetchall()}
        if aggregate.kind == "count_distinct_by":
            sql = (
                f"SELECT {aggregate.by}, COUNT(DISTINCT {aggregate.column}) "
                f"FROM {dataset}{where_sql} GROUP BY {aggregate.by}"
            )
            return sql, lambda cursor: {row[0]: int(row[1]) for row in cursor.fetchall()}
        if aggregate.kind == "distinct":
            sql = (
                f"SELECT DISTINCT {aggregate.column} FROM {dataset}{where_sql} "
                f"ORDER BY {aggregate.column}"
            )
            return sql, lambda cursor: [row[0] for row in cursor.fetchall()]
        # stats
        selected = (
            f"COUNT({aggregate.column}), AVG({aggregate.column}), "
            f"MIN({aggregate.column}), MAX({aggregate.column}), SUM({aggregate.column})"
        )

        def to_stats(values) -> Optional[Dict[str, float]]:
            count, mean, low, high, total = values
            if not count:
                return None
            return {
                "count": float(count),
                "mean": float(mean),
                "min": low,
                "max": high,
                "sum": float(total),
            }

        if aggregate.by is None:
            sql = f"SELECT {selected} FROM {dataset}{where_sql}"
            return sql, lambda cursor: to_stats(cursor.fetchone())
        sql = (
            f"SELECT {aggregate.by}, {selected} FROM {dataset}{where_sql} "
            f"GROUP BY {aggregate.by}"
        )
        return sql, lambda cursor: {
            row[0]: to_stats(tuple(row)[1:]) for row in cursor.fetchall()
        }

    # ------------------------------------------------------------------ #
    # Native query operators (index-backed SQL)
    # ------------------------------------------------------------------ #
    def time_bounds(self, dataset: str) -> Optional[Tuple[float, float]]:
        time_column = self._time_column(dataset)
        self._drain(dataset)
        low, high = self._connection.execute(
            f"SELECT MIN({time_column}), MAX({time_column}) FROM {dataset}"
        ).fetchone()
        if low is None:
            return None
        return (low, high)

    def snapshot_rows(self, t: float, tolerance: float) -> Dict[str, Row]:
        spec = dataset_spec("trajectory")
        self._drain("trajectory")
        columns = ", ".join(spec.columns)
        cursor = self._connection.execute(
            f"""
            WITH windowed AS (
                SELECT {columns},
                       ROW_NUMBER() OVER (
                           PARTITION BY object_id ORDER BY ABS(t - ?), rowid
                       ) AS rank
                FROM trajectory WHERE t BETWEEN ? AND ?
            )
            SELECT {columns} FROM windowed WHERE rank = 1
            """,
            (float(t), float(t) - float(tolerance), float(t) + float(tolerance)),
        )
        return {row["object_id"]: dict(row) for row in cursor.fetchall()}

    def region_object_ids(
        self,
        floor_id: int,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        t_start: float,
        t_end: float,
    ) -> List[str]:
        self._drain("trajectory")
        cursor = self._connection.execute(
            """
            SELECT DISTINCT object_id FROM trajectory
            WHERE floor_id = ?
              AND cell_x BETWEEN ? AND ?
              AND cell_y BETWEEN ? AND ?
              AND x BETWEEN ? AND ?
              AND y BETWEEN ? AND ?
              AND t BETWEEN ? AND ?
            ORDER BY object_id
            """,
            (
                int(floor_id),
                int(float(min_x) // self.cell_size),
                int(float(max_x) // self.cell_size),
                int(float(min_y) // self.cell_size),
                int(float(max_y) // self.cell_size),
                float(min_x),
                float(max_x),
                float(min_y),
                float(max_y),
                float(t_start),
                float(t_end),
            ),
        )
        return [row[0] for row in cursor.fetchall()]

    def knn(
        self, floor_id: int, x: float, y: float, t: float, k: int, tolerance: float
    ) -> List[Tuple[str, float]]:
        if k <= 0:
            return []
        self._drain("trajectory")
        cursor = self._connection.execute(
            """
            WITH windowed AS (
                SELECT object_id, floor_id, x, y,
                       ROW_NUMBER() OVER (
                           PARTITION BY object_id ORDER BY ABS(t - ?), rowid
                       ) AS rank
                FROM trajectory WHERE t BETWEEN ? AND ?
            )
            SELECT object_id, (x - ?) * (x - ?) + (y - ?) * (y - ?) AS d2
            FROM windowed
            WHERE rank = 1 AND floor_id = ? AND x IS NOT NULL AND y IS NOT NULL
            ORDER BY d2, object_id LIMIT ?
            """,
            (
                float(t),
                float(t) - float(tolerance),
                float(t) + float(tolerance),
                float(x),
                float(x),
                float(y),
                float(y),
                int(floor_id),
                int(k),
            ),
        )
        return [(row[0], float(row[1]) ** 0.5) for row in cursor.fetchall()]

    def proximity_active_at(self, t: float) -> List[Row]:
        return self._select(
            "proximity",
            "WHERE t_start <= ? AND t_end >= ? ORDER BY rowid",
            (float(t), float(t)),
        )

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            {
                "path": self.path,
                "cell_size": self.cell_size,
                "batch_size": self.batch_size,
                "journal_mode": self._connection.execute(
                    "PRAGMA journal_mode"
                ).fetchone()[0],
            }
        )
        return info


__all__ = ["SQLiteBackend"]
