"""The pluggable storage-backend interface.

The paper's prototype persists every generated dataset "in PostgreSQL with
efficient indices" (Section 4.2) and serves query processing through the Data
Stream APIs.  This module defines the contract a storage engine must satisfy
so that the repositories and :class:`~repro.storage.stream.DataStreamAPI`
can run unchanged on top of any engine:

* :class:`MemoryBackend <repro.storage.backends.memory.MemoryBackend>` — the
  original indexed in-memory tables (fast, volatile);
* :class:`SQLiteBackend <repro.storage.backends.sqlite.SQLiteBackend>` — an
  on-disk engine with WAL journalling, batched bulk inserts and composite +
  spatial grid-bucket indices (persistent, larger-than-RAM).

Every dataset is described by a :class:`DatasetSpec`; rows are plain
dictionaries with one key per column, identical across backends, so records
serialise the same way everywhere.  The base class ships portable Python
implementations of the higher-level query operators (snapshot, spatial range,
kNN, aggregations) expressed in terms of the storage primitives; engines
override them with native (e.g. SQL) implementations where profitable.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import StorageError
from repro.storage.plan import PlanExecution, QueryPlan, sorted_distinct

Row = Dict[str, Any]

#: Shared location column suffix used by every dataset that embeds a location.
LOCATION_COLUMNS: Tuple[str, ...] = ("building_id", "floor_id", "partition_id", "x", "y")

#: Column type affinities shared by every engine (anything unlisted is text).
REAL_COLUMNS = frozenset(
    {"t", "t_start", "t_end", "x", "y", "rssi", "detection_range", "detection_interval"}
)
INT_COLUMNS = frozenset({"floor_id", "cell_x", "cell_y"})


def coerce_value(column: str, value: Any) -> Any:
    """Normalise *value* to *column*'s type affinity (numpy scalars included).

    Raises :class:`StorageError` when the value cannot represent the
    column's type (e.g. ``floor_id = "abc"``), so a bad predicate fails the
    same way on every engine instead of crashing one and no-matching the
    other.
    """
    if value is None:
        return None
    try:
        if column in REAL_COLUMNS:
            return float(value)
        if column in INT_COLUMNS:
            return int(value)
    except (TypeError, ValueError):
        kind = "real" if column in REAL_COLUMNS else "integer"
        raise StorageError(f"value {value!r} is not valid for {kind} column {column!r}")
    # Text affinity, mirroring SQLite: a non-string operand is compared (and
    # stored) as its text form, so both engines see the same value.
    return value if isinstance(value, str) else str(value)


@dataclass(frozen=True)
class DatasetSpec:
    """Schema description of one logical dataset, independent of the engine."""

    name: str
    columns: Tuple[str, ...]
    time_column: Optional[str] = None
    hash_indexes: Tuple[str, ...] = ()
    #: Whether the dataset embeds a coordinate location (enables the spatial
    #: grid-bucket index on SQL engines).
    spatial: bool = False
    #: Columns forming the dataset's natural key.  Both engines reject a
    #: second row with the same key (:class:`StorageError`) instead of
    #: silently storing duplicates.
    unique_key: Tuple[str, ...] = ()


#: The six storage formats of Section 4.2, keyed by dataset name.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="trajectory",
            columns=("object_id", "t") + LOCATION_COLUMNS,
            time_column="t",
            hash_indexes=("object_id", "partition_id", "floor_id"),
            spatial=True,
            unique_key=("object_id", "t"),
        ),
        DatasetSpec(
            name="rssi",
            columns=("object_id", "device_id", "rssi", "t"),
            time_column="t",
            hash_indexes=("object_id", "device_id"),
        ),
        DatasetSpec(
            name="positioning",
            columns=("object_id", "t", "method") + LOCATION_COLUMNS,
            time_column="t",
            hash_indexes=("object_id", "method", "partition_id"),
            spatial=True,
            # One estimate per object, timestamp and method; two different
            # methods may legitimately estimate the same (object, t).
            unique_key=("object_id", "t", "method"),
        ),
        # Probabilistic candidates are stored as one JSON document per row so
        # the row shape stays flat and identical across engines.
        DatasetSpec(
            name="probabilistic",
            columns=("object_id", "t", "candidates"),
            time_column="t",
            hash_indexes=("object_id",),
            unique_key=("object_id", "t"),
        ),
        DatasetSpec(
            name="proximity",
            columns=("object_id", "device_id", "t_start", "t_end"),
            time_column="t_start",
            hash_indexes=("object_id", "device_id"),
        ),
        DatasetSpec(
            name="device",
            columns=("device_id", "device_type", "detection_range", "detection_interval")
            + LOCATION_COLUMNS,
            hash_indexes=("device_id", "device_type", "floor_id"),
        ),
    )
}


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` called *name* (raises for unknown datasets)."""
    try:
        return DATASETS[name]
    except KeyError:
        raise StorageError(f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}")


class StorageBackend(abc.ABC):
    """Contract between the repositories / Data Stream APIs and an engine.

    Primitives (abstract) cover insertion, scans, equality and time-range
    lookups; the higher-level query operators have portable default
    implementations that engines may override natively.
    """

    #: Registry name of the engine ("memory", "sqlite", ...).
    name: str = "abstract"
    #: Whether data survives the process (an on-disk engine).
    persistent: bool = False
    #: Attached :class:`~repro.obs.MetricsRegistry` (``None`` = uninstrumented;
    #: a class attribute so engines need no ``__init__`` cooperation).
    _metrics = None

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def attach_metrics(self, registry) -> None:
        """Record insert volumes into *registry* (``None`` detaches).

        Engines call :meth:`_observe_insert` from their ``insert_rows``;
        counters are named ``storage.rows_inserted.<dataset>``.  Counting
        happens per inserted batch, so the overhead is one counter increment
        per bulk insert, not per row.
        """
        self._metrics = registry if registry is not None and registry.enabled else None

    def _observe_insert(self, dataset: str, count: int) -> None:
        if self._metrics is not None and count:
            self._metrics.counter(f"storage.rows_inserted.{dataset}").inc(count)

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def insert_rows(self, dataset: str, rows: List[Row]) -> int:
        """Bulk-append *rows*; returns the number inserted."""

    @abc.abstractmethod
    def count(self, dataset: str) -> int:
        """Number of rows stored in *dataset*."""

    @abc.abstractmethod
    def all_rows(self, dataset: str) -> List[Row]:
        """Every row of *dataset* in insertion order."""

    @abc.abstractmethod
    def rows_eq(
        self, dataset: str, column: str, value: Any, order_by: Optional[str] = None
    ) -> List[Row]:
        """Rows with ``row[column] == value`` (index-backed when possible).

        With *order_by*, the result is sorted by that column — engines use
        their composite ``(column, order_by)`` index where one exists.
        """

    @abc.abstractmethod
    def rows_in_time_range(self, dataset: str, low: float, high: float) -> List[Row]:
        """Rows whose time column lies in ``[low, high]``, ordered by time."""

    @abc.abstractmethod
    def iter_time_ordered(self, dataset: str) -> Iterator[Row]:
        """Every row of *dataset*, ordered by its time column (single pass)."""

    @abc.abstractmethod
    def distinct(self, dataset: str, column: str) -> List[Any]:
        """Distinct values of *column* (sorted when the values are sortable)."""

    @abc.abstractmethod
    def count_by(self, dataset: str, column: str) -> Dict[Any, int]:
        """Row count per distinct value of *column*."""

    @abc.abstractmethod
    def clear(self, dataset: str) -> None:
        """Remove every row of *dataset*."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make pending writes durable (no-op for volatile engines)."""

    def close(self) -> None:
        """Flush and release engine resources."""
        self.flush()

    def clear_all(self) -> None:
        """Remove every row of every dataset."""
        for name in DATASETS:
            self.clear(name)

    def describe(self) -> Dict[str, Any]:
        """Engine metadata for summaries and the CLI."""
        return {
            "backend": self.name,
            "persistent": self.persistent,
            "datasets": {name: self.count(name) for name in DATASETS},
        }

    # ------------------------------------------------------------------ #
    # Logical-plan execution (capability negotiation with the planner)
    # ------------------------------------------------------------------ #
    def execute_plan(self, plan: QueryPlan) -> PlanExecution:
        """Push down what this engine can run natively; leave the rest residual.

        The portable default pushes the time window onto the
        :meth:`rows_in_time_range` primitive and the bare aggregates onto
        their primitives (:meth:`count`, :meth:`count_by`, :meth:`distinct`);
        every other plan step is reported residual, and the planner
        (:func:`repro.storage.query.run_plan`) streams it in Python.  Engines
        override this with index- or SQL-backed strategies.
        """
        spec = dataset_spec(plan.dataset)
        pushed: List[Tuple[str, str]] = []
        time_ordered = False
        if plan.time_range is not None and spec.time_column is not None:
            low, high = plan.time_range
            rows = lambda: iter(self.rows_in_time_range(plan.dataset, low, high))
            pushed.append(("during", "rows_in_time_range primitive"))
            time_ordered = True
        else:
            rows = lambda: iter(self.all_rows(plan.dataset))
        residual_order = plan.order_by
        if time_ordered and plan.order_by == ((spec.time_column, False),):
            residual_order = ()
            pushed.append(("order_by", f"time-ordered {spec.time_column} scan"))
        execution = PlanExecution(
            rows=rows,
            pushed=pushed,
            residual_filters=plan.filters,
            residual_region=plan.region,
            residual_order=residual_order,
            needs_projection=plan.columns is not None,
            needs_limit=plan.limit is not None or plan.offset > 0,
        )
        bare = not plan.filters and plan.region is None and plan.time_range is None
        aggregate = plan.aggregate
        if aggregate is not None and bare:
            if aggregate.kind == "count":
                execution.aggregate_thunk = lambda: self.count(plan.dataset)
                pushed.append(("aggregate count(*)", "count primitive"))
            elif aggregate.kind == "count_by":
                execution.aggregate_thunk = lambda: self.count_by(plan.dataset, aggregate.by)
                pushed.append((f"aggregate {aggregate.describe()}", "count_by primitive"))
            elif aggregate.kind == "distinct":
                execution.aggregate_thunk = lambda: sorted_distinct(
                    self.distinct(plan.dataset, aggregate.column)
                )
                pushed.append((f"aggregate {aggregate.describe()}", "distinct primitive"))
        return execution

    # ------------------------------------------------------------------ #
    # Query operators (portable defaults; engines override natively)
    # ------------------------------------------------------------------ #
    def time_bounds(self, dataset: str) -> Optional[Tuple[float, float]]:
        """``(min, max)`` of the dataset's time column, or ``None`` if empty."""
        spec = dataset_spec(dataset)
        if spec.time_column is None:
            raise StorageError(f"dataset {dataset!r} has no time column")
        low = high = None
        for row in self.iter_time_ordered(dataset):
            value = row[spec.time_column]
            if low is None:
                low = value
            high = value
        if low is None:
            return None
        return (low, high)

    def snapshot_rows(self, t: float, tolerance: float) -> Dict[str, Row]:
        """Per object, the trajectory row closest in time to *t* within *tolerance*."""
        best: Dict[str, Row] = {}
        for row in self.rows_in_time_range("trajectory", t - tolerance, t + tolerance):
            current = best.get(row["object_id"])
            if current is None or abs(row["t"] - t) < abs(current["t"] - t):
                best[row["object_id"]] = row
        return best

    def region_object_ids(
        self,
        floor_id: int,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        t_start: float,
        t_end: float,
    ) -> List[str]:
        """Objects with >= 1 trajectory sample inside the box during the window."""
        found = set()
        for row in self.rows_in_time_range("trajectory", t_start, t_end):
            if row["floor_id"] != floor_id or row["x"] is None or row["y"] is None:
                continue
            if min_x <= row["x"] <= max_x and min_y <= row["y"] <= max_y:
                found.add(row["object_id"])
        return sorted(found)

    def knn(
        self, floor_id: int, x: float, y: float, t: float, k: int, tolerance: float
    ) -> List[Tuple[str, float]]:
        """The *k* objects closest to ``(x, y)`` on *floor_id* around time *t*."""
        if k <= 0:
            return []
        scored = []
        for object_id, row in self.snapshot_rows(t, tolerance).items():
            if row["floor_id"] != floor_id or row["x"] is None or row["y"] is None:
                continue
            scored.append((object_id, math.hypot(row["x"] - x, row["y"] - y)))
        scored.sort(key=lambda pair: (pair[1], pair[0]))
        return scored[:k]

    def proximity_active_at(self, t: float) -> List[Row]:
        """Proximity detection periods covering time *t*."""
        return [
            row
            for row in self.all_rows("proximity")
            if row["t_start"] <= t <= row["t_end"]
        ]


__all__ = [
    "Row",
    "LOCATION_COLUMNS",
    "REAL_COLUMNS",
    "INT_COLUMNS",
    "coerce_value",
    "DatasetSpec",
    "DATASETS",
    "dataset_spec",
    "StorageBackend",
]
