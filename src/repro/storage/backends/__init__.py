"""Pluggable storage engines for the generated mobility data.

The repositories and Data Stream APIs talk to a
:class:`~repro.storage.backends.base.StorageBackend`; the concrete engine is
chosen by name (``"memory"`` or ``"sqlite"``) via :func:`backend_by_name`, by
configuration (``storage.backend`` in a run's JSON config) or by the CLI's
``--backend`` flag.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.errors import StorageError
from repro.storage.backends.base import (
    DATASETS,
    DatasetSpec,
    LOCATION_COLUMNS,
    Row,
    StorageBackend,
    dataset_spec,
)
from repro.storage.backends.memory import MemoryBackend
from repro.storage.backends.sqlite import SQLiteBackend

#: Registry of engine names understood by configuration and the CLI.
BACKENDS = {
    MemoryBackend.name: MemoryBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def backend_by_name(
    name: str,
    path: Union[str, Path, None] = None,
    cell_size: Optional[float] = None,
    batch_size: Optional[int] = None,
) -> StorageBackend:
    """Construct the storage engine called *name*.

    ``path``/``cell_size``/``batch_size`` only apply to on-disk engines; they
    are rejected for the memory engine so configuration errors surface early.
    """
    key = name.lower().strip()
    if key not in BACKENDS:
        raise StorageError(
            f"unknown storage backend {name!r}; expected one of {sorted(BACKENDS)}"
        )
    if key == MemoryBackend.name:
        rejected = [
            option
            for option, value in (("path", path), ("cell_size", cell_size), ("batch_size", batch_size))
            if value is not None
        ]
        if rejected:
            raise StorageError(
                f"the memory backend does not take the option(s) {', '.join(rejected)}"
            )
        return MemoryBackend()
    options = {}
    if cell_size is not None:
        options["cell_size"] = cell_size
    if batch_size is not None:
        options["batch_size"] = batch_size
    return SQLiteBackend(path=path, **options)


__all__ = [
    "Row",
    "DatasetSpec",
    "DATASETS",
    "LOCATION_COLUMNS",
    "dataset_spec",
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "BACKENDS",
    "backend_by_name",
]
