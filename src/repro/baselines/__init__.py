"""Baseline generators the paper compares against (Section 1)."""

from repro.baselines.mwgen import ManualFloorPlan, MWGenConfig, MWGenGenerator, MWGenOutput
from repro.baselines.indoorstg import (
    IndoorSTGConfig,
    IndoorSTGGenerator,
    IndoorSTGOutput,
    SemanticVisit,
    VirtualDevice,
    VirtualRoom,
)
from repro.baselines.rfid_tool import (
    ConveyorBelt,
    RFIDReaderStation,
    RFIDReading,
    RFIDToolConfig,
    RFIDToolGenerator,
    RFIDToolOutput,
)

__all__ = [
    "ManualFloorPlan",
    "MWGenConfig",
    "MWGenGenerator",
    "MWGenOutput",
    "IndoorSTGConfig",
    "IndoorSTGGenerator",
    "IndoorSTGOutput",
    "SemanticVisit",
    "VirtualDevice",
    "VirtualRoom",
    "ConveyorBelt",
    "RFIDReaderStation",
    "RFIDReading",
    "RFIDToolConfig",
    "RFIDToolGenerator",
    "RFIDToolOutput",
]
