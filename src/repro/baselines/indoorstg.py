"""A simplified re-implementation of IndoorSTG (Huang et al., MDM 2013).

Section 1 characterises IndoorSTG as follows: it "generates semantic-based
trajectories and proximity based positioning data for indoor moving objects in
an artificial, simulated indoor environment.  It allows for limited
configuration on the virtual indoor entities (e.g., rooms, staircases, and
elevators), and virtual positioning devices" — and "it only works for
proximity based indoor positioning and ignores more popular alternatives like
Wi-Fi based fingerprinting".

This baseline therefore:

* builds its own *artificial* grid world (it cannot import real buildings);
* produces semantic trajectories: sequences of (room, enter-time, leave-time);
* produces proximity records from virtual devices placed at room doors;
* produces no raw RSSI data and supports no other positioning method.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.types import ProximityRecord


@dataclass(frozen=True)
class VirtualRoom:
    """A room of the artificial environment."""

    room_id: str
    floor: int
    kind: str = "room"  # room, staircase, elevator, corridor


@dataclass(frozen=True)
class VirtualDevice:
    """A virtual proximity device guarding a room."""

    device_id: str
    room_id: str
    detection_range: float = 3.0


@dataclass(frozen=True)
class SemanticVisit:
    """One semantic trajectory element: the object stayed in a room for a while."""

    object_id: str
    room_id: str
    t_enter: float
    t_leave: float

    @property
    def duration(self) -> float:
        return self.t_leave - self.t_enter


@dataclass
class IndoorSTGConfig:
    """Configuration of the artificial environment and the generation run."""

    floors: int = 2
    rooms_per_floor: int = 8
    object_count: int = 20
    duration: float = 600.0
    min_visit: float = 20.0
    max_visit: float = 120.0
    transfer_time: float = 15.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.floors < 1 or self.rooms_per_floor < 2:
            raise ConfigurationError("need at least 1 floor and 2 rooms per floor")
        if self.object_count < 0:
            raise ConfigurationError("object_count must be non-negative")
        if self.min_visit <= 0 or self.max_visit < self.min_visit:
            raise ConfigurationError("require 0 < min_visit <= max_visit")


@dataclass
class IndoorSTGOutput:
    """What IndoorSTG produces: semantic trajectories and proximity data."""

    rooms: List[VirtualRoom]
    devices: List[VirtualDevice]
    semantic_trajectories: Dict[str, List[SemanticVisit]]
    proximity_records: List[ProximityRecord]

    @property
    def produces_positioning_data(self) -> bool:
        return True

    @property
    def produces_rssi_data(self) -> bool:
        """IndoorSTG emits proximity events directly, without raw RSSI."""
        return False

    @property
    def supports_real_buildings(self) -> bool:
        return False

    @property
    def supported_positioning_methods(self) -> Tuple[str, ...]:
        return ("proximity",)

    @property
    def total_visits(self) -> int:
        return sum(len(visits) for visits in self.semantic_trajectories.values())


class IndoorSTGGenerator:
    """Generates semantic trajectories in an artificial grid environment."""

    def __init__(self, config: Optional[IndoorSTGConfig] = None) -> None:
        self.config = config or IndoorSTGConfig()
        self.rng = random.Random(self.config.seed)
        self.rooms = self._build_rooms()
        self.devices = [
            VirtualDevice(device_id=f"vdev_{room.room_id}", room_id=room.room_id)
            for room in self.rooms
        ]
        self._adjacency = self._build_adjacency()

    def _build_rooms(self) -> List[VirtualRoom]:
        rooms: List[VirtualRoom] = []
        for floor in range(self.config.floors):
            for index in range(self.config.rooms_per_floor):
                kind = "room"
                if index == 0:
                    kind = "corridor"
                elif index == self.config.rooms_per_floor - 1 and self.config.floors > 1:
                    kind = "staircase"
                rooms.append(
                    VirtualRoom(room_id=f"vf{floor}_r{index}", floor=floor, kind=kind)
                )
        return rooms

    def _build_adjacency(self) -> Dict[str, List[str]]:
        """Rooms connect to the corridor of their floor; staircases link floors."""
        adjacency: Dict[str, List[str]] = {room.room_id: [] for room in self.rooms}
        by_floor: Dict[int, List[VirtualRoom]] = {}
        for room in self.rooms:
            by_floor.setdefault(room.floor, []).append(room)
        for floor_rooms in by_floor.values():
            corridor = floor_rooms[0]
            for room in floor_rooms[1:]:
                adjacency[corridor.room_id].append(room.room_id)
                adjacency[room.room_id].append(corridor.room_id)
        staircases = [room for room in self.rooms if room.kind == "staircase"]
        for lower, upper in zip(staircases, staircases[1:]):
            adjacency[lower.room_id].append(upper.room_id)
            adjacency[upper.room_id].append(lower.room_id)
        return adjacency

    def generate(self) -> IndoorSTGOutput:
        """Generate semantic trajectories plus the matching proximity records."""
        semantic: Dict[str, List[SemanticVisit]] = {}
        proximity: List[ProximityRecord] = []
        device_by_room = {device.room_id: device for device in self.devices}
        for index in range(self.config.object_count):
            object_id = f"stg_obj_{index + 1:03d}"
            visits: List[SemanticVisit] = []
            current = self.rng.choice(self.rooms).room_id
            t = 0.0
            while t < self.config.duration:
                visit_length = self.rng.uniform(self.config.min_visit, self.config.max_visit)
                t_leave = min(t + visit_length, self.config.duration)
                visits.append(
                    SemanticVisit(
                        object_id=object_id, room_id=current, t_enter=t, t_leave=t_leave
                    )
                )
                device = device_by_room[current]
                proximity.append(
                    ProximityRecord(
                        object_id=object_id,
                        device_id=device.device_id,
                        t_start=t,
                        t_end=t_leave,
                    )
                )
                t = t_leave + self.config.transfer_time
                neighbors = self._adjacency.get(current) or [current]
                current = self.rng.choice(neighbors)
            semantic[object_id] = visits
        return IndoorSTGOutput(
            rooms=self.rooms,
            devices=self.devices,
            semantic_trajectories=semantic,
            proximity_records=proximity,
        )


__all__ = [
    "VirtualRoom",
    "VirtualDevice",
    "SemanticVisit",
    "IndoorSTGConfig",
    "IndoorSTGOutput",
    "IndoorSTGGenerator",
]
