"""A simplified re-implementation of MWGen (Xu & Güting, MDM 2012).

The paper positions MWGen as the closest prior generator and lists its
restrictions (Section 1):

* users must manually extract the building information from a floor plan —
  there is no DBI import;
* a multi-floor building is simulated by *duplicating* the floor plan;
* trajectories follow either the minimum-length or the minimum-walking-time
  path between two locations;
* no indoor positioning data is produced, and the output trajectories are
  semantic (coarse) rather than fine-grained ground truth.

This module reproduces exactly that feature set so the comparison benchmark
can quantify the gap against Vita on the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.building.distance import RoutePlanner
from repro.building.model import Building, Door, Floor, Partition, PartitionKind
from repro.core.errors import ConfigurationError
from repro.core.types import IndoorLocation, TrajectoryRecord
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.spatial import SpatialService


@dataclass
class ManualFloorPlan:
    """The manually extracted floor plan MWGen requires.

    Each room is an axis-aligned rectangle ``(name, min_x, min_y, max_x, max_y)``
    and each connection is a pair of room names joined by a door placed at the
    midpoint of their shared boundary.
    """

    rooms: List[Tuple[str, float, float, float, float]] = field(default_factory=list)
    connections: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def extract_from(cls, building: Building, floor_id: int = 0) -> "ManualFloorPlan":
        """Simulate the manual extraction step from one floor of a real building.

        Only bounding boxes survive the manual extraction — interior geometry
        detail is lost, which is part of what makes MWGen's environments
        "semi-artificial".
        """
        floor = building.floor(floor_id)
        plan = cls()
        for partition in floor.partitions.values():
            box = partition.polygon.bounding_box
            plan.rooms.append(
                (partition.partition_id, box.min_x, box.min_y, box.max_x, box.max_y)
            )
        for door in floor.doors.values():
            first, second = door.partitions
            if first in floor.partitions and second in floor.partitions:
                plan.connections.append((first, second))
        return plan


@dataclass
class MWGenConfig:
    """Configuration of the MWGen-style generator."""

    object_count: int = 20
    duration: float = 600.0
    num_floors: int = 1
    routing: str = "length"  # "length" (min distance) or "time" (min walking time)
    trips_per_object: int = 3
    walking_speed: float = 1.4
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.object_count < 0:
            raise ConfigurationError("object_count must be non-negative")
        if self.num_floors < 1:
            raise ConfigurationError("num_floors must be at least 1")
        if self.routing not in ("length", "time"):
            raise ConfigurationError("routing must be 'length' or 'time'")


@dataclass
class MWGenOutput:
    """What MWGen produces: coarse trajectories only."""

    building: Building
    trajectories: Dict[str, List[TrajectoryRecord]]

    @property
    def produces_positioning_data(self) -> bool:
        """MWGen cannot generate indoor positioning data (Section 1)."""
        return False

    @property
    def produces_rssi_data(self) -> bool:
        return False

    @property
    def trajectory_count(self) -> int:
        return len(self.trajectories)

    @property
    def total_records(self) -> int:
        return sum(len(records) for records in self.trajectories.values())


class MWGenGenerator:
    """Generates MWGen-style trajectories from a manually extracted floor plan."""

    def __init__(self, plan: ManualFloorPlan, config: Optional[MWGenConfig] = None) -> None:
        if not plan.rooms:
            raise ConfigurationError("the manual floor plan has no rooms")
        self.plan = plan
        self.config = config or MWGenConfig()
        self.rng = random.Random(self.config.seed)
        self.building = self._build_building()
        # MWGen's selling point is its precomputed indoor graph; the cached
        # spatial service is the modern equivalent (shared Dijkstra tables
        # instead of a fresh whole-graph search per trip).
        self.spatial = SpatialService(
            self.building, walking_speed=self.config.walking_speed
        )

    @property
    def planner(self) -> RoutePlanner:
        """The door-to-door route planner (owned by the spatial service)."""
        return self.spatial.planner

    # ------------------------------------------------------------------ #
    # Building construction: the floor plan is duplicated per floor
    # ------------------------------------------------------------------ #
    def _build_building(self) -> Building:
        building = Building("mwgen_world", name="MWGen mini world")
        for floor_id in range(self.config.num_floors):
            floor = building.new_floor(floor_id)
            self._populate_floor(floor, floor_id)
        self._connect_floors(building)
        return building

    def _populate_floor(self, floor: Floor, floor_id: int) -> None:
        rectangles: Dict[str, Polygon] = {}
        for name, min_x, min_y, max_x, max_y in self.plan.rooms:
            polygon = Polygon.rectangle(min_x, min_y, max_x, max_y)
            rectangles[name] = polygon
            floor.add_partition(
                Partition(
                    partition_id=f"f{floor_id}_{name}",
                    floor_id=floor_id,
                    polygon=polygon,
                    kind=PartitionKind.ROOM,
                    name=name,
                )
            )
        for index, (first, second) in enumerate(self.plan.connections):
            if first not in rectangles or second not in rectangles:
                continue
            position = self._shared_boundary_midpoint(rectangles[first], rectangles[second])
            if position is None:
                continue
            floor.add_door(
                Door(
                    door_id=f"f{floor_id}_conn{index}",
                    floor_id=floor_id,
                    position=position,
                    partitions=(f"f{floor_id}_{first}", f"f{floor_id}_{second}"),
                    width=1.2,
                )
            )

    @staticmethod
    def _shared_boundary_midpoint(first: Polygon, second: Polygon) -> Optional[Point]:
        box_a, box_b = first.bounding_box, second.bounding_box
        overlap_x = (max(box_a.min_x, box_b.min_x), min(box_a.max_x, box_b.max_x))
        overlap_y = (max(box_a.min_y, box_b.min_y), min(box_a.max_y, box_b.max_y))
        if overlap_x[0] > overlap_x[1] + 1e-6 or overlap_y[0] > overlap_y[1] + 1e-6:
            return None
        return Point(
            (overlap_x[0] + overlap_x[1]) / 2.0,
            (overlap_y[0] + overlap_y[1]) / 2.0,
        )

    def _connect_floors(self, building: Building) -> None:
        from repro.building.model import Staircase

        if self.config.num_floors < 2 or not self.plan.rooms:
            return
        anchor_name = self.plan.rooms[0][0]
        for lower in range(self.config.num_floors - 1):
            upper = lower + 1
            lower_partition = building.partition(lower, f"f{lower}_{anchor_name}")
            upper_partition = building.partition(upper, f"f{upper}_{anchor_name}")
            building.add_staircase(
                Staircase(
                    staircase_id=f"mwgen_stair_{lower}_{upper}",
                    lower_floor=lower,
                    upper_floor=upper,
                    lower_partition=lower_partition.partition_id,
                    lower_point=lower_partition.centroid,
                    upper_partition=upper_partition.partition_id,
                    upper_point=upper_partition.centroid,
                )
            )

    # ------------------------------------------------------------------ #
    # Trajectory generation
    # ------------------------------------------------------------------ #
    def generate(self) -> MWGenOutput:
        """Generate coarse trajectories: one record per visited route waypoint."""
        trajectories: Dict[str, List[TrajectoryRecord]] = {}
        partitions = self.building.all_partitions()
        for index in range(self.config.object_count):
            object_id = f"mwgen_obj_{index + 1:03d}"
            records: List[TrajectoryRecord] = []
            t = 0.0
            current = self.rng.choice(partitions)
            position = current.random_point(self.rng)
            records.append(self._record(object_id, current, position, t))
            for _ in range(self.config.trips_per_object):
                target = self.rng.choice(partitions)
                goal = target.random_point(self.rng)
                try:
                    route = self.spatial.shortest_route(
                        current.floor_id, position, target.floor_id, goal,
                        metric=self.config.routing,
                    )
                except Exception:
                    continue
                # MWGen reports only waypoint-level granularity.
                for waypoint in route.waypoints[1:]:
                    leg_time = (
                        route.travel_time / max(len(route.waypoints) - 1, 1)
                    )
                    t += leg_time
                    records.append(
                        TrajectoryRecord(
                            object_id=object_id,
                            location=IndoorLocation(
                                building_id=self.building.building_id,
                                floor_id=waypoint.floor_id,
                                partition_id=waypoint.partition_id,
                                x=waypoint.point.x,
                                y=waypoint.point.y,
                            ),
                            t=t,
                        )
                    )
                current, position = target, goal
                if t >= self.config.duration:
                    break
            trajectories[object_id] = records
        return MWGenOutput(building=self.building, trajectories=trajectories)

    @staticmethod
    def _record(object_id: str, partition: Partition, position: Point, t: float) -> TrajectoryRecord:
        return TrajectoryRecord(
            object_id=object_id,
            location=IndoorLocation(
                building_id=partition.floor_id and "mwgen_world" or "mwgen_world",
                floor_id=partition.floor_id,
                partition_id=partition.partition_id,
                x=position.x,
                y=position.y,
            ),
            t=t,
        )


__all__ = ["ManualFloorPlan", "MWGenConfig", "MWGenOutput", "MWGenGenerator"]
