"""A simplified re-implementation of the RFID test-data generation tool
(Zhang et al., ICCIE 2010).

Section 1: "The RFID data generation tool generates RFID data for testing
RFID business tracking systems where objects are constrained to conveyor
belts only.  The tool allows for configuration on parameters such as the
number of virtual RFID readers, the number of RFID tags, and the velocity of
conveyor belts."  It "only generates RFID data and produces no trajectory
data".

Tags move along one-dimensional conveyor belts past fixed readers; the output
is reader-event data (which tag passed which reader when), with no trajectory
or location information whatsoever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ConveyorBelt:
    """A conveyor belt of a given length (metres) and velocity (metres/second)."""

    belt_id: str
    length: float
    velocity: float


@dataclass(frozen=True)
class RFIDReaderStation:
    """A reader mounted at a fixed position along a belt."""

    reader_id: str
    belt_id: str
    position: float
    detection_window: float = 0.5


@dataclass(frozen=True)
class RFIDReading:
    """One reader event: ``tag_id`` observed by ``reader_id`` at time ``t``."""

    tag_id: str
    reader_id: str
    t: float


@dataclass
class RFIDToolConfig:
    """Configuration of the conveyor-belt RFID data generator."""

    belt_count: int = 2
    belt_length: float = 50.0
    belt_velocity: float = 0.5
    readers_per_belt: int = 4
    tag_count: int = 100
    inter_tag_gap: float = 5.0
    read_miss_probability: float = 0.02
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.belt_count < 1 or self.readers_per_belt < 1:
            raise ConfigurationError("need at least one belt and one reader per belt")
        if self.belt_length <= 0 or self.belt_velocity <= 0:
            raise ConfigurationError("belt length and velocity must be positive")
        if self.tag_count < 0:
            raise ConfigurationError("tag_count must be non-negative")
        if not 0.0 <= self.read_miss_probability < 1.0:
            raise ConfigurationError("read_miss_probability must be in [0, 1)")


@dataclass
class RFIDToolOutput:
    """What the RFID tool produces: reader events only."""

    belts: List[ConveyorBelt]
    readers: List[RFIDReaderStation]
    readings: List[RFIDReading]

    @property
    def produces_trajectory_data(self) -> bool:
        """The tool produces no trajectory data (Section 1)."""
        return False

    @property
    def produces_positioning_data(self) -> bool:
        """Reader events are symbolic RFID data, not location estimates."""
        return False

    @property
    def supports_real_buildings(self) -> bool:
        return False

    @property
    def reading_count(self) -> int:
        return len(self.readings)


class RFIDToolGenerator:
    """Simulates tags moving along conveyor belts past RFID readers."""

    def __init__(self, config: Optional[RFIDToolConfig] = None) -> None:
        self.config = config or RFIDToolConfig()
        self.rng = random.Random(self.config.seed)
        self.belts = [
            ConveyorBelt(
                belt_id=f"belt_{index + 1}",
                length=self.config.belt_length,
                velocity=self.config.belt_velocity,
            )
            for index in range(self.config.belt_count)
        ]
        self.readers = self._place_readers()

    def _place_readers(self) -> List[RFIDReaderStation]:
        readers: List[RFIDReaderStation] = []
        for belt in self.belts:
            spacing = belt.length / (self.config.readers_per_belt + 1)
            for index in range(self.config.readers_per_belt):
                readers.append(
                    RFIDReaderStation(
                        reader_id=f"{belt.belt_id}_reader_{index + 1}",
                        belt_id=belt.belt_id,
                        position=spacing * (index + 1),
                    )
                )
        return readers

    def generate(self) -> RFIDToolOutput:
        """Send every tag down a random belt and record the reader events."""
        readings: List[RFIDReading] = []
        readers_by_belt: Dict[str, List[RFIDReaderStation]] = {}
        for reader in self.readers:
            readers_by_belt.setdefault(reader.belt_id, []).append(reader)
        for index in range(self.config.tag_count):
            tag_id = f"tag_{index + 1:05d}"
            belt = self.rng.choice(self.belts)
            start_time = index * self.config.inter_tag_gap
            for reader in readers_by_belt[belt.belt_id]:
                if self.rng.random() < self.config.read_miss_probability:
                    continue
                arrival = start_time + reader.position / belt.velocity
                jitter = self.rng.uniform(-reader.detection_window, reader.detection_window)
                readings.append(
                    RFIDReading(tag_id=tag_id, reader_id=reader.reader_id, t=arrival + jitter)
                )
        readings.sort(key=lambda reading: reading.t)
        return RFIDToolOutput(belts=self.belts, readers=self.readers, readings=readings)


__all__ = [
    "ConveyorBelt",
    "RFIDReaderStation",
    "RFIDReading",
    "RFIDToolConfig",
    "RFIDToolOutput",
    "RFIDToolGenerator",
]
