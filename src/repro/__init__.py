"""Vita: a versatile toolkit for generating indoor mobility data for real-world buildings.

Reproduction of Li et al., PVLDB 9(13):1453-1456 (2016).

The public API is organised by pipeline layer:

* :mod:`repro.core` — configuration, the three-layer pipeline and the ``Vita``
  facade that follows the paper's six-step demonstration path;
* :mod:`repro.ifc` / :mod:`repro.building` — the Infrastructure Layer (DBI
  processing, host indoor environment, topology, routing);
* :mod:`repro.devices` — positioning devices and deployment models;
* :mod:`repro.mobility` — the Moving Object Layer;
* :mod:`repro.rssi` / :mod:`repro.positioning` — the Positioning Layer;
* :mod:`repro.storage` — repositories, Data Stream APIs and import/export;
* :mod:`repro.live` — continuous queries: standing monitors evaluated
  incrementally over the live generation stream (or replayed over a
  warehouse);
* :mod:`repro.obs` — observability: metrics registry, span tracing and the
  per-run :class:`~repro.obs.Telemetry` bundle (off by default, zero-cost
  when disabled);
* :mod:`repro.analysis` — accuracy vs ground truth and dataset statistics;
* :mod:`repro.baselines` — MWGen / IndoorSTG / RFID-tool style baselines.

Quickstart::

    from repro import Vita

    vita = Vita(seed=7)
    vita.use_synthetic_building("office", floors=2)
    vita.deploy_devices("wifi", count_per_floor=6, deployment="coverage")
    vita.generate_objects(count=50, duration=600)
    vita.generate_rssi(sampling_period=2.0)
    estimates = vita.generate_positioning("fingerprinting")
"""

from repro.core.config import VitaConfig, config_from_dict, config_from_json
from repro.core.pipeline import GenerationResult, VitaPipeline
from repro.core.toolkit import Vita
from repro.live.monitors import Monitor
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.core.types import (
    DeviceType,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    TrajectoryRecord,
)

__version__ = "1.0.0"

__all__ = [
    "MetricsRegistry",
    "Monitor",
    "Telemetry",
    "Tracer",
    "Vita",
    "VitaConfig",
    "VitaPipeline",
    "GenerationResult",
    "config_from_dict",
    "config_from_json",
    "DeviceType",
    "IndoorLocation",
    "PositioningMethod",
    "PositioningRecord",
    "ProbabilisticPositioningRecord",
    "ProximityRecord",
    "RSSIRecord",
    "TrajectoryRecord",
    "__version__",
]
