"""Command-line interface for the Vita toolkit.

The GUI prototype of the paper drives the pipeline through tabs; the library
equivalent is a small CLI:

* ``vita-generate generate --config run.json --output out/`` — run the full
  three-layer pipeline described by a JSON configuration and export every
  generated dataset as CSV/JSONL; add ``--backend sqlite`` to persist the
  warehouse to a ``.sqlite`` file (``--db`` overrides its location) so later
  processes can query it without regenerating;
* ``vita-generate query --db out/vita.sqlite --snapshot 120`` — run Data
  Stream API queries (snapshot, time range, kNN, region, visit counts)
  against a previously generated SQLite warehouse; the generic builder
  interface composes arbitrary queries over any dataset, e.g.
  ``vita-generate query --db out/vita.sqlite --dataset trajectory
  --where 'floor_id=1' --during 0 120 --count-by partition_id --explain``;
* ``vita-generate monitor --config run.json --follow`` — run the streaming
  pipeline with the configuration's standing monitors attached, printing
  geofence alert lines as shards merge and a final per-window report;
  ``--replay --db out/vita.sqlite`` evaluates the same monitors over an
  already generated warehouse instead (identical results, by contract);
* ``vita-generate describe --building mall --floors 2`` — print a summary and
  an ASCII rendering of one of the synthetic buildings (or of an IFC file via
  ``--ifc``);
* ``vita-generate export-ifc --building office --output office.ifc`` — write a
  synthetic building as an IFC-SPF (DBI) file, optionally with injected data
  errors for testing DBI processors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.building.synthetic import building_by_name
from repro.building.topology import AccessibilityGraph
from repro.core.config import config_from_json
from repro.core.errors import VitaError
from repro.core.pipeline import VitaPipeline
from repro.ifc.extractor import DBIProcessor
from repro.ifc.writer import ErrorInjection, write_ifc
from repro.geometry.point import Point
from repro.live.monitors import parse_condition
from repro.geometry.polygon import BoundingBox
from repro.storage.export import export_warehouse
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI
from repro.viz.ascii_map import render_building


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vita-generate",
        description="Generate indoor mobility data for real-world buildings (Vita).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="run the three-layer pipeline from a JSON configuration"
    )
    generate.add_argument("--config", required=True, help="path to the JSON configuration")
    generate.add_argument("--output", default="output/vita", help="directory for the exported datasets")
    generate.add_argument("--backend", choices=("memory", "sqlite"), default=None,
                          help="storage backend (overrides the config's storage.backend)")
    generate.add_argument("--db", default=None,
                          help="SQLite database path (default: <output>/vita.sqlite)")
    generate.add_argument("--workers", type=int, default=None, metavar="N",
                          help="run generation shards in N parallel processes "
                               "(default: the config's 'workers'; output is "
                               "identical for any N)")
    generate.add_argument("--shards", type=int, default=None, metavar="N",
                          help="deterministic shard count (default: the config's "
                               "'shards', else derived from the object count)")
    generate.add_argument("--flush-every", type=int, default=None, metavar="N",
                          dest="flush_every",
                          help="flush pending records to storage every N records "
                               "(default: the config's storage.flush_every)")
    generate.add_argument("--progress", action="store_true",
                          help="report objects/records per second (and spatial cache "
                               "hit rates) to stderr while generating")
    generate.add_argument("--no-spatial-cache", action="store_true",
                          dest="no_spatial_cache",
                          help="disable the shared spatial-service caches (output is "
                               "identical; useful for benchmarking the cache win)")
    _add_telemetry_flags(generate)

    query = subparsers.add_parser(
        "query", help="run Data Stream API queries against a generated SQLite warehouse"
    )
    query.add_argument("--db", required=True, help="path to the .sqlite warehouse")
    query.add_argument("--summary", action="store_true", help="print record counts")
    query.add_argument("--snapshot", type=float, metavar="T",
                       help="last known location of every object around time T")
    query.add_argument("--tolerance", type=float, default=1.0,
                       help="snapshot/kNN time tolerance in seconds")
    query.add_argument("--window", nargs=2, type=float, metavar=("T0", "T1"),
                       help="count trajectory records with T0 <= t <= T1")
    query.add_argument("--knn", nargs=5, type=float, metavar=("FLOOR", "X", "Y", "T", "K"),
                       help="the K objects closest to (X, Y) on FLOOR around time T")
    query.add_argument("--region", nargs=7, type=float,
                       metavar=("FLOOR", "XMIN", "YMIN", "XMAX", "YMAX", "T0", "T1"),
                       help="objects inside the box on FLOOR during [T0, T1]")
    query.add_argument("--visits", action="store_true",
                       help="distinct objects per partition (POI visit counts)")
    builder = query.add_argument_group(
        "composable builder queries",
        "compose one query over any dataset; combine freely with --explain",
    )
    builder.add_argument("--dataset",
                         help="dataset to query with the builder interface: "
                              "trajectory, rssi, positioning, probabilistic, "
                              "proximity or device")
    builder.add_argument("--where", action="append", default=[], metavar="COND",
                         help="predicate like 'object_id=o12', 'rssi>=-60' or "
                              "'floor_id!=0' (repeatable, ANDed)")
    builder.add_argument("--during", nargs=2, type=float, metavar=("T0", "T1"),
                         help="restrict to rows with T0 <= t <= T1")
    builder.add_argument("--select", metavar="COLS",
                         help="comma-separated projection, e.g. object_id,t")
    builder.add_argument("--order-by", metavar="COL",
                         help="sort column; prefix with '-' for descending")
    builder.add_argument("--limit", type=int, metavar="N",
                         help="return at most N rows")
    builder.add_argument("--count", action="store_true",
                         help="return the matching row count")
    builder.add_argument("--count-by", metavar="COL",
                         help="rows per distinct value of COL")
    builder.add_argument("--distinct", metavar="COL",
                         help="sorted distinct values of COL")
    builder.add_argument("--stats", metavar="COL",
                         help="count/mean/min/max/sum of COL")
    builder.add_argument("--explain", action="store_true",
                         help="report what the engine pushes down for the query")
    builder.add_argument("--profile", action="store_true",
                         help="execute the query and report per-stage wall time, "
                              "rows scanned vs returned and engine statement "
                              "timings (implies --explain's plan description)")
    _add_telemetry_flags(query)

    monitor = subparsers.add_parser(
        "monitor",
        help="evaluate the configuration's standing monitors, live or replayed",
    )
    monitor.add_argument("--config", required=True,
                         help="JSON configuration with a 'monitors' section")
    mode = monitor.add_mutually_exclusive_group(required=True)
    mode.add_argument("--follow", action="store_true",
                      help="attach the monitors to a streaming generation run")
    mode.add_argument("--replay", action="store_true",
                      help="evaluate the monitors over an existing --db warehouse")
    monitor.add_argument("--db", default=None,
                         help="SQLite warehouse: the replay source, or where "
                              "--follow persists the generated data")
    monitor.add_argument("--workers", type=int, default=None, metavar="N",
                         help="generation workers for --follow (results are "
                              "identical for any N)")
    monitor.add_argument("--shards", type=int, default=None, metavar="N",
                         help="deterministic shard count for --follow")
    monitor.add_argument("--flush-every", type=int, default=None, metavar="N",
                         dest="flush_every",
                         help="flush/evaluation batch size for --follow")
    monitor.add_argument("--no-alerts", action="store_true", dest="no_alerts",
                         help="suppress the live alert lines on stderr")
    _add_telemetry_flags(monitor)

    describe = subparsers.add_parser(
        "describe", help="summarise and render a building (synthetic or IFC)"
    )
    describe.add_argument("--building", default="office",
                          help="synthetic building name: office, mall or clinic")
    describe.add_argument("--floors", type=int, default=2, help="number of floors")
    describe.add_argument("--ifc", help="describe an IFC file instead of a synthetic building")
    describe.add_argument("--no-map", action="store_true", help="skip the ASCII rendering")

    export_ifc = subparsers.add_parser(
        "export-ifc", help="write a synthetic building as an IFC-SPF (DBI) file"
    )
    export_ifc.add_argument("--building", default="office",
                            help="synthetic building name: office, mall or clinic")
    export_ifc.add_argument("--floors", type=int, default=2, help="number of floors")
    export_ifc.add_argument("--output", required=True, help="target .ifc path")
    export_ifc.add_argument("--inject-orphan-doors", type=int, default=0,
                            help="number of doors to displace (data-error injection)")
    export_ifc.add_argument("--inject-degenerate-spaces", type=int, default=0,
                            help="number of spaces to degenerate (data-error injection)")
    return parser


def _add_telemetry_flags(subparser: argparse.ArgumentParser) -> None:
    """The observability flags shared by generate / query / monitor."""
    telemetry = subparser.add_argument_group(
        "observability",
        "either flag enables telemetry for the run (see docs/observability.md)",
    )
    telemetry.add_argument("--metrics-json", default=None, metavar="PATH",
                           dest="metrics_json",
                           help="write the run's metrics registry (counters, "
                                "gauges, histogram percentiles) as JSON to PATH")
    telemetry.add_argument("--trace-json", default=None, metavar="PATH",
                           dest="trace_json",
                           help="write the run's span trace as JSON to PATH")


def _apply_telemetry_flags(config, args: argparse.Namespace) -> None:
    """CLI telemetry flags override (and enable) the config's telemetry section."""
    if args.metrics_json is not None or args.trace_json is not None:
        config.telemetry.enabled = True
    if args.metrics_json is not None:
        config.telemetry.metrics_json = args.metrics_json
    if args.trace_json is not None:
        config.telemetry.trace_json = args.trace_json


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _command_generate(args: argparse.Namespace) -> int:
    config = config_from_json(args.config)
    output = Path(args.output)
    # CLI flags override the config's storage section; --db implies sqlite.
    if args.backend == "memory" and args.db is not None:
        print("error: --db requires the sqlite backend", file=sys.stderr)
        return 2
    if args.backend is not None:
        config.storage.backend = args.backend
        if args.backend == "memory":
            config.storage.path = None
    elif args.db is not None:
        config.storage.backend = "sqlite"
    if config.storage.backend == "sqlite":
        if args.db is not None:
            config.storage.path = args.db
        elif config.storage.path is None:
            config.storage.path = str(output / "vita.sqlite")
    if args.no_spatial_cache:
        config.spatial.enabled = False
    _apply_telemetry_flags(config, args)

    progress = _progress_printer() if args.progress else None
    result = VitaPipeline(config).run_streaming(
        workers=args.workers,
        shards=args.shards,
        flush_every=args.flush_every,
        progress=progress,
    )
    report = result.report
    output.mkdir(parents=True, exist_ok=True)

    with result.warehouse as warehouse:
        written = export_warehouse(warehouse, output)
        summary = {
            "building": result.building.building_id,
            "storage": warehouse.backend.describe(),
            "records": warehouse.summary(),
            "generation": {
                "master_seed": report.master_seed,
                "shards": report.shard_count,
                "workers": report.workers,
                "flush_every": report.flush_every,
                "objects": report.objects,
                "max_pending_records": report.max_pending,
                "flushes": report.flushes,
                "records_per_second": round(report.records_per_second, 1),
            },
            "spatial_cache": _cache_summary(report.cache_stats),
            "timings_seconds": {name: round(value, 3) for name, value in report.timings.items()},
            "outputs": {name: str(path) for name, path in written.items()},
        }
        if report.monitors:
            summary["monitors"] = report.monitors
        if report.telemetry.get("enabled"):
            summary["telemetry"] = report.telemetry
    (output / "summary.json").write_text(json.dumps(summary, indent=2), encoding="utf-8")
    print(json.dumps(summary, indent=2))
    return 0


def _cache_summary(stats: dict) -> dict:
    """Spatial-cache counters grouped per cache with a derived hit rate."""
    summary: dict = {}
    for name in ("route", "los", "locate", "table"):
        hits = int(stats.get(f"{name}_hits", 0))
        misses = int(stats.get(f"{name}_misses", 0))
        lookups = hits + misses
        summary[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        }
    return summary


def _cache_hit_line(stats: dict) -> str:
    """Compact ``route=93% los=88%`` rendering for progress lines."""
    parts = []
    for name in ("route", "los"):
        hits = int(stats.get(f"{name}_hits", 0))
        lookups = hits + int(stats.get(f"{name}_misses", 0))
        if lookups:
            parts.append(f"{name}={100.0 * hits / lookups:.0f}%")
    return " ".join(parts)


def _progress_printer():
    """A progress callback printing one line per event to stderr."""

    def _print(event) -> None:
        shard = "-" if event.shard_id is None else f"{event.shard_id + 1}/{event.shard_count}"
        suffix = ""
        if event.phase in ("shard-done", "done"):
            hit_line = _cache_hit_line(event.cache_stats)
            if hit_line:
                suffix = f" cache[{hit_line}]"
        print(
            f"[{event.phase:>11}] shard {shard} objects={event.objects_done} "
            f"records={event.records_written} pending={event.pending_records} "
            f"({event.records_per_second:,.0f} rec/s){suffix}",
            file=sys.stderr,
        )

    return _print


# ``--where`` conditions share the standing monitors' textual predicate
# syntax (``'rssi>=-60'`` -> ("rssi", ">=", -60), values parsed as JSON).
_parse_where = parse_condition


def _builder_query(args: argparse.Namespace, warehouse: DataWarehouse) -> dict:
    """Run (and/or explain) the composable query the CLI flags describe."""
    query = warehouse.query(args.dataset)
    for condition in args.where:
        query = query.where(*_parse_where(condition))
    if args.during:
        query = query.during(*args.during)
    if args.select:
        query = query.select(*[column.strip() for column in args.select.split(",")])
    if args.order_by:
        query = query.order_by(args.order_by)
    if args.limit is not None:
        query = query.limit(args.limit)

    verbs = [name for name, active in (("count", args.count), ("count_by", args.count_by),
                                       ("distinct", args.distinct), ("stats", args.stats))
             if active]
    if len(verbs) > 1:
        raise VitaError("choose at most one of --count/--count-by/--distinct/--stats")
    verb = verbs[0] if verbs else "all"
    column = args.distinct or args.stats
    by = args.count_by

    result: dict = {"dataset": args.dataset}
    if args.explain:
        result["explain"] = query.explain(verb, column=column, by=by)
    if args.profile:
        result["profile"] = query.profile(verb, column=column, by=by)
        return result  # the profile executed the query; don't run it twice
    if verb == "count":
        result["count"] = query.count()
    elif verb == "count_by":
        result["count_by"] = query.count_by(by)
    elif verb == "distinct":
        result["distinct"] = query.distinct(column)
    elif verb == "stats":
        result["stats"] = query.stats(column)
    elif not args.explain:  # --explain alone skips the row fetch
        result["rows"] = query.all()
    return result


def _command_monitor(args: argparse.Namespace) -> int:
    config = config_from_json(args.config)
    if not config.monitors:
        print(f"error: {args.config} has no 'monitors' section; nothing to watch",
              file=sys.stderr)
        return 2
    on_alert = None if args.no_alerts else _alert_printer()

    if args.replay:
        if args.db is None:
            print("error: --replay needs --db pointing at a generated warehouse",
                  file=sys.stderr)
            return 2
        if not Path(args.db).exists():
            print(f"error: no such database {args.db}", file=sys.stderr)
            return 2
        monitors = [monitor_config.build() for monitor_config in config.monitors]
        telemetry = _query_telemetry(args)
        with DataWarehouse.open("sqlite", path=args.db) as warehouse:
            live = DataStreamAPI(warehouse).replay_monitors(
                monitors, on_alert=on_alert, telemetry=telemetry
            )
        _write_telemetry_files(telemetry, args)
        summary = {"mode": "replay", "db": args.db,
                   "dropped_alerts": _total_dropped(live), **live.to_json()}
        print(json.dumps(summary, indent=2))
        return 0

    if args.db is not None:
        config.storage.backend = "sqlite"
        config.storage.path = args.db
    _apply_telemetry_flags(config, args)
    result = VitaPipeline(config).run_streaming(
        workers=args.workers,
        shards=args.shards,
        flush_every=args.flush_every,
        on_alert=on_alert,
    )
    result.warehouse.close()
    live = result.live
    summary = {
        "mode": "follow",
        "master_seed": result.report.master_seed,
        "records": {name: count for name, count in result.report.records_written.items()},
        "dropped_alerts": _total_dropped(live),
        **live.to_json(),
    }
    if result.report.telemetry.get("enabled"):
        summary["telemetry"] = result.report.telemetry
    print(json.dumps(summary, indent=2))
    return 0


def _total_dropped(live) -> int:
    """Alerts evicted from the bounded pending queue, across all monitors."""
    return sum(result.dropped_alerts for result in live.results.values())


def _alert_printer():
    """One stderr line per geofence alert, as shard merges drain them."""

    def _print(alert) -> None:
        print(
            f"[alert] monitor={alert.monitor} t={alert.t:g} "
            f"object={alert.object_id} {alert.kind}",
            file=sys.stderr,
        )

    return _print


def _command_query(args: argparse.Namespace) -> int:
    if not Path(args.db).exists():
        print(f"error: no such database {args.db}", file=sys.stderr)
        return 2
    builder_flags = (args.dataset is not None, bool(args.where), args.during is not None,
                     args.select is not None, args.order_by is not None,
                     args.limit is not None, args.count, args.count_by is not None,
                     args.distinct is not None, args.stats is not None, args.explain,
                     args.profile)
    if any(builder_flags) and args.dataset is None:
        print("error: builder query flags require --dataset", file=sys.stderr)
        return 2
    telemetry = _query_telemetry(args)
    tracer, latency = telemetry.tracer, telemetry.metrics.histogram("cli.query.seconds")
    results = {}
    with DataWarehouse.open("sqlite", path=args.db) as warehouse:
        api = DataStreamAPI(warehouse)
        if args.dataset is not None:
            with tracer.span("query.builder", dataset=args.dataset) as span:
                results["query"] = _builder_query(args, warehouse)
            latency.observe(span.duration or 0.0)
        if args.summary or not any((args.snapshot is not None, args.window, args.knn,
                                    args.region, args.visits, args.dataset)):
            with tracer.span("query.summary"):
                results["summary"] = warehouse.summary()
        if args.snapshot is not None:
            with tracer.span("query.snapshot") as span:
                results["snapshot"] = {
                    object_id: location.as_record()
                    for object_id, location in api.snapshot(args.snapshot,
                                                            args.tolerance).items()
                }
            latency.observe(span.duration or 0.0)
        if args.window:
            t0, t1 = args.window
            with tracer.span("query.window") as span:
                results["window"] = {"t_start": t0, "t_end": t1,
                                     "records": len(api.trajectory_window(t0, t1))}
            latency.observe(span.duration or 0.0)
        if args.knn:
            floor, x, y, t, k = args.knn
            with tracer.span("query.knn") as span:
                results["knn"] = [
                    {"object_id": object_id, "distance": round(distance, 3)}
                    for object_id, distance in api.knn_at(int(floor), Point(x, y), t,
                                                          k=int(k), tolerance=args.tolerance)
                ]
            latency.observe(span.duration or 0.0)
        if args.region:
            floor, min_x, min_y, max_x, max_y, t0, t1 = args.region
            with tracer.span("query.region") as span:
                results["region"] = api.objects_in_region(
                    int(floor), BoundingBox(min_x, min_y, max_x, max_y), t0, t1
                )
            latency.observe(span.duration or 0.0)
        if args.visits:
            with tracer.span("query.visits") as span:
                results["visits"] = api.partition_visit_counts()
            latency.observe(span.duration or 0.0)
    _write_telemetry_files(telemetry, args)
    print(json.dumps(results, indent=2))
    return 0


def _query_telemetry(args: argparse.Namespace):
    """An enabled Telemetry when either observability flag is set, else no-op."""
    from repro.obs import Telemetry

    if args.metrics_json is None and args.trace_json is None:
        return Telemetry.disabled()
    return Telemetry()


def _write_telemetry_files(telemetry, args: argparse.Namespace) -> None:
    if args.metrics_json is not None:
        telemetry.write_metrics_json(args.metrics_json)
    if args.trace_json is not None:
        telemetry.write_trace_json(args.trace_json)


def _command_describe(args: argparse.Namespace) -> int:
    if args.ifc:
        building, report = DBIProcessor().process_file(args.ifc)
        print(f"Processed DBI file {args.ifc}: entities {report.entity_counts}")
        if report.errors:
            print(f"Data errors identified ({len(report.errors)}):")
            for error in report.errors:
                print(f"  - {error}")
    else:
        building = building_by_name(args.building, floors=args.floors)
    graph = AccessibilityGraph(building)
    print(f"{building}")
    print(
        f"floors={len(building.floors)} partitions={building.partition_count} "
        f"doors={building.door_count} staircases={len(building.staircases)} "
        f"total_area={building.total_area:.0f} m^2 "
        f"connected={graph.is_fully_connected()}"
    )
    if not args.no_map:
        print()
        print(render_building(building, width=100, height=22))
    return 0


def _command_export_ifc(args: argparse.Namespace) -> int:
    building = building_by_name(args.building, floors=args.floors)
    injection = ErrorInjection(
        orphan_doors=args.inject_orphan_doors,
        degenerate_spaces=args.inject_degenerate_spaces,
    )
    path = write_ifc(building, args.output, injection=injection)
    print(f"wrote {path} ({Path(path).stat().st_size} bytes)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "query":
            return _command_query(args)
        if args.command == "monitor":
            return _command_monitor(args)
        if args.command == "describe":
            return _command_describe(args)
        if args.command == "export-ifc":
            return _command_export_ifc(args)
    except VitaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
