"""Command-line interface for the Vita toolkit.

The GUI prototype of the paper drives the pipeline through tabs; the library
equivalent is a small CLI:

* ``vita-generate generate --config run.json --output out/`` — run the full
  three-layer pipeline described by a JSON configuration and export every
  generated dataset as CSV/JSONL;
* ``vita-generate describe --building mall --floors 2`` — print a summary and
  an ASCII rendering of one of the synthetic buildings (or of an IFC file via
  ``--ifc``);
* ``vita-generate export-ifc --building office --output office.ifc`` — write a
  synthetic building as an IFC-SPF (DBI) file, optionally with injected data
  errors for testing DBI processors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.building.synthetic import building_by_name
from repro.building.topology import AccessibilityGraph
from repro.core.config import config_from_json
from repro.core.errors import VitaError
from repro.core.pipeline import VitaPipeline
from repro.core.types import PositioningRecord, ProbabilisticPositioningRecord
from repro.ifc.extractor import DBIProcessor
from repro.ifc.writer import ErrorInjection, write_ifc
from repro.storage.export import (
    export_devices_csv,
    export_positioning_csv,
    export_probabilistic_jsonl,
    export_proximity_csv,
    export_rssi_csv,
    export_trajectories_csv,
)
from repro.viz.ascii_map import render_building


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vita-generate",
        description="Generate indoor mobility data for real-world buildings (Vita).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="run the three-layer pipeline from a JSON configuration"
    )
    generate.add_argument("--config", required=True, help="path to the JSON configuration")
    generate.add_argument("--output", default="output/vita", help="directory for the exported datasets")

    describe = subparsers.add_parser(
        "describe", help="summarise and render a building (synthetic or IFC)"
    )
    describe.add_argument("--building", default="office",
                          help="synthetic building name: office, mall or clinic")
    describe.add_argument("--floors", type=int, default=2, help="number of floors")
    describe.add_argument("--ifc", help="describe an IFC file instead of a synthetic building")
    describe.add_argument("--no-map", action="store_true", help="skip the ASCII rendering")

    export_ifc = subparsers.add_parser(
        "export-ifc", help="write a synthetic building as an IFC-SPF (DBI) file"
    )
    export_ifc.add_argument("--building", default="office",
                            help="synthetic building name: office, mall or clinic")
    export_ifc.add_argument("--floors", type=int, default=2, help="number of floors")
    export_ifc.add_argument("--output", required=True, help="target .ifc path")
    export_ifc.add_argument("--inject-orphan-doors", type=int, default=0,
                            help="number of doors to displace (data-error injection)")
    export_ifc.add_argument("--inject-degenerate-spaces", type=int, default=0,
                            help="number of spaces to degenerate (data-error injection)")
    return parser


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _command_generate(args: argparse.Namespace) -> int:
    config = config_from_json(args.config)
    result = VitaPipeline(config).run()
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)

    warehouse = result.warehouse
    written = {}
    if len(warehouse.devices):
        written["devices"] = export_devices_csv(
            warehouse.devices.all_records(), output / "devices.csv"
        )
    trajectory_records = warehouse.trajectories.to_trajectory_set().all_records()
    if trajectory_records:
        written["trajectories"] = export_trajectories_csv(
            trajectory_records, output / "raw_trajectories.csv"
        )
    if len(warehouse.rssi):
        written["rssi"] = export_rssi_csv(warehouse.rssi.all_records(), output / "raw_rssi.csv")
    if len(warehouse.positioning):
        written["positioning"] = export_positioning_csv(
            warehouse.positioning.all_records(), output / "positioning.csv"
        )
    if len(warehouse.probabilistic):
        written["probabilistic"] = export_probabilistic_jsonl(
            warehouse.probabilistic.all_records(), output / "positioning_probabilistic.jsonl"
        )
    if len(warehouse.proximity):
        written["proximity"] = export_proximity_csv(
            warehouse.proximity.all_records(), output / "proximity.csv"
        )
    summary = {
        "building": result.building.building_id,
        "records": warehouse.summary(),
        "timings_seconds": {name: round(value, 3) for name, value in result.timings.items()},
        "outputs": {name: str(path) for name, path in written.items()},
    }
    (output / "summary.json").write_text(json.dumps(summary, indent=2), encoding="utf-8")
    print(json.dumps(summary, indent=2))
    return 0


def _command_describe(args: argparse.Namespace) -> int:
    if args.ifc:
        building, report = DBIProcessor().process_file(args.ifc)
        print(f"Processed DBI file {args.ifc}: entities {report.entity_counts}")
        if report.errors:
            print(f"Data errors identified ({len(report.errors)}):")
            for error in report.errors:
                print(f"  - {error}")
    else:
        building = building_by_name(args.building, floors=args.floors)
    graph = AccessibilityGraph(building)
    print(f"{building}")
    print(
        f"floors={len(building.floors)} partitions={building.partition_count} "
        f"doors={building.door_count} staircases={len(building.staircases)} "
        f"total_area={building.total_area:.0f} m^2 "
        f"connected={graph.is_fully_connected()}"
    )
    if not args.no_map:
        print()
        print(render_building(building, width=100, height=22))
    return 0


def _command_export_ifc(args: argparse.Namespace) -> int:
    building = building_by_name(args.building, floors=args.floors)
    injection = ErrorInjection(
        orphan_doors=args.inject_orphan_doors,
        degenerate_spaces=args.inject_degenerate_spaces,
    )
    path = write_ifc(building, args.output, injection=injection)
    print(f"wrote {path} ({Path(path).stat().st_size} bytes)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "describe":
            return _command_describe(args)
        if args.command == "export-ifc":
            return _command_export_ifc(args)
    except VitaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
