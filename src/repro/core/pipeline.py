"""The three-layer generation pipeline (Figure 1 of the paper).

Given a :class:`~repro.core.config.VitaConfig`, the pipeline runs:

1. **Infrastructure Layer** — obtain the host indoor environment (synthetic
   building or IFC file), optionally decompose irregular partitions and run
   semantic extraction, then deploy the configured positioning devices;
2. **Moving Object Layer** — generate moving objects and their raw trajectory
   data at the trajectory sampling frequency;
3. **Positioning Layer** — generate raw RSSI measurements at the RSSI sampling
   frequency and derive positioning data with the chosen method.

All generated data is stored into a :class:`~repro.storage.repositories.DataWarehouse`
so that the Data Stream APIs can query it afterwards.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.building.editor import IndoorEnvironmentController
from repro.building.model import Building
from repro.building.semantics import SemanticExtractor
from repro.building.synthetic import building_by_name
from repro.core.config import VitaConfig
from repro.core.errors import ConfigurationError
from repro.core.streaming import (
    ProgressCallback,
    ShardContext,
    StreamingWriter,
    arrival_process_for,
    auto_shard_count,
    build_rssi_config,
    derive_seed,
    iter_shard_outputs,
    object_layer_components,
    plan_shards,
    resolve_master_seed,
)
from repro.core.types import PositioningMethod, PositioningRecord, ProbabilisticPositioningRecord
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import deployment_model_by_name
from repro.geometry.decompose import DecompositionConfig
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.engine import SimulationResult
from repro.obs import Telemetry
from repro.positioning.controller import PositioningConfig, PositioningMethodController
from repro.positioning.fingerprinting import RadioMap
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.spatial import SpatialService, merge_stats
from repro.storage.repositories import DataWarehouse


@dataclass
class GenerationResult:
    """Everything a full pipeline run produced."""

    config: VitaConfig
    building: Building
    warehouse: DataWarehouse
    simulation: SimulationResult
    positioning_output: list
    radio_map: Optional[RadioMap] = None
    timings: Dict[str, float] = field(default_factory=dict)
    #: Spatial-service cache counters of the run (route/LOS/locate/table).
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: The run's :meth:`~repro.obs.Telemetry.snapshot` (``{"enabled": False}``
    #: unless the configuration's ``telemetry:`` section enables it).
    telemetry: Dict[str, Any] = field(default_factory=lambda: {"enabled": False})

    @property
    def summary(self) -> Dict[str, float]:
        """Counts plus per-layer wall-clock timings and cache counters."""
        summary: Dict[str, float] = {key: float(value) for key, value in self.warehouse.summary().items()}
        summary.update({f"seconds_{name}": value for name, value in self.timings.items()})
        summary.update({f"cache_{name}": float(value) for name, value in self.cache_stats.items()})
        return summary


@dataclass
class StreamingReport:
    """What a streaming run did: determinism inputs, volumes and throughput.

    ``timings`` mixes two units: ``infrastructure`` and ``generation`` are
    wall-clock seconds of the run, while the per-layer ``*_cpu`` entries are
    summed across shards (with ``workers > 1`` they exceed wall-clock).
    """

    master_seed: int
    shard_count: int
    workers: int
    flush_every: int
    objects: int
    records_written: Dict[str, int]
    total_records: int
    max_pending: int
    flushes: int
    timings: Dict[str, float]
    elapsed_seconds: float
    #: Aggregated spatial-cache hit/miss counters across the parent (radio
    #: map survey) and every shard.  With ``workers > 1`` each worker keeps
    #: its own caches, so hit rates drop while output stays identical.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-monitor counters (windows emitted, alerts, records matched and
    #: dropped alerts) when standing monitors were attached to the run.
    monitors: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The run's :meth:`~repro.obs.Telemetry.snapshot`: merged shard metrics,
    #: writer/live-engine instruments and the span-count summary.
    telemetry: Dict[str, Any] = field(default_factory=lambda: {"enabled": False})

    @property
    def records_per_second(self) -> float:
        """Overall write throughput of the run (records/sec of wall-clock)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_records / self.elapsed_seconds


@dataclass
class StreamingGenerationResult:
    """Everything a streaming pipeline run produced.

    Unlike :class:`GenerationResult` there is no materialised simulation or
    positioning output — every record already lives in the warehouse, which
    is the point of the streaming path.
    """

    config: VitaConfig
    building: Building
    warehouse: DataWarehouse
    report: StreamingReport
    radio_map: Optional[RadioMap] = None
    devices: List = field(default_factory=list)
    #: The finalized :class:`~repro.live.LiveReport` when standing monitors
    #: were attached to the run (``None`` otherwise).
    live: Optional[Any] = None

    @property
    def summary(self) -> Dict[str, float]:
        """Counts plus per-layer timings, mirroring :class:`GenerationResult`."""
        summary: Dict[str, float] = {
            key: float(value) for key, value in self.warehouse.summary().items()
        }
        summary.update({f"seconds_{name}": value for name, value in self.report.timings.items()})
        summary.update(
            {f"cache_{name}": float(value) for name, value in self.report.cache_stats.items()}
        )
        return summary


class VitaPipeline:
    """Runs the three-layer pipeline for one configuration."""

    def __init__(self, config: Optional[VitaConfig] = None) -> None:
        self.config = config or VitaConfig()

    # ------------------------------------------------------------------ #
    # Layer 1: Infrastructure
    # ------------------------------------------------------------------ #
    def build_environment(self) -> Building:
        """Load/construct the host indoor environment."""
        environment = self.config.environment
        if environment.ifc_path:
            options = DBIProcessorOptions(
                decompose_partitions=environment.decompose,
                decomposition=DecompositionConfig(
                    max_area=environment.max_partition_area,
                    max_aspect_ratio=environment.max_aspect_ratio,
                ),
                extract_semantics=environment.extract_semantics,
            )
            building, _ = DBIProcessor(options).process_file(environment.ifc_path)
            return building
        building = building_by_name(environment.building, floors=environment.floors)
        if environment.decompose:
            controller = IndoorEnvironmentController(building)
            controller.decompose_irregular_partitions(
                DecompositionConfig(
                    max_area=environment.max_partition_area,
                    max_aspect_ratio=environment.max_aspect_ratio,
                )
            )
        if environment.extract_semantics:
            SemanticExtractor().annotate_building(building)
        return building

    def deploy_devices(self, building: Building) -> PositioningDeviceController:
        """Deploy every configured device group."""
        controller = PositioningDeviceController(building, seed=self.config.seed)
        for device_config in self.config.devices:
            model = deployment_model_by_name(device_config.deployment)
            controller.deploy(
                DeviceDeploymentRequest(
                    device_type=device_config.device_type,
                    count_per_floor=device_config.count_per_floor,
                    model=model,
                    floor_ids=device_config.floors,
                    overrides=device_config.overrides(),
                )
            )
        return controller

    def build_spatial(self, building: Building, devices=None) -> SpatialService:
        """The run-wide cached spatial service (configured by ``config.spatial``)."""
        return SpatialService(building, devices=devices, config=self.config.spatial)

    # ------------------------------------------------------------------ #
    # Layer 2: Moving objects
    # ------------------------------------------------------------------ #
    def generate_objects(
        self, building: Building, spatial: Optional[SpatialService] = None
    ) -> SimulationResult:
        """Generate moving objects and their raw trajectories."""
        objects = self.config.objects
        distribution, intention, behavior, crowd_model = object_layer_components(objects)
        arrival_process = arrival_process_for(objects.arrival_rate_per_minute)
        controller = MovingObjectController(
            building,
            config=ObjectGenerationConfig(
                count=objects.count,
                min_speed=objects.min_speed,
                max_speed=objects.max_speed,
                min_lifespan=objects.min_lifespan,
                max_lifespan=objects.max_lifespan,
                duration=objects.duration,
                sampling_period=objects.sampling_period,
                time_step=objects.time_step,
                routing_metric=objects.routing,
                seed=objects.seed,
            ),
            distribution=distribution,
            arrival_process=arrival_process,
            intention=intention,
            behavior=behavior,
            crowd_model=crowd_model,
            spatial=spatial,
        )
        return controller.generate()

    # ------------------------------------------------------------------ #
    # Layer 3: RSSI + positioning
    # ------------------------------------------------------------------ #
    def _rssi_config(self) -> RSSIGenerationConfig:
        return build_rssi_config(self.config.rssi, self.config.rssi.seed)

    def generate_rssi(
        self,
        building: Building,
        devices,
        simulation: SimulationResult,
        spatial: Optional[SpatialService] = None,
    ):
        """Generate raw RSSI measurements for the simulated trajectories."""
        generator = RSSIGenerator(building, devices, self._rssi_config(), spatial=spatial)
        return generator.generate(simulation.trajectories)

    def generate_positioning(
        self,
        building: Building,
        devices,
        rssi_records,
        spatial: Optional[SpatialService] = None,
    ):
        """Derive positioning data with the configured method."""
        positioning = self.config.positioning
        radio_map = None
        if positioning.method is PositioningMethod.FINGERPRINTING:
            survey_generator = RSSIGenerator(
                building, devices, self._rssi_config(), spatial=spatial
            )
            radio_map = RadioMap.survey_grid(
                building,
                survey_generator,
                spacing=positioning.radio_map_spacing,
                samples_per_location=positioning.radio_map_samples,
            )
        controller = PositioningMethodController(
            building,
            devices,
            PositioningConfig(
                method=positioning.method,
                sampling_period=positioning.sampling_period,
                fingerprinting_algorithm=positioning.algorithm,
                knn_k=positioning.knn_k,
                bayes_top_k=positioning.bayes_top_k,
                min_devices=positioning.min_devices,
                rssi_threshold=positioning.rssi_threshold,
            ),
            radio_map=radio_map,
            spatial=spatial,
        )
        return controller.generate(rssi_records), radio_map

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #
    def run(self, *, telemetry: Optional[Telemetry] = None) -> GenerationResult:
        """Execute all three layers and collect the output in a warehouse."""
        timings: Dict[str, float] = {}
        if telemetry is None:
            telemetry = Telemetry.from_config(self.config.telemetry, id_prefix="p:")
        tracer = telemetry.tracer
        root = tracer.span("pipeline.run")
        root.__enter__()

        start = time.perf_counter()
        with tracer.span("infrastructure"):
            building = self.build_environment()
            device_controller = self.deploy_devices(building)
            devices = list(device_controller.devices.values())
            # One spatial service serves every layer of the run: routes planned
            # for the engine, sight lines analysed for the RSSI noise model and
            # locations resolved for positioning all share the same caches.
            spatial = self.build_spatial(building, devices)
        timings["infrastructure"] = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("phase.moving_objects"):
            simulation = self.generate_objects(building, spatial=spatial)
        timings["moving_objects"] = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("phase.rssi"):
            rssi_records = self.generate_rssi(building, devices, simulation, spatial=spatial)
        timings["rssi"] = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("phase.positioning"):
            positioning_output, radio_map = self.generate_positioning(
                building, devices, rssi_records, spatial=spatial
            )
        timings["positioning"] = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("storage"):
            warehouse = DataWarehouse.from_config(self.config.storage)
            warehouse.attach_metrics(telemetry.metrics)
            # A pipeline run owns its warehouse: reusing an existing database
            # file replaces its contents, so the summary always describes this
            # run rather than an accumulation of appended reruns.
            warehouse.clear()
            warehouse.devices.add_many(device_controller.device_records())
            warehouse.trajectories.add_trajectory_set(simulation.trajectories)
            warehouse.rssi.add_many(rssi_records)
            self._store_positioning(warehouse, positioning_output)
            warehouse.flush()
        timings["storage"] = time.perf_counter() - start

        cache_stats = spatial.cache_stats()
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter("generated.objects").inc(simulation.object_count)
            metrics.counter("generated.records.trajectory").inc(
                len(simulation.trajectories.all_records())
            )
            metrics.counter("generated.records.rssi").inc(len(rssi_records))
            metrics.counter("generated.records.positioning").inc(len(positioning_output))
            spatial.record_metrics(metrics)
            for phase, seconds in timings.items():
                metrics.histogram(f"pipeline.phase_seconds.{phase}").observe(seconds)
        root.__exit__(None, None, None)

        return GenerationResult(
            config=self.config,
            building=building,
            warehouse=warehouse,
            simulation=simulation,
            positioning_output=positioning_output,
            radio_map=radio_map,
            timings=timings,
            cache_stats=cache_stats,
            telemetry=telemetry.snapshot(),
        )

    # ------------------------------------------------------------------ #
    # Streaming, sharded run
    # ------------------------------------------------------------------ #
    def run_streaming(
        self,
        *,
        warehouse: Optional[DataWarehouse] = None,
        progress: Optional[ProgressCallback] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        flush_every: Optional[int] = None,
        monitors: Optional[Sequence[Any]] = None,
        on_alert: Optional[Callable[[Any], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> StreamingGenerationResult:
        """Execute all three layers shard by shard, streaming into storage.

        The moving objects are partitioned into deterministic shards; each
        shard runs the full object -> trajectory -> RSSI -> positioning chain
        independently (optionally across ``workers`` processes) and its
        records are flushed to the backend in batches of ``flush_every``, so
        peak memory is O(shard), not O(dataset).  For a fixed
        ``(master seed, shard count)`` the stored output is record-identical
        regardless of ``workers``.

        Args:
            warehouse: stream into this warehouse instead of opening one from
                ``config.storage`` (it is cleared first: a run owns its
                warehouse, like :meth:`run`).
            progress: :class:`~repro.core.streaming.GenerationProgress`
                callback for objects/records-per-second reporting.
            workers / shards / flush_every: override the corresponding
                configuration knobs for this run only.
            monitors: standing :class:`~repro.live.Monitor` subscriptions
                evaluated incrementally as the records stream through the
                writer, *in addition to* the configuration's ``monitors:``
                section.  The finalized :class:`~repro.live.LiveReport` is
                returned as the result's ``live`` attribute; emission is
                identical for every ``workers`` value (per-shard partial
                window states merge in shard order).
            on_alert: geofence alert callback; alerts drain at every shard
                merge (without it they queue, bounded by ``flush_every``).
            telemetry: a pre-built :class:`~repro.obs.Telemetry` to record
                into (defaults to one built from ``config.telemetry``; the
                default section is disabled, a true no-op).
        """
        config = self.config
        workers = config.workers if workers is None else int(workers)
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        shard_count = config.shards if shards is None else int(shards)
        if shard_count is None:
            shard_count = auto_shard_count(config.objects.count)
        if shard_count < 1:
            raise ConfigurationError("shards must be at least 1")
        flush_every = config.storage.flush_every if flush_every is None else int(flush_every)
        if flush_every < 1:
            raise ConfigurationError("flush_every must be at least 1")

        if telemetry is None:
            # "p:" prefixes the parent's span ids; shard tracers use
            # "s<shard>:", so adopted worker spans can never collide.
            telemetry = Telemetry.from_config(config.telemetry, id_prefix="p:")
        tracer = telemetry.tracer
        root_context = tracer.span(
            "pipeline.run_streaming", workers=workers, shards=shard_count
        )
        root_span = root_context.__enter__()

        timings: Dict[str, float] = {}
        cache_stats: Dict[str, int] = {}
        run_start = time.perf_counter()
        with tracer.span("infrastructure"):
            building = self.build_environment()
            device_controller = self.deploy_devices(building)
            devices = list(device_controller.devices.values())
            spatial = self.build_spatial(building, devices)
            master_seed = resolve_master_seed(config)
            radio_map = None
            if config.positioning.method is PositioningMethod.FINGERPRINTING:
                # The radio map is shared infrastructure: surveyed once by the
                # parent with a seed derived from the master, never per shard.
                survey_generator = RSSIGenerator(
                    building,
                    devices,
                    build_rssi_config(config.rssi, seed=derive_seed(master_seed, -1, "survey")),
                    spatial=spatial,
                )
                radio_map = RadioMap.survey_grid(
                    building,
                    survey_generator,
                    spacing=config.positioning.radio_map_spacing,
                    samples_per_location=config.positioning.radio_map_samples,
                )
                merge_stats(cache_stats, spatial.cache_stats())
        timings["infrastructure"] = time.perf_counter() - run_start

        # Standing monitors: the config's monitors: section plus any passed
        # explicitly, evaluated through the writer's flush-batch tap.
        engine = None
        all_monitors = [monitor_config.build() for monitor_config in config.monitors]
        all_monitors.extend(monitors or ())
        if all_monitors:
            from repro.live.engine import LiveEngine  # local: optional subsystem

            engine = LiveEngine(
                all_monitors,
                spatial=spatial,
                on_alert=on_alert,
                max_pending_alerts=max(flush_every, 1),
                metrics=telemetry.metrics,
                tracer=telemetry.tracer,
            )

        if warehouse is None:
            warehouse = DataWarehouse.from_config(config.storage)
        warehouse.attach_metrics(telemetry.metrics)
        # A run owns its warehouse (same contract as the materialising path).
        warehouse.clear()
        plan = plan_shards(config.objects.count, shard_count, master_seed)
        writer = StreamingWriter(
            warehouse,
            flush_every,
            progress,
            record_hook=engine.writer_hook() if engine is not None else None,
            telemetry=telemetry,
        )
        writer.set_context(None, len(plan), 0)
        writer.write("devices", device_controller.device_records())
        writer.emit("devices")

        context = ShardContext(
            config=config,
            building=building,
            devices=devices,
            radio_map=radio_map,
            master_seed=master_seed,
            spatial=spatial,
        )
        objects_done = 0
        sample_ticks = itertools.count(1)

        def on_shard_start(shard) -> None:
            writer.set_context(shard.shard_id, len(plan), objects_done)
            writer.emit("shard-start")

        def on_sample(_record) -> None:
            # Serial-mode heartbeat: report rates while a long shard simulates.
            if next(sample_ticks) % 2000 == 0:
                writer.emit("objects")

        shards_start = time.perf_counter()
        for output in iter_shard_outputs(
            context,
            plan,
            workers,
            on_sample=on_sample if progress is not None else None,
            on_shard_start=on_shard_start,
        ):
            writer.set_context(output.shard_id, len(plan), objects_done)
            if engine is not None:
                # Each shard's records accumulate into a per-shard partial
                # window state, merged (and alert-drained) in shard order —
                # the outputs arrive shard-ordered for any workers value, so
                # monitor emission is identical to a serial run.
                engine.begin_shard(output.shard_id)
            writer.write("trajectories", output.trajectory_records)
            writer.write("rssi", output.rssi_records)
            writer.write_positioning(output.positioning_records)
            if engine is not None:
                engine.end_shard()
            objects_done += output.objects
            # Per-layer shard timings are summed across shards: CPU seconds,
            # not wall-clock (with workers > 1 they exceed elapsed time).
            # The "_cpu" suffix keeps them distinct from the wall-clock
            # "infrastructure"/"generation" entries.
            for name, value in output.timings.items():
                key = f"{name}_cpu"
                timings[key] = timings.get(key, 0.0) + value
            # Shard telemetry merges exactly like spatial_stats: per-shard
            # deltas folded in shard order, so the merged counters are
            # identical for every workers value.
            telemetry.metrics.merge(output.metrics)
            tracer.adopt(output.spans, parent=root_span)
            merge_stats(cache_stats, output.spatial_stats)
            writer.cache_stats = dict(cache_stats)
            writer.set_context(output.shard_id, len(plan), objects_done)
            writer.emit("shard-done")
        timings["generation"] = time.perf_counter() - shards_start

        warehouse.flush()
        with tracer.span("finalize"):
            live_report = engine.finalize() if engine is not None else None
        elapsed = time.perf_counter() - run_start
        writer.set_context(None, len(plan), objects_done)
        writer.emit("done")
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.gauge("pipeline.elapsed_seconds").set(elapsed)
            metrics.gauge("pipeline.records_per_second").set(
                writer.records_written / elapsed if elapsed > 0 else 0.0
            )
            for name, value in sorted(cache_stats.items()):
                metrics.gauge(f"spatial.cache.{name}").set(value)
        root_context.__exit__(None, None, None)
        if getattr(config.telemetry, "metrics_json", None):
            telemetry.write_metrics_json(config.telemetry.metrics_json)
        if getattr(config.telemetry, "trace_json", None):
            telemetry.write_trace_json(config.telemetry.trace_json)
        report = StreamingReport(
            master_seed=master_seed,
            shard_count=len(plan),
            workers=workers,
            flush_every=flush_every,
            objects=objects_done,
            records_written=dict(writer.written_by_repo),
            total_records=writer.records_written,
            max_pending=writer.max_pending,
            flushes=writer.flushes,
            timings=timings,
            elapsed_seconds=elapsed,
            cache_stats=cache_stats,
            monitors=live_report.summary() if live_report is not None else {},
            telemetry=telemetry.snapshot(),
        )
        return StreamingGenerationResult(
            config=config,
            building=building,
            warehouse=warehouse,
            report=report,
            radio_map=radio_map,
            devices=devices,
            live=live_report,
        )

    @staticmethod
    def _store_positioning(warehouse: DataWarehouse, output: list) -> None:
        deterministic, probabilistic, proximity = [], [], []
        for record in output:
            if isinstance(record, PositioningRecord):
                deterministic.append(record)
            elif isinstance(record, ProbabilisticPositioningRecord):
                probabilistic.append(record)
            else:
                proximity.append(record)
        warehouse.positioning.add_many(deterministic)
        warehouse.probabilistic.add_many(probabilistic)
        warehouse.proximity.add_many(proximity)


__all__ = [
    "GenerationResult",
    "StreamingReport",
    "StreamingGenerationResult",
    "VitaPipeline",
]
