"""The three-layer generation pipeline (Figure 1 of the paper).

Given a :class:`~repro.core.config.VitaConfig`, the pipeline runs:

1. **Infrastructure Layer** — obtain the host indoor environment (synthetic
   building or IFC file), optionally decompose irregular partitions and run
   semantic extraction, then deploy the configured positioning devices;
2. **Moving Object Layer** — generate moving objects and their raw trajectory
   data at the trajectory sampling frequency;
3. **Positioning Layer** — generate raw RSSI measurements at the RSSI sampling
   frequency and derive positioning data with the chosen method.

All generated data is stored into a :class:`~repro.storage.repositories.DataWarehouse`
so that the Data Stream APIs can query it afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.building.editor import IndoorEnvironmentController
from repro.building.model import Building
from repro.building.semantics import SemanticExtractor
from repro.building.synthetic import building_by_name
from repro.core.config import VitaConfig
from repro.core.errors import ConfigurationError
from repro.core.types import PositioningMethod, PositioningRecord, ProbabilisticPositioningRecord
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import deployment_model_by_name
from repro.geometry.decompose import DecompositionConfig
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions
from repro.mobility.behavior import behavior_by_name
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.crowd import crowd_model_by_name
from repro.mobility.distributions import (
    CrowdOutliersDistribution,
    NoArrivals,
    PoissonArrivals,
    UniformDistribution,
)
from repro.mobility.engine import SimulationResult
from repro.mobility.intentions import intention_by_name
from repro.positioning.controller import PositioningConfig, PositioningMethodController
from repro.positioning.fingerprinting import RadioMap
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel
from repro.storage.repositories import DataWarehouse


@dataclass
class GenerationResult:
    """Everything a full pipeline run produced."""

    config: VitaConfig
    building: Building
    warehouse: DataWarehouse
    simulation: SimulationResult
    positioning_output: list
    radio_map: Optional[RadioMap] = None
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def summary(self) -> Dict[str, float]:
        """Counts plus per-layer wall-clock timings."""
        summary: Dict[str, float] = {key: float(value) for key, value in self.warehouse.summary().items()}
        summary.update({f"seconds_{name}": value for name, value in self.timings.items()})
        return summary


class VitaPipeline:
    """Runs the three-layer pipeline for one configuration."""

    def __init__(self, config: Optional[VitaConfig] = None) -> None:
        self.config = config or VitaConfig()

    # ------------------------------------------------------------------ #
    # Layer 1: Infrastructure
    # ------------------------------------------------------------------ #
    def build_environment(self) -> Building:
        """Load/construct the host indoor environment."""
        environment = self.config.environment
        if environment.ifc_path:
            options = DBIProcessorOptions(
                decompose_partitions=environment.decompose,
                decomposition=DecompositionConfig(
                    max_area=environment.max_partition_area,
                    max_aspect_ratio=environment.max_aspect_ratio,
                ),
                extract_semantics=environment.extract_semantics,
            )
            building, _ = DBIProcessor(options).process_file(environment.ifc_path)
            return building
        building = building_by_name(environment.building, floors=environment.floors)
        if environment.decompose:
            controller = IndoorEnvironmentController(building)
            controller.decompose_irregular_partitions(
                DecompositionConfig(
                    max_area=environment.max_partition_area,
                    max_aspect_ratio=environment.max_aspect_ratio,
                )
            )
        if environment.extract_semantics:
            SemanticExtractor().annotate_building(building)
        return building

    def deploy_devices(self, building: Building) -> PositioningDeviceController:
        """Deploy every configured device group."""
        controller = PositioningDeviceController(building, seed=self.config.seed)
        for device_config in self.config.devices:
            model = deployment_model_by_name(device_config.deployment)
            controller.deploy(
                DeviceDeploymentRequest(
                    device_type=device_config.device_type,
                    count_per_floor=device_config.count_per_floor,
                    model=model,
                    floor_ids=device_config.floors,
                    overrides=device_config.overrides(),
                )
            )
        return controller

    # ------------------------------------------------------------------ #
    # Layer 2: Moving objects
    # ------------------------------------------------------------------ #
    def generate_objects(self, building: Building) -> SimulationResult:
        """Generate moving objects and their raw trajectories."""
        objects = self.config.objects
        if objects.distribution.lower().replace("_", "-") in ("crowd-outliers", "crowdoutliers"):
            distribution = CrowdOutliersDistribution(
                crowd_count=objects.crowd_count,
                crowd_fraction=objects.crowd_fraction,
                hot_partition_tags=("shop", "canteen", "public_area"),
            )
        else:
            distribution = UniformDistribution()
        arrival_process = (
            PoissonArrivals(rate_per_minute=objects.arrival_rate_per_minute)
            if objects.arrival_rate_per_minute > 0
            else NoArrivals()
        )
        controller = MovingObjectController(
            building,
            config=ObjectGenerationConfig(
                count=objects.count,
                min_speed=objects.min_speed,
                max_speed=objects.max_speed,
                min_lifespan=objects.min_lifespan,
                max_lifespan=objects.max_lifespan,
                duration=objects.duration,
                sampling_period=objects.sampling_period,
                time_step=objects.time_step,
                routing_metric=objects.routing,
                seed=objects.seed,
            ),
            distribution=distribution,
            arrival_process=arrival_process,
            intention=intention_by_name(objects.intention),
            behavior=behavior_by_name(objects.behavior),
            crowd_model=crowd_model_by_name(objects.crowd_interaction),
        )
        return controller.generate()

    # ------------------------------------------------------------------ #
    # Layer 3: RSSI + positioning
    # ------------------------------------------------------------------ #
    def _rssi_config(self) -> RSSIGenerationConfig:
        rssi = self.config.rssi
        path_loss = None
        if rssi.path_loss_exponent is not None or rssi.calibration_rssi is not None:
            path_loss = PathLossModel(
                exponent=rssi.path_loss_exponent or 2.5,
                calibration_rssi=rssi.calibration_rssi if rssi.calibration_rssi is not None else -40.0,
            )
        return RSSIGenerationConfig(
            sampling_period=rssi.sampling_period,
            path_loss=path_loss,
            obstacle_noise=ObstacleNoiseModel(wall_attenuation_db=rssi.wall_attenuation_db),
            fluctuation_noise=FluctuationNoiseModel(sigma_db=rssi.fluctuation_sigma_db),
            detection_probability=rssi.detection_probability,
            seed=rssi.seed,
        )

    def generate_rssi(self, building: Building, devices, simulation: SimulationResult):
        """Generate raw RSSI measurements for the simulated trajectories."""
        generator = RSSIGenerator(building, devices, self._rssi_config())
        return generator.generate(simulation.trajectories)

    def generate_positioning(self, building: Building, devices, rssi_records):
        """Derive positioning data with the configured method."""
        positioning = self.config.positioning
        radio_map = None
        if positioning.method is PositioningMethod.FINGERPRINTING:
            survey_generator = RSSIGenerator(building, devices, self._rssi_config())
            radio_map = RadioMap.survey_grid(
                building,
                survey_generator,
                spacing=positioning.radio_map_spacing,
                samples_per_location=positioning.radio_map_samples,
            )
        controller = PositioningMethodController(
            building,
            devices,
            PositioningConfig(
                method=positioning.method,
                sampling_period=positioning.sampling_period,
                fingerprinting_algorithm=positioning.algorithm,
                knn_k=positioning.knn_k,
                bayes_top_k=positioning.bayes_top_k,
                min_devices=positioning.min_devices,
                rssi_threshold=positioning.rssi_threshold,
            ),
            radio_map=radio_map,
        )
        return controller.generate(rssi_records), radio_map

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #
    def run(self) -> GenerationResult:
        """Execute all three layers and collect the output in a warehouse."""
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        building = self.build_environment()
        device_controller = self.deploy_devices(building)
        devices = list(device_controller.devices.values())
        timings["infrastructure"] = time.perf_counter() - start

        start = time.perf_counter()
        simulation = self.generate_objects(building)
        timings["moving_objects"] = time.perf_counter() - start

        start = time.perf_counter()
        rssi_records = self.generate_rssi(building, devices, simulation)
        timings["rssi"] = time.perf_counter() - start

        start = time.perf_counter()
        positioning_output, radio_map = self.generate_positioning(building, devices, rssi_records)
        timings["positioning"] = time.perf_counter() - start

        start = time.perf_counter()
        warehouse = DataWarehouse.from_config(self.config.storage)
        # A pipeline run owns its warehouse: reusing an existing database
        # file replaces its contents, so the summary always describes this
        # run rather than an accumulation of appended reruns.
        warehouse.clear()
        warehouse.devices.add_many(device_controller.device_records())
        warehouse.trajectories.add_trajectory_set(simulation.trajectories)
        warehouse.rssi.add_many(rssi_records)
        self._store_positioning(warehouse, positioning_output)
        warehouse.flush()
        timings["storage"] = time.perf_counter() - start

        return GenerationResult(
            config=self.config,
            building=building,
            warehouse=warehouse,
            simulation=simulation,
            positioning_output=positioning_output,
            radio_map=radio_map,
            timings=timings,
        )

    @staticmethod
    def _store_positioning(warehouse: DataWarehouse, output: list) -> None:
        deterministic, probabilistic, proximity = [], [], []
        for record in output:
            if isinstance(record, PositioningRecord):
                deterministic.append(record)
            elif isinstance(record, ProbabilisticPositioningRecord):
                probabilistic.append(record)
            else:
                proximity.append(record)
        warehouse.positioning.add_many(deterministic)
        warehouse.probabilistic.add_many(probabilistic)
        warehouse.proximity.add_many(proximity)


__all__ = ["GenerationResult", "VitaPipeline"]
