"""Deterministic sharding and streaming generation support.

The original pipeline materialises every trajectory, RSSI and positioning
record in memory before handing the full warehouse to storage, which bounds
dataset size by RAM and uses one core.  This module provides the pieces of
the *streaming* generation path instead:

* **Deterministic shards** — the moving-object population is partitioned into
  contiguous shards (:func:`plan_shards`).  Every shard is seeded as a pure
  function of ``(master_seed, shard_id, role)`` (:func:`derive_seed`, built
  on :mod:`hashlib` so it is stable across processes and runs, unlike the
  builtin ``hash``), and runs the full object -> trajectory -> RSSI ->
  positioning chain independently (:func:`run_shard`).
* **Bounded flushing** — records stream into the
  :class:`~repro.storage.repositories.DataWarehouse` through a
  :class:`StreamingWriter` that flushes in batches of ``flush_every``
  records, so peak pending memory is O(flush buffer), not O(dataset).
* **Opt-in parallelism** — :func:`iter_shard_outputs` runs shards through a
  ``concurrent.futures`` process pool when ``workers > 1`` and yields their
  outputs in shard order, which makes the merged output byte-identical to a
  serial run of the same shard plan: the partition and every seed depend
  only on ``(master_seed, shard_count)``, never on ``workers``.
* **Progress reporting** — long runs report objects/records per second
  through the :class:`GenerationProgress` callback hook.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.building.model import Building
from repro.core.config import ObjectConfig, RSSIConfig, VitaConfig
from repro.core.errors import ConfigurationError
from repro.core.types import (
    PositioningRecord,
    ProbabilisticPositioningRecord,
    TrajectoryRecord,
)
from repro.devices.base import PositioningDevice
from repro.mobility.behavior import behavior_by_name
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.crowd import crowd_model_by_name
from repro.mobility.distributions import (
    CrowdOutliersDistribution,
    NoArrivals,
    PoissonArrivals,
    UniformDistribution,
)
from repro.mobility.intentions import intention_by_name
from repro.obs import Telemetry
from repro.positioning.controller import PositioningConfig, PositioningMethodController
from repro.positioning.fingerprinting import RadioMap
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel
from repro.spatial import SpatialService, diff_stats

#: Default shard sizing used when the configuration leaves ``shards`` unset.
DEFAULT_OBJECTS_PER_SHARD = 16
DEFAULT_MAX_SHARDS = 8

#: The seed space: 63 bits so derived seeds stay positive ints everywhere.
SEED_BITS = 63


# --------------------------------------------------------------------------- #
# Deterministic seeding and shard planning
# --------------------------------------------------------------------------- #
def derive_seed(master_seed: int, shard_id: int, role: str = "shard") -> int:
    """A deterministic 63-bit seed for ``(master_seed, shard_id, role)``.

    Built on :func:`hashlib.blake2b` rather than the builtin ``hash`` so the
    value is identical across interpreter runs and worker processes
    (``PYTHONHASHSEED`` does not affect it).  This is the scheme that makes
    ``workers=N`` byte-identical to ``workers=1``: every random stream a
    shard consumes is seeded from its shard id, never from execution order.
    """
    payload = f"{int(master_seed)}|{int(shard_id)}|{role}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> (64 - SEED_BITS)


def auto_shard_count(object_count: int) -> int:
    """Default shard count: ~16 objects per shard, capped at 8 shards.

    A pure function of the object count only — deliberately independent of
    ``workers`` so the default partition (and therefore the output) does not
    change when parallelism is turned on.
    """
    if object_count <= 0:
        return 1
    return max(1, min(DEFAULT_MAX_SHARDS, math.ceil(object_count / DEFAULT_OBJECTS_PER_SHARD)))


def resolve_master_seed(config: VitaConfig) -> int:
    """The master seed of a streaming run.

    Prefers the explicit top-level seed, then the per-layer seeds; a fully
    unseeded configuration draws a random master so the run is still
    self-consistent (and reproducible from the reported seed).
    """
    for candidate in (config.seed, config.objects.seed, config.rssi.seed):
        if candidate is not None:
            return int(candidate)
    return random.Random().getrandbits(SEED_BITS)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the moving-object population."""

    shard_id: int
    shard_count: int
    #: 1-based index of the shard's first initial object (ids are global:
    #: shard objects are named ``obj_{index:04d}`` exactly like a serial run).
    first_index: int
    object_count: int
    #: The shard's base seed, ``derive_seed(master_seed, shard_id)``.
    seed: int

    @property
    def indices(self) -> range:
        """The global 1-based indices of the shard's initial objects."""
        return range(self.first_index, self.first_index + self.object_count)


def plan_shards(object_count: int, shard_count: int, master_seed: int) -> List[ShardSpec]:
    """Partition ``object_count`` objects into ``shard_count`` contiguous shards.

    Every object index in ``1..object_count`` is covered by exactly one
    shard; shard sizes differ by at most one (earlier shards take the
    remainder).  The plan depends only on its three arguments.
    """
    if object_count < 0:
        raise ConfigurationError("object_count must be non-negative")
    if shard_count < 1:
        raise ConfigurationError("shard_count must be at least 1")
    base, extra = divmod(object_count, shard_count)
    plan: List[ShardSpec] = []
    first = 1
    for shard_id in range(shard_count):
        size = base + (1 if shard_id < extra else 0)
        plan.append(
            ShardSpec(
                shard_id=shard_id,
                shard_count=shard_count,
                first_index=first,
                object_count=size,
                seed=derive_seed(master_seed, shard_id),
            )
        )
        first += size
    return plan


# --------------------------------------------------------------------------- #
# Progress reporting
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GenerationProgress:
    """One progress event of a streaming generation run.

    Attributes:
        phase: ``"devices"``, ``"objects"``, ``"flush"``, ``"shard-start"``,
            ``"shard-done"`` or ``"done"``.
        shard_id: the shard the event refers to (``None`` for run-level events).
        shard_count: total shards in the run.
        objects_done: moving objects fully generated so far.
        records_written: records flushed to the storage backend so far.
        pending_records: records buffered in the writer, awaiting a flush.
        elapsed_seconds: wall-clock time since the run started writing.
    """

    phase: str
    shard_id: Optional[int]
    shard_count: int
    objects_done: int
    records_written: int
    pending_records: int
    elapsed_seconds: float
    #: Aggregated spatial-cache hit/miss counters (route/LOS/locate/table),
    #: updated as shard outputs are merged.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def records_per_second(self) -> float:
        """Sustained write throughput (records/sec of wall-clock time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records_written / self.elapsed_seconds

    @property
    def objects_per_second(self) -> float:
        """Sustained object generation rate (objects/sec of wall-clock time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.objects_done / self.elapsed_seconds


ProgressCallback = Callable[[GenerationProgress], None]


# --------------------------------------------------------------------------- #
# Bounded streaming writes
# --------------------------------------------------------------------------- #
class StreamingWriter:
    """Flushes typed records into a warehouse in bounded batches.

    The writer buffers at most ``flush_every`` records at any moment (its
    invariant, asserted by the memory-bound regression tests); each flush
    bulk-inserts through the repositories and makes the backend durable, and
    emits a ``"flush"`` progress event.
    """

    #: Warehouse repository attribute per positioning record type.
    _POSITIONING_REPOS = ("positioning", "probabilistic", "proximity")

    def __init__(
        self,
        warehouse,
        flush_every: int,
        progress: Optional[ProgressCallback] = None,
        record_hook: Optional[Callable[[str, list], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """*record_hook*, when set, receives every flushed batch as
        ``(repo_name, records)`` before the buffer is released — the tap the
        continuous-query engine consumes the stream through, at exactly the
        flush-bounded cadence the memory budget already pays for."""
        if flush_every < 1:
            raise ConfigurationError("flush_every must be at least 1")
        self.warehouse = warehouse
        self.flush_every = int(flush_every)
        self.progress = progress
        self.record_hook = record_hook
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.records_written = 0
        self.written_by_repo: Dict[str, int] = {}
        self.max_pending = 0
        self.flushes = 0
        self.objects_done = 0
        self.cache_stats: Dict[str, int] = {}
        self._pending = 0
        self._shard_id: Optional[int] = None
        self._shard_count = 0
        self._start = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Context for progress events
    # ------------------------------------------------------------------ #
    def set_context(
        self, shard_id: Optional[int], shard_count: int, objects_done: int
    ) -> None:
        """Attach shard context to subsequent progress events."""
        self._shard_id = shard_id
        self._shard_count = shard_count
        self.objects_done = objects_done

    @property
    def pending_records(self) -> int:
        """Records currently buffered, awaiting a flush."""
        return self._pending

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._start

    def emit(self, phase: str) -> None:
        """Emit a progress event for the current context."""
        if self.progress is None:
            return
        self.progress(
            GenerationProgress(
                phase=phase,
                shard_id=self._shard_id,
                shard_count=self._shard_count,
                objects_done=self.objects_done,
                records_written=self.records_written,
                pending_records=self._pending,
                elapsed_seconds=self.elapsed_seconds,
                cache_stats=dict(self.cache_stats),
            )
        )

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def write(self, repo_name: str, records: Iterable) -> int:
        """Stream *records* into the repository called *repo_name*.

        Records are buffered and bulk-inserted every ``flush_every`` records;
        within the stream the incoming order is preserved, so a per-object
        ordering invariant (e.g. strictly increasing ``t``) survives every
        flush boundary.
        """
        repo = getattr(self.warehouse, repo_name)
        buffer: list = []
        written = 0
        for record in records:
            buffer.append(record)
            self._note_pending(1)
            if self._pending >= self.flush_every:
                written += self._flush(repo_name, repo, buffer)
        if buffer:
            written += self._flush(repo_name, repo, buffer)
        return written

    def write_positioning(self, records: Iterable) -> int:
        """Stream a mixed positioning output, routing each record to its repo.

        The three buffers share the writer's single pending budget: as soon
        as ``flush_every`` records are pending *in total*, every non-empty
        buffer is flushed, keeping the O(flush buffer) bound.
        """
        buffers: Dict[str, list] = {name: [] for name in self._POSITIONING_REPOS}
        written = 0
        for record in records:
            if isinstance(record, PositioningRecord):
                name = "positioning"
            elif isinstance(record, ProbabilisticPositioningRecord):
                name = "probabilistic"
            else:
                name = "proximity"
            buffers[name].append(record)
            self._note_pending(1)
            if self._pending >= self.flush_every:
                written += self._flush_buffers(buffers)
        written += self._flush_buffers(buffers)
        return written

    def _note_pending(self, count: int) -> None:
        self._pending += count
        if self._pending > self.max_pending:
            self.max_pending = self._pending

    def _flush(self, repo_name: str, repo, buffer: list) -> int:
        count = len(buffer)
        if count == 0:
            return 0
        flush_start = time.perf_counter()
        with self.telemetry.tracer.span("flush", repo=repo_name, records=count):
            repo.add_many(buffer)
            self.warehouse.flush()
        if self.record_hook is not None:
            self.record_hook(repo_name, buffer)
        buffer.clear()
        self._pending -= count
        self.records_written += count
        self.written_by_repo[repo_name] = self.written_by_repo.get(repo_name, 0) + count
        self.flushes += 1
        metrics = self.telemetry.metrics
        metrics.counter("storage.flushes").inc()
        metrics.counter(f"storage.records_written.{repo_name}").inc(count)
        metrics.histogram("storage.flush_seconds").observe(time.perf_counter() - flush_start)
        self.emit("flush")
        return count

    def _flush_buffers(self, buffers: Dict[str, list]) -> int:
        written = 0
        for name, buffer in buffers.items():
            written += self._flush(name, getattr(self.warehouse, name), buffer)
        return written


# --------------------------------------------------------------------------- #
# The per-shard generation chain
# --------------------------------------------------------------------------- #
def object_layer_components(objects: ObjectConfig):
    """Instantiate the Moving Object Layer strategies an :class:`ObjectConfig` names.

    Returns ``(distribution, intention, behavior, crowd_model)`` — shared by
    the materialising and streaming pipelines.  The arrival process is built
    separately (:func:`arrival_process_for`) because the streaming path
    splits the configured rate across shards.
    """
    if objects.distribution.lower().replace("_", "-") in ("crowd-outliers", "crowdoutliers"):
        distribution = CrowdOutliersDistribution(
            crowd_count=objects.crowd_count,
            crowd_fraction=objects.crowd_fraction,
            hot_partition_tags=("shop", "canteen", "public_area"),
        )
    else:
        distribution = UniformDistribution()
    return (
        distribution,
        intention_by_name(objects.intention),
        behavior_by_name(objects.behavior),
        crowd_model_by_name(objects.crowd_interaction),
    )


def arrival_process_for(rate_per_minute: float):
    """The arrival process for a Poisson rate (``NoArrivals`` when zero)."""
    if rate_per_minute > 0:
        return PoissonArrivals(rate_per_minute=rate_per_minute)
    return NoArrivals()


def build_rssi_config(rssi: RSSIConfig, seed: Optional[int]) -> RSSIGenerationConfig:
    """Translate an :class:`RSSIConfig` into an :class:`RSSIGenerationConfig`."""
    path_loss = None
    if rssi.path_loss_exponent is not None or rssi.calibration_rssi is not None:
        path_loss = PathLossModel(
            exponent=rssi.path_loss_exponent or 2.5,
            calibration_rssi=rssi.calibration_rssi if rssi.calibration_rssi is not None else -40.0,
        )
    return RSSIGenerationConfig(
        sampling_period=rssi.sampling_period,
        path_loss=path_loss,
        obstacle_noise=ObstacleNoiseModel(wall_attenuation_db=rssi.wall_attenuation_db),
        fluctuation_noise=FluctuationNoiseModel(sigma_db=rssi.fluctuation_sigma_db),
        detection_probability=rssi.detection_probability,
        seed=seed,
    )


@dataclass
class ShardContext:
    """Everything a shard run needs; picklable, shipped once per worker.

    The infrastructure (building, devices, radio map, spatial service) is
    built once by the parent and shared by every shard, so parallel workers
    position against exactly the same environment as a serial run.  The
    spatial service's caches — like ``Floor``'s lambda caches — are dropped
    on pickle and rebuilt lazily inside each worker; caching never changes
    results, so per-worker caches keep the output identical to serial.
    """

    config: VitaConfig
    building: Building
    devices: List[PositioningDevice]
    radio_map: Optional[RadioMap] = None
    master_seed: int = 0
    spatial: Optional[SpatialService] = None

    def spatial_service(self) -> SpatialService:
        """The shared spatial service (created on first use when unset)."""
        if self.spatial is None:
            self.spatial = SpatialService(
                self.building, devices=self.devices, config=self.config.spatial
            )
        return self.spatial


@dataclass
class ShardOutput:
    """The records one shard produced, ready for ordered merging."""

    shard_id: int
    objects: int
    trajectory_records: List[TrajectoryRecord]
    rssi_records: list
    positioning_records: list
    timings: Dict[str, float] = field(default_factory=dict)
    #: Spatial-cache hit/miss counters attributable to this shard (a delta,
    #: so serial and parallel runs aggregate identically).
    spatial_stats: Dict[str, int] = field(default_factory=dict)
    #: Shard-local metrics snapshot (``MetricsRegistry.snapshot``) — also a
    #: delta, merged by the parent in shard order like ``spatial_stats``.
    metrics: Dict[str, Dict] = field(default_factory=dict)
    #: Shard-local trace spans (``Tracer.export``), adopted by the parent.
    spans: List[Dict] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        return (
            len(self.trajectory_records)
            + len(self.rssi_records)
            + len(self.positioning_records)
        )


def run_shard(
    context: ShardContext,
    shard: ShardSpec,
    on_sample: Optional[Callable[[TrajectoryRecord], None]] = None,
) -> ShardOutput:
    """Run the full object -> trajectory -> RSSI -> positioning chain for one shard.

    Every random stream is seeded as ``derive_seed(master_seed, shard_id,
    role)``, so the output depends only on the shard spec and the shared
    context — not on which process or in which order the shard runs.
    """
    config = context.config
    objects = config.objects
    timings: Dict[str, float] = {}
    spatial = context.spatial_service()
    stats_before = spatial.cache_stats()
    # Each shard carries its own registry/tracer (the telemetry section rides
    # in ``context.config``, so this works identically inside pool workers);
    # the ``s<shard>:`` id prefix keeps span ids collision-free when the
    # parent adopts them.
    telemetry = Telemetry.from_config(
        config.telemetry, id_prefix=f"s{shard.shard_id}:"
    )
    shard_span = telemetry.tracer.span(
        "shard", shard_id=shard.shard_id, objects=shard.object_count
    )
    shard_span.__enter__()

    distribution, intention, behavior, crowd_model = object_layer_components(objects)
    # Poisson arrivals are split evenly across shards so the configured total
    # arrival rate is preserved in expectation.
    arrival_process = arrival_process_for(objects.arrival_rate_per_minute / shard.shard_count)

    controller = MovingObjectController(
        context.building,
        config=ObjectGenerationConfig(
            count=shard.object_count,
            min_speed=objects.min_speed,
            max_speed=objects.max_speed,
            min_lifespan=objects.min_lifespan,
            max_lifespan=objects.max_lifespan,
            duration=objects.duration,
            sampling_period=objects.sampling_period,
            time_step=objects.time_step,
            routing_metric=objects.routing,
            seed=derive_seed(context.master_seed, shard.shard_id, "objects"),
        ),
        distribution=distribution,
        arrival_process=arrival_process,
        intention=intention,
        behavior=behavior,
        crowd_model=crowd_model,
        first_object_index=shard.first_index,
        arrival_id_prefix=f"obj_s{shard.shard_id}a",
        engine_seed=derive_seed(context.master_seed, shard.shard_id, "engine"),
        spatial=spatial,
    )
    start = time.perf_counter()
    with telemetry.tracer.span("phase.moving_objects"):
        simulation = controller.generate(record_sink=on_sample)
    timings["moving_objects"] = time.perf_counter() - start

    start = time.perf_counter()
    rssi_config = build_rssi_config(
        config.rssi, seed=derive_seed(context.master_seed, shard.shard_id, "rssi")
    )
    with telemetry.tracer.span("phase.rssi"):
        rssi_records = RSSIGenerator(
            context.building, context.devices, rssi_config, spatial=spatial
        ).generate(simulation.trajectories)
    timings["rssi"] = time.perf_counter() - start

    start = time.perf_counter()
    positioning = config.positioning
    positioning_controller = PositioningMethodController(
        context.building,
        context.devices,
        PositioningConfig(
            method=positioning.method,
            sampling_period=positioning.sampling_period,
            fingerprinting_algorithm=positioning.algorithm,
            knn_k=positioning.knn_k,
            bayes_top_k=positioning.bayes_top_k,
            min_devices=positioning.min_devices,
            rssi_threshold=positioning.rssi_threshold,
        ),
        radio_map=context.radio_map,
        spatial=spatial,
    )
    with telemetry.tracer.span("phase.positioning"):
        positioning_records = positioning_controller.generate(rssi_records)
    timings["positioning"] = time.perf_counter() - start

    trajectory_records = simulation.trajectories.all_records()
    metrics = telemetry.metrics
    # Counters depend only on what was generated — the determinism guarantee
    # that makes workers=N merge to exactly the serial values.
    metrics.counter("generated.objects").inc(simulation.object_count)
    metrics.counter("generated.records.trajectory").inc(len(trajectory_records))
    metrics.counter("generated.records.rssi").inc(len(rssi_records))
    metrics.counter("generated.records.positioning").inc(len(positioning_records))
    metrics.counter("generated.shards").inc()
    for phase, seconds in timings.items():
        metrics.histogram(f"shard.phase_seconds.{phase}").observe(seconds)
    shard_span.__exit__(None, None, None)

    return ShardOutput(
        shard_id=shard.shard_id,
        objects=simulation.object_count,
        trajectory_records=trajectory_records,
        rssi_records=rssi_records,
        positioning_records=positioning_records,
        timings=timings,
        spatial_stats=diff_stats(spatial.cache_stats(), stats_before),
        metrics=metrics.snapshot(),
        spans=telemetry.tracer.export(),
    )


# --------------------------------------------------------------------------- #
# Parallel shard execution
# --------------------------------------------------------------------------- #
#: Per-worker-process shard context, installed by the pool initializer so the
#: (potentially large) building/device payload is shipped once per worker
#: instead of once per shard.
_WORKER_CONTEXT: Optional[ShardContext] = None


def _init_worker(context: ShardContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_shard_in_worker(shard: ShardSpec) -> ShardOutput:
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError("shard worker used before its context was installed")
    return run_shard(_WORKER_CONTEXT, shard)


def iter_shard_outputs(
    context: ShardContext,
    plan: Sequence[ShardSpec],
    workers: int,
    on_sample: Optional[Callable[[TrajectoryRecord], None]] = None,
    on_shard_start: Optional[Callable[[ShardSpec], None]] = None,
) -> Iterator[ShardOutput]:
    """Yield shard outputs *in shard order*, serially or via a process pool.

    Order is what makes the merged, bulk-inserted output independent of
    ``workers``.  In parallel mode at most ``workers + 1`` shard outputs are
    in flight at any moment, keeping peak memory O(shard * workers); the
    ``on_sample``/``on_shard_start`` hooks only fire in serial mode (they
    cannot cross process boundaries).
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    if workers == 1 or len(plan) <= 1:
        for shard in plan:
            if on_shard_start is not None:
                on_shard_start(shard)
            yield run_shard(context, shard, on_sample=on_sample)
        return
    with ProcessPoolExecutor(
        max_workers=min(workers, len(plan)),
        initializer=_init_worker,
        initargs=(context,),
    ) as pool:
        shard_iter = iter(plan)
        in_flight: deque = deque()
        for shard in itertools.islice(shard_iter, workers + 1):
            in_flight.append(pool.submit(_run_shard_in_worker, shard))
        while in_flight:
            output = in_flight.popleft().result()
            upcoming = next(shard_iter, None)
            if upcoming is not None:
                in_flight.append(pool.submit(_run_shard_in_worker, upcoming))
            yield output


__all__ = [
    "DEFAULT_MAX_SHARDS",
    "DEFAULT_OBJECTS_PER_SHARD",
    "SEED_BITS",
    "derive_seed",
    "auto_shard_count",
    "resolve_master_seed",
    "ShardSpec",
    "plan_shards",
    "GenerationProgress",
    "ProgressCallback",
    "StreamingWriter",
    "object_layer_components",
    "arrival_process_for",
    "build_rssi_config",
    "ShardContext",
    "ShardOutput",
    "run_shard",
    "iter_shard_outputs",
]
